//! E2LSH — the static concatenating search framework (§1, Figure 1(a)).
//!
//! Indexing: sample `K · L` i.i.d. functions; table `t` keys each object on
//! the compound hash `G_t(o) = (h_{t,1}(o), …, h_{t,K}(o))`. Querying: look
//! up the query's bucket in each of the `L` tables and verify the union of
//! the bucket contents. Increasing `K` suppresses false positives (`p₂ᴷ`)
//! but also true positives (`p₁ᴷ`), which is why `L` must be large — the
//! indexing-overhead weakness the paper's Figure 6 exposes.
//!
//! The compound key is mixed to a `u64` (see [`crate::common::mix_key`]);
//! the paper's experiments adapt E2LSH to Angular distance by drawing the
//! functions from the cross-polytope family, which this implementation
//! supports through the `family` parameter.

use crate::common::{mix_key, verify_topk, Dedup};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind, FamilyParams, LshFunction};
use std::collections::HashMap;
use std::sync::Arc;

/// Build parameters for E2LSH.
#[derive(Debug, Clone)]
pub struct E2lshParams {
    /// Concatenation length `K` (the paper sweeps 1..=10).
    pub k_funcs: usize,
    /// Number of hash tables `L` (the paper sweeps 8..=512, `K·L ≤ 512`).
    pub l_tables: usize,
    /// LSH family (random projection for Euclidean, cross-polytope for
    /// Angular, per §6.3).
    pub family: FamilyKind,
    /// Family parameters.
    pub family_params: FamilyParams,
    /// RNG seed.
    pub seed: u64,
}

impl E2lshParams {
    /// Euclidean defaults.
    pub fn euclidean(k_funcs: usize, l_tables: usize, w: f64) -> Self {
        Self {
            k_funcs,
            l_tables,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0xe215,
        }
    }

    /// Angular defaults (cross-polytope functions).
    pub fn angular(k_funcs: usize, l_tables: usize) -> Self {
        Self {
            k_funcs,
            l_tables,
            family: FamilyKind::CrossPolytopeFast,
            family_params: FamilyParams::default(),
            seed: 0xe215,
        }
    }
}

/// The E2LSH index.
pub struct E2Lsh {
    data: Arc<Dataset>,
    metric: Metric,
    /// `L × K` functions, table-major.
    funcs: Vec<Box<dyn LshFunction>>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    params: E2lshParams,
    bucket_entries: usize,
}

impl E2Lsh {
    /// Builds the `L` tables.
    ///
    /// # Panics
    /// Panics on an empty dataset or `K == 0` / `L == 0`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &E2lshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.k_funcs > 0 && params.l_tables > 0, "K and L must be positive");
        let total = params.k_funcs * params.l_tables;
        let funcs = sample_family(params.family, data.dim(), total, &params.family_params, params.seed);
        let mut tables = Vec::with_capacity(params.l_tables);
        let mut bucket_entries = 0usize;
        let mut key_buf = vec![0u64; params.k_funcs];
        for t in 0..params.l_tables {
            let tf = &funcs[t * params.k_funcs..(t + 1) * params.k_funcs];
            let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, v) in data.iter().enumerate() {
                for (slot, f) in key_buf.iter_mut().zip(tf) {
                    *slot = f.hash(v);
                }
                table.entry(mix_key(key_buf.iter().copied())).or_default().push(i as u32);
                bucket_entries += 1;
            }
            tables.push(table);
        }
        Self { data, metric, funcs, tables, params: params.clone(), bucket_entries }
    }

    /// c-k-ANNS: union of the query's `L` buckets, verified, capped at
    /// `max_candidates` distance computations (the per-method budget knob
    /// the recall/time sweeps turn).
    pub fn query(&self, q: &[f32], k: usize, max_candidates: usize) -> Vec<Neighbor> {
        let mut dedup = Dedup::new(self.data.len());
        self.query_with(q, k, max_candidates, &mut dedup)
    }

    /// [`E2Lsh::query`] with reusable dedup scratch.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        max_candidates: usize,
        dedup: &mut Dedup,
    ) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        dedup.begin();
        let mut cands: Vec<u32> = Vec::new();
        let cap = max_candidates.max(k);
        let mut key_buf = vec![0u64; self.params.k_funcs];
        'tables: for (t, table) in self.tables.iter().enumerate() {
            let tf = &self.funcs[t * self.params.k_funcs..(t + 1) * self.params.k_funcs];
            for (slot, f) in key_buf.iter_mut().zip(tf) {
                *slot = f.hash(q);
            }
            if let Some(bucket) = table.get(&mix_key(key_buf.iter().copied())) {
                for &id in bucket {
                    if dedup.mark_new(id) {
                        cands.push(id);
                        if cands.len() >= cap {
                            break 'tables;
                        }
                    }
                }
            }
        }
        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: bucket entries + per-bucket overhead + function
    /// parameters (d floats per projection).
    pub fn index_bytes(&self) -> usize {
        let entries = self.bucket_entries * 4;
        let buckets: usize = self.tables.iter().map(|t| t.len() * 16).sum();
        let funcs = self.params.k_funcs * self.params.l_tables * self.data.dim() * 4;
        entries + buckets + funcs
    }
}

/// [`ann::AnnIndex`] for E2LSH: `budget` is the bucket-union candidate cap;
/// `probes` is ignored (the static concatenating framework has no probing).
impl ann::AnnIndex for E2Lsh {
    fn name(&self) -> &'static str {
        "E2LSH"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        E2Lsh::index_bytes(self)
    }

    fn make_scratch(&self) -> ann::Scratch {
        ann::Scratch::new(Dedup::new(self.data.len()))
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        let dedup = scratch.get_valid_with(
            |d: &Dedup| d.capacity() == self.data.len(),
            || Dedup::new(self.data.len()),
        );
        E2Lsh::query_with(self, q, p.k, p.budget, dedup)
    }
}

impl ann::BuildAnn for E2Lsh {
    type Params = E2lshParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &E2lshParams) -> Self {
        E2Lsh::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(11))
    }

    #[test]
    fn self_query_hits_itself() {
        let data = toy(400);
        let idx = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(4, 16, 8.0));
        let out = idx.query(data.get(33), 1, 1000);
        assert_eq!(out[0].id, 33, "the query collides with itself in every table");
        assert!(out[0].dist < 1e-6);
    }

    #[test]
    fn longer_concatenation_shrinks_buckets() {
        let data = toy(500);
        let loose = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(1, 1, 8.0));
        let tight = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(8, 1, 8.0));
        let avg_bucket = |idx: &E2Lsh| {
            let t = &idx.tables[0];
            t.values().map(Vec::len).sum::<usize>() as f64 / t.len() as f64
        };
        assert!(avg_bucket(&tight) < avg_bucket(&loose), "K=8 buckets must be finer than K=1");
    }

    #[test]
    fn candidate_cap_is_respected() {
        let data = toy(300);
        let idx = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(1, 8, 50.0));
        // Huge w => near-degenerate buckets; the cap keeps verification bounded.
        let out = idx.query(data.get(0), 5, 10);
        assert!(out.len() <= 5);
    }

    #[test]
    fn angular_variant_works() {
        let data =
            Arc::new(SynthSpec::new("a", 300, 16).with_clusters(8).generate(2).normalized());
        let idx = E2Lsh::build(data.clone(), Metric::Angular, &E2lshParams::angular(2, 16));
        let out = idx.query(data.get(5), 1, 500);
        assert!(!out.is_empty());
        assert!(out[0].dist < 0.5, "should find something in the query's cluster");
    }

    #[test]
    fn deterministic() {
        let data = toy(100);
        let p = E2lshParams::euclidean(3, 4, 8.0);
        let a = E2Lsh::build(data.clone(), Metric::Euclidean, &p);
        let b = E2Lsh::build(data.clone(), Metric::Euclidean, &p);
        let qa = a.query(data.get(7), 5, 100);
        let qb = b.query(data.get(7), 5, 100);
        assert_eq!(
            qa.iter().map(|n| n.id).collect::<Vec<_>>(),
            qb.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn index_bytes_grow_with_l() {
        let data = toy(100);
        let small = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(2, 2, 8.0));
        let large = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(2, 16, 8.0));
        assert!(large.index_bytes() > small.index_bytes());
    }

    #[test]
    #[should_panic(expected = "K and L must be positive")]
    fn zero_k_panics() {
        E2Lsh::build(toy(10), Metric::Euclidean, &E2lshParams::euclidean(0, 4, 8.0));
    }
}
