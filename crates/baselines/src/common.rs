//! Shared plumbing for the baseline schemes: candidate verification,
//! query-epoch dedup, and the bucket-key mixer used by the table-based
//! methods.

use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};

/// Verifies candidate ids against the exact metric, returning the `k`
/// nearest ascending (ties by id) — the common final phase of every scheme.
pub fn verify_topk(
    data: &Dataset,
    metric: Metric,
    q: &[f32],
    k: usize,
    ids: impl Iterator<Item = u32>,
) -> Vec<Neighbor> {
    assert_eq!(data.dim(), q.len(), "data/query dimension mismatch");
    let mut heap: std::collections::BinaryHeap<Neighbor> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for id in ids {
        let s = metric.surrogate_unchecked(data.get(id as usize), q);
        let cand = Neighbor { id, dist: s };
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().expect("non-empty") {
            heap.pop();
            heap.push(cand);
        }
    }
    let mut out = heap.into_sorted_vec();
    for n in &mut out {
        n.dist = metric.from_surrogate(n.dist);
    }
    out
}

/// O(1)-reset seen-set over object ids (query-epoch stamps).
#[derive(Debug, Clone)]
pub struct Dedup {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Dedup {
    /// Seen-set for ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self { stamp: vec![0; n], epoch: 0 }
    }

    /// The id range this seen-set covers (the `n` it was built for).
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a new query.
    pub fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id`; returns true the first time it is seen this query.
    #[inline]
    pub fn mark_new(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Mixes a sequence of `u64` symbols into one 64-bit bucket key (an FxHash-
/// style multiply-xor chain). Table-based schemes key their buckets on this;
/// a 64-bit collision merges two buckets, which only ever *adds* candidates
/// that verification then filters — it can never drop a true collision.
#[inline]
pub fn mix_key(symbols: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in symbols {
        h = (h ^ s).wrapping_mul(0x0100_0000_01b3)
            ^ (h.rotate_left(29)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    // final avalanche
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    #[test]
    fn verify_topk_orders_and_truncates() {
        let data = SynthSpec::new("t", 50, 8).generate(1);
        let q = data.get(0).to_vec();
        let got = verify_topk(&data, Metric::Euclidean, &q, 5, 0..50u32);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].id, 0);
        for w in got.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn dedup_epochs() {
        let mut d = Dedup::new(4);
        d.begin();
        assert!(d.mark_new(2));
        assert!(!d.mark_new(2));
        d.begin();
        assert!(d.mark_new(2), "new query resets the seen-set");
    }

    #[test]
    fn dedup_epoch_wrap() {
        let mut d = Dedup::new(2);
        d.epoch = u32::MAX;
        d.begin();
        assert!(d.mark_new(0));
        assert!(!d.mark_new(0));
    }

    #[test]
    fn mix_key_sensitivity() {
        let a = mix_key([1u64, 2, 3]);
        let b = mix_key([1u64, 2, 4]);
        let c = mix_key([3u64, 2, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c, "order must matter");
        assert_eq!(a, mix_key([1u64, 2, 3]));
    }
}
