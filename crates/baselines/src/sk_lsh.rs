//! SK-LSH (Liu, Cui, Huang, Li, Shen — PVLDB 2014), memory version.
//!
//! The paper's §7: "SK-LSH sorts the compound keys in alphabetical order,
//! and thus it can reduce the I/O costs for external storages." Each of the
//! `l` indexes concatenates `k_funcs` hash values into a *compound key*,
//! sorts all objects by the key's linear order, and answers a query by
//! locating the query key's insertion position and scanning outward — the
//! objects with the closest compound keys (longest common key prefix and
//! smallest divergence at the first differing component) are probed first.
//!
//! SK-LSH's ordering carries strictly less information than the CSA: it
//! sorts only one rotation of the key, so prefixes that start later in the
//! key are invisible to it. Comparing it against LCCS-LSH at matched memory
//! isolates exactly what the circular-shift machinery buys — see the
//! `frameworks` ablation experiment.

use crate::common::{verify_topk, Dedup};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind, FamilyParams, LshFunction};
use std::sync::Arc;

/// Build parameters for SK-LSH.
#[derive(Debug, Clone)]
pub struct SkLshParams {
    /// Compound-key length.
    pub k_funcs: usize,
    /// Number of sorted indexes.
    pub l_indexes: usize,
    /// LSH family.
    pub family: FamilyKind,
    /// Family parameters.
    pub family_params: FamilyParams,
    /// RNG seed.
    pub seed: u64,
}

impl SkLshParams {
    /// Euclidean defaults.
    pub fn euclidean(k_funcs: usize, l_indexes: usize, w: f64) -> Self {
        Self {
            k_funcs,
            l_indexes,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0x5c15,
        }
    }
}

struct SortedIndex {
    /// Compound keys, row-major n × k (in id order).
    keys: Vec<u64>,
    /// Ids sorted by compound key.
    sorted: Vec<u32>,
    funcs: Vec<Box<dyn LshFunction>>,
}

impl SortedIndex {
    fn key(&self, id: u32, k: usize) -> &[u64] {
        &self.keys[id as usize * k..(id as usize + 1) * k]
    }
}

/// The SK-LSH index.
pub struct SkLsh {
    data: Arc<Dataset>,
    metric: Metric,
    indexes: Vec<SortedIndex>,
    params: SkLshParams,
}

impl SkLsh {
    /// Builds the `l` sorted compound-key arrays.
    ///
    /// # Panics
    /// Panics on empty data or zero `k`/`l`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &SkLshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.k_funcs > 0 && params.l_indexes > 0, "K and L must be positive");
        let indexes = (0..params.l_indexes)
            .map(|t| {
                let funcs = sample_family(
                    params.family,
                    data.dim(),
                    params.k_funcs,
                    &params.family_params,
                    params.seed.wrapping_add(t as u64).wrapping_mul(0x517c_c1b7),
                );
                let k = params.k_funcs;
                let mut keys = vec![0u64; data.len() * k];
                for (i, v) in data.iter().enumerate() {
                    for (j, f) in funcs.iter().enumerate() {
                        keys[i * k + j] = f.hash(v);
                    }
                }
                let mut sorted: Vec<u32> = (0..data.len() as u32).collect();
                sorted.sort_unstable_by(|&a, &b| {
                    keys[a as usize * k..(a as usize + 1) * k]
                        .cmp(&keys[b as usize * k..(b as usize + 1) * k])
                });
                SortedIndex { keys, sorted, funcs }
            })
            .collect();
        Self { data, metric, indexes, params: params.clone() }
    }

    /// c-k-ANNS: per index, locate the query's compound key and scan outward
    /// alternately (the paper's bidirectional page expansion), interleaving
    /// indexes round-robin; at most `max_candidates` verified.
    pub fn query(&self, q: &[f32], k: usize, max_candidates: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        let kf = self.params.k_funcs;
        let n = self.data.len();
        let cap = max_candidates.max(k);
        let mut dedup = Dedup::new(n);
        dedup.begin();
        let mut cands: Vec<u32> = Vec::new();

        // (lo, hi) scan windows per index, expanded alternately.
        let mut windows: Vec<(i64, i64)> = Vec::with_capacity(self.indexes.len());
        for idx in &self.indexes {
            let qkey: Vec<u64> = idx.funcs.iter().map(|f| f.hash(q)).collect();
            let ip = idx.sorted.partition_point(|&id| idx.key(id, kf) <= &qkey[..]) as i64;
            windows.push((ip - 1, ip));
        }
        let mut progressed = true;
        while cands.len() < cap && progressed {
            progressed = false;
            for (t, (lo, hi)) in windows.iter_mut().enumerate() {
                let idx = &self.indexes[t];
                if *lo >= 0 {
                    let id = idx.sorted[*lo as usize];
                    *lo -= 1;
                    progressed = true;
                    if dedup.mark_new(id) {
                        cands.push(id);
                        if cands.len() >= cap {
                            break;
                        }
                    }
                }
                if (*hi as usize) < n {
                    let id = idx.sorted[*hi as usize];
                    *hi += 1;
                    progressed = true;
                    if dedup.mark_new(id) {
                        cands.push(id);
                        if cands.len() >= cap {
                            break;
                        }
                    }
                }
            }
        }
        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: keys + sorted ids + function parameters.
    pub fn index_bytes(&self) -> usize {
        self.indexes
            .iter()
            .map(|i| i.keys.len() * 8 + i.sorted.len() * 4)
            .sum::<usize>()
            + self.params.l_indexes * self.params.k_funcs * self.data.dim() * 4
    }
}

/// [`ann::AnnIndex`] for SK-LSH: `budget` is the candidate cap of the
/// bidirectional sorted-key scans; `probes` is ignored.
impl ann::AnnIndex for SkLsh {
    fn name(&self) -> &'static str {
        "SK-LSH"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        SkLsh::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        SkLsh::query(self, q, p.k, p.budget)
    }
}

impl ann::BuildAnn for SkLsh {
    type Params = SkLshParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &SkLshParams) -> Self {
        SkLsh::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(71))
    }

    #[test]
    fn self_query_found_immediately() {
        let data = toy(300);
        let idx = SkLsh::build(data.clone(), Metric::Euclidean, &SkLshParams::euclidean(8, 3, 4.0));
        let out = idx.query(data.get(9), 1, 16);
        assert_eq!(out[0].id, 9, "identical compound key sits adjacent to the insertion point");
    }

    #[test]
    fn recall_grows_with_candidates() {
        let data = toy(600);
        let queries = SynthSpec::new("toy", 600, 16).with_clusters(8).generate_queries(15, 71);
        let gt = dataset::ExactKnn::compute(&data, &queries, 5, Metric::Euclidean);
        let idx = SkLsh::build(data.clone(), Metric::Euclidean, &SkLshParams::euclidean(6, 4, 4.0));
        let recall = |cap: usize| {
            let mut hits = 0usize;
            for (qi, q) in queries.iter().enumerate() {
                let out = idx.query(q, 5, cap);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.iter().filter(|n| truth.contains(&n.id)).count();
            }
            hits as f64 / (5.0 * queries.len() as f64)
        };
        assert!(recall(400) >= recall(8));
        assert!(recall(400) > 0.4, "large budget should recall > 40%, got {}", recall(400));
    }

    #[test]
    fn budget_is_respected() {
        let data = toy(200);
        let idx = SkLsh::build(data.clone(), Metric::Euclidean, &SkLshParams::euclidean(4, 2, 4.0));
        let out = idx.query(data.get(0), 3, 5);
        assert!(out.len() <= 3);
    }

    #[test]
    #[should_panic(expected = "K and L must be positive")]
    fn zero_l_panics() {
        SkLsh::build(toy(10), Metric::Euclidean, &SkLshParams::euclidean(4, 0, 4.0));
    }
}
