//! Competitor LSH schemes (paper §6.3).
//!
//! Every method the paper benchmarks against is implemented here from
//! scratch, against its original publication — these are real
//! implementations of the algorithms, not shims:
//!
//! | Module | Scheme | Framework | Original |
//! |--------|--------|-----------|----------|
//! | [`linear`] | Linear scan | — | (cost reference) |
//! | [`e2lsh`] | E2LSH | static concatenating (K × L tables) | Datar et al. 2004 / Andoni's E2LSH 0.1 |
//! | [`multiprobe_lsh`] | Multi-Probe LSH | static concatenating + query-directed probing | Lv et al. 2007 |
//! | [`falconn`] | FALCONN-style | cross-polytope concatenation + probing | Andoni et al. 2015 |
//! | [`c2lsh`] | C2LSH | dynamic collision counting + virtual rehashing | Gan et al. 2012 |
//! | [`qalsh`] | QALSH (memory) | query-aware collision counting | Huang et al. 2015/2017 |
//! | [`srs`] | SRS (memory) | projected incremental NN over a kd-tree | Sun et al. 2014 |
//! | [`kdtree`] | kd-tree | SRS substrate (best-bin-first incremental NN) | Bentley 1990 |
//! | [`lsh_forest`] | LSH-Forest | sorted label prefixes (§7 related work) | Bawa et al. 2005 |
//! | [`sk_lsh`] | SK-LSH | sorted compound keys (§7 related work) | Liu et al. 2014 |
//! | [`probing`] | probe-sequence generator | shared by MP-LSH / FALCONN | Lv et al. 2007 |
//!
//! All indices share the conventions of the reproduction: explicit seeds,
//! `Arc<Dataset>` data handles, candidate verification with exact distances,
//! and `index_bytes()` accounting for the Figures 6–7 axes. Every scheme
//! also implements the workspace-wide [`ann::AnnIndex`] trait (see each
//! module's impl for how the generic `budget`/`probes` knobs map onto its
//! native parameters), so the eval harness and serving callers drive the
//! whole suite through one interface, including the parallel
//! `query_batch` executor.
//!
//! Where these schemes sit in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c2lsh;
pub mod common;
pub mod e2lsh;
pub mod falconn;
pub mod kdtree;
pub mod linear;
pub mod lsh_forest;
pub mod multiprobe_lsh;
pub mod probing;
pub mod qalsh;
pub mod sk_lsh;
pub mod srs;

pub use ann::{AnnIndex, BuildAnn, Scratch, SearchParams};
pub use c2lsh::{C2Lsh, C2lshParams};
pub use e2lsh::{E2Lsh, E2lshParams};
pub use falconn::{Falconn, FalconnParams};
pub use kdtree::{KdTree, KdTreeScan};
pub use linear::LinearScan;
pub use lsh_forest::{LshForest, LshForestParams};
pub use multiprobe_lsh::{MultiProbeLsh, MultiProbeLshParams};
pub use qalsh::{Qalsh, QalshParams};
pub use sk_lsh::{SkLsh, SkLshParams};
pub use srs::{Srs, SrsParams};
