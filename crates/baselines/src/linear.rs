//! Linear scan — the exact, index-free baseline.
//!
//! The cost reference for the α = 0 row of the paper's Table 1 (LCCS-LSH
//! with constant m degenerates to `O(nd)` per query, i.e. a linear scan).

use crate::common::verify_topk;
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use std::sync::Arc;

/// The trivial exact scanner.
pub struct LinearScan {
    data: Arc<Dataset>,
    metric: Metric,
}

impl LinearScan {
    /// "Builds" the (empty) index.
    pub fn build(data: Arc<Dataset>, metric: Metric) -> Self {
        Self { data, metric }
    }

    /// Exact k-NN by full scan.
    pub fn query(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        verify_topk(&self.data, self.metric, q, k, 0..self.data.len() as u32)
    }

    /// A linear scan stores nothing.
    pub fn index_bytes(&self) -> usize {
        0
    }
}

/// [`ann::AnnIndex`] for the exact linear scan: `budget` and `probes` are
/// ignored — every query verifies the full dataset.
impl ann::AnnIndex for LinearScan {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        LinearScan::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        self.query(q, p.k)
    }
}

impl ann::BuildAnn for LinearScan {
    type Params = ();

    fn build_index(data: Arc<Dataset>, metric: Metric, _params: &()) -> Self {
        LinearScan::build(data, metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{ExactKnn, SynthSpec};

    #[test]
    fn matches_exact_oracle() {
        let data = Arc::new(SynthSpec::new("t", 200, 12).generate(3));
        let scan = LinearScan::build(data.clone(), Metric::Euclidean);
        let q = data.get(17);
        let got = scan.query(q, 7);
        let want = ExactKnn::single_query(&data, q, 7, Metric::Euclidean);
        assert_eq!(got.len(), 7);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id);
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_index_size() {
        let data = Arc::new(SynthSpec::new("t", 10, 4).generate(1));
        assert_eq!(LinearScan::build(data, Metric::Euclidean).index_bytes(), 0);
    }
}
