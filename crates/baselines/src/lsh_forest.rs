//! LSH-Forest (Bawa, Condie, Ganesan — WWW 2005), memory version.
//!
//! The paper's §7 positions LCCS-LSH as an extension of this scheme:
//! "LSH-Forest concatenates hash values into a sequence instead of a single
//! hash value, so that the LCP between the hash values of query and data
//! objects can be found via a trie structure … LCCS-LSH can be considered to
//! extend them by virtually building more trees" (one per rotation).
//!
//! Implementation: each of the `l` trees draws `depth` i.i.d. functions and
//! labels every object with its hash sequence. A sorted array of labels is
//! an implicit trie: the objects with the longest common *prefix* with the
//! query's label are the neighbors of its insertion position, found by one
//! binary search and two outward-expanding cursors per tree (the standard
//! array-backed variant of the paper's "synchronous descend"). This is
//! exactly a *non-circular, multi-tree* CSA — which is what makes it the
//! natural ablation partner for the LCCS framework.

use crate::common::{verify_topk, Dedup};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind, FamilyParams, LshFunction};
use std::sync::Arc;

/// Build parameters for LSH-Forest.
#[derive(Debug, Clone)]
pub struct LshForestParams {
    /// Trees (the paper's `l`).
    pub trees: usize,
    /// Label length / maximum trie depth (the paper's `k_m`).
    pub depth: usize,
    /// LSH family.
    pub family: FamilyKind,
    /// Family parameters.
    pub family_params: FamilyParams,
    /// RNG seed.
    pub seed: u64,
}

impl LshForestParams {
    /// Euclidean defaults.
    pub fn euclidean(trees: usize, depth: usize, w: f64) -> Self {
        Self {
            trees,
            depth,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0xf03e,
        }
    }
}

struct Tree {
    /// Per-object labels, row-major n × depth (in id order).
    labels: Vec<u64>,
    /// Object ids sorted by label.
    sorted: Vec<u32>,
    funcs: Vec<Box<dyn LshFunction>>,
}

impl Tree {
    fn label(&self, id: u32, depth: usize) -> &[u64] {
        &self.labels[id as usize * depth..(id as usize + 1) * depth]
    }
}

/// The LSH-Forest index.
pub struct LshForest {
    data: Arc<Dataset>,
    metric: Metric,
    trees: Vec<Tree>,
    params: LshForestParams,
}

fn lcp(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl LshForest {
    /// Builds the `l` sorted label arrays.
    ///
    /// # Panics
    /// Panics on empty data or zero trees/depth.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &LshForestParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.trees > 0 && params.depth > 0, "trees and depth must be positive");
        let trees = (0..params.trees)
            .map(|t| {
                let funcs = sample_family(
                    params.family,
                    data.dim(),
                    params.depth,
                    &params.family_params,
                    params.seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9),
                );
                let mut labels = vec![0u64; data.len() * params.depth];
                for (i, v) in data.iter().enumerate() {
                    for (j, f) in funcs.iter().enumerate() {
                        labels[i * params.depth + j] = f.hash(v);
                    }
                }
                let mut sorted: Vec<u32> = (0..data.len() as u32).collect();
                let d = params.depth;
                sorted.sort_unstable_by(|&a, &b| {
                    labels[a as usize * d..(a as usize + 1) * d]
                        .cmp(&labels[b as usize * d..(b as usize + 1) * d])
                });
                Tree { labels, sorted, funcs }
            })
            .collect();
        Self { data, metric, trees, params: params.clone() }
    }

    /// c-k-ANNS: per tree, binary search for the query label, then expand
    /// outward in descending-LCP order; candidates across trees merge by
    /// prefix length ("synchronous descend" over the implicit tries); at
    /// most `max_candidates` verified.
    pub fn query(&self, q: &[f32], k: usize, max_candidates: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        let depth = self.params.depth;
        let n = self.data.len();
        let cap = max_candidates.max(k);
        let mut dedup = Dedup::new(n);
        dedup.begin();

        // Cursor per (tree, direction) with current prefix length, merged by
        // a max-heap on prefix length — the array-backed synchronous descend.
        struct Cursor {
            tree: usize,
            pos: i64,
            dir: i64,
            lcp: usize,
        }
        let mut heap: Vec<Cursor> = Vec::with_capacity(self.trees.len() * 2);
        let mut qlabels: Vec<Vec<u64>> = Vec::with_capacity(self.trees.len());
        for (t, tree) in self.trees.iter().enumerate() {
            let qlabel: Vec<u64> = tree.funcs.iter().map(|f| f.hash(q)).collect();
            let ip = tree
                .sorted
                .partition_point(|&id| tree.label(id, depth) <= &qlabel[..]);
            for (pos, dir) in [(ip as i64 - 1, -1i64), (ip as i64, 1)] {
                if pos >= 0 && (pos as usize) < n {
                    let id = tree.sorted[pos as usize];
                    let l = lcp(tree.label(id, depth), &qlabel);
                    heap.push(Cursor { tree: t, pos, dir, lcp: l });
                }
            }
            qlabels.push(qlabel);
        }

        let mut cands: Vec<u32> = Vec::new();
        while cands.len() < cap && !heap.is_empty() {
            // Take the cursor with the longest current prefix.
            let best = heap
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.lcp)
                .map(|(i, _)| i)
                .expect("non-empty");
            let c = &mut heap[best];
            let tree = &self.trees[c.tree];
            let id = tree.sorted[c.pos as usize];
            if dedup.mark_new(id) {
                cands.push(id);
            }
            let next = c.pos + c.dir;
            if next >= 0 && (next as usize) < n {
                let nid = tree.sorted[next as usize];
                c.lcp = lcp(tree.label(nid, depth), &qlabels[c.tree]);
                c.pos = next;
            } else {
                heap.swap_remove(best);
            }
        }
        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: labels + sorted ids + function parameters.
    pub fn index_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.labels.len() * 8 + t.sorted.len() * 4)
            .sum::<usize>()
            + self.params.trees * self.params.depth * self.data.dim() * 4
    }
}

/// [`ann::AnnIndex`] for LSH-Forest: `budget` is the candidate cap of the
/// descending-prefix cursor merge; `probes` is ignored.
impl ann::AnnIndex for LshForest {
    fn name(&self) -> &'static str {
        "LSH-Forest"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        LshForest::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        LshForest::query(self, q, p.k, p.budget)
    }
}

impl ann::BuildAnn for LshForest {
    type Params = LshForestParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &LshForestParams) -> Self {
        LshForest::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(61))
    }

    #[test]
    fn self_query_is_top() {
        let data = toy(300);
        let idx =
            LshForest::build(data.clone(), Metric::Euclidean, &LshForestParams::euclidean(4, 16, 4.0));
        let out = idx.query(data.get(42), 1, 200);
        assert_eq!(out[0].id, 42, "identical label ⇒ full-depth prefix ⇒ first candidate");
    }

    #[test]
    fn candidates_come_in_descending_prefix_order_per_tree() {
        // With one tree, the first candidates must have the globally longest
        // prefixes: verify the top candidate's LCP is maximal.
        let data = toy(200);
        let idx =
            LshForest::build(data.clone(), Metric::Euclidean, &LshForestParams::euclidean(1, 12, 4.0));
        let q = data.get(7);
        let tree = &idx.trees[0];
        let qlabel: Vec<u64> = tree.funcs.iter().map(|f| f.hash(q)).collect();
        let out = idx.query(q, 1, 1);
        let top = out[0].id;
        let top_lcp = lcp(tree.label(top, 12), &qlabel);
        for id in 0..200u32 {
            assert!(
                lcp(tree.label(id, 12), &qlabel) <= top_lcp,
                "id {id} has longer prefix than the first candidate"
            );
        }
    }

    #[test]
    fn recall_grows_with_candidates() {
        let data = toy(600);
        let queries = SynthSpec::new("toy", 600, 16).with_clusters(8).generate_queries(15, 61);
        let gt = dataset::ExactKnn::compute(&data, &queries, 5, Metric::Euclidean);
        let idx =
            LshForest::build(data.clone(), Metric::Euclidean, &LshForestParams::euclidean(4, 16, 4.0));
        let recall = |cap: usize| {
            let mut hits = 0usize;
            for (qi, q) in queries.iter().enumerate() {
                let out = idx.query(q, 5, cap);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.iter().filter(|n| truth.contains(&n.id)).count();
            }
            hits as f64 / (5.0 * queries.len() as f64)
        };
        let lo = recall(8);
        let hi = recall(400);
        assert!(hi >= lo);
        assert!(hi > 0.5, "large budget should recall > 50%, got {hi}");
    }

    #[test]
    #[should_panic(expected = "trees and depth")]
    fn zero_depth_panics() {
        LshForest::build(toy(10), Metric::Euclidean, &LshForestParams::euclidean(2, 0, 4.0));
    }
}
