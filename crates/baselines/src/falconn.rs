//! FALCONN-style cross-polytope LSH (Andoni et al., NeurIPS 2015).
//!
//! The practical, asymptotically optimal scheme for Angular distance: `K`
//! concatenated cross-polytope hashes per table with fast pseudo-random
//! rotations, plus multi-probe over alternative polytope vertices ranked by
//! the rotated query's coordinate magnitudes. Structurally this is
//! [`crate::multiprobe_lsh`] instantiated with the cross-polytope family —
//! which is exactly how the paper positions FALCONN ("similar to Multi-Probe
//! LSH, FALCONN also applies the static concatenating search framework with
//! an intelligent probing strategy", §6.3) — so the implementation delegates
//! to the shared machinery with angular-appropriate defaults.

use crate::multiprobe_lsh::{MultiProbeLsh, MultiProbeLshParams};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{FamilyKind, FamilyParams};
use std::sync::Arc;

/// Build parameters for the FALCONN-style index.
#[derive(Debug, Clone)]
pub struct FalconnParams {
    /// Cross-polytope hashes concatenated per table.
    pub k_funcs: usize,
    /// Number of tables.
    pub l_tables: usize,
    /// Extra probes per query across all tables.
    pub probes: usize,
    /// Alternative vertices considered per hash.
    pub max_alts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FalconnParams {
    /// Reasonable angular defaults.
    pub fn new(k_funcs: usize, l_tables: usize, probes: usize) -> Self {
        Self { k_funcs, l_tables, probes, max_alts: 8, seed: 0xfa1c }
    }
}

/// The FALCONN-style index (cross-polytope + multiprobe).
pub struct Falconn {
    inner: MultiProbeLsh,
}

impl Falconn {
    /// Builds the index. Inputs should be normalized for Angular distance;
    /// the cross-polytope hash itself is scale-invariant so non-normalized
    /// vectors still hash consistently.
    pub fn build(data: Arc<Dataset>, params: &FalconnParams) -> Self {
        let mp = MultiProbeLshParams {
            k_funcs: params.k_funcs,
            l_tables: params.l_tables,
            probes: params.probes,
            max_alts: params.max_alts,
            family: FamilyKind::CrossPolytopeFast,
            family_params: FamilyParams::default(),
            seed: params.seed,
        };
        Self { inner: MultiProbeLsh::build(data, Metric::Angular, &mp) }
    }

    /// c-k-ANNS under Angular distance.
    pub fn query(&self, q: &[f32], k: usize, max_candidates: usize) -> Vec<Neighbor> {
        self.inner.query(q, k, max_candidates)
    }

    /// Fresh reusable dedup scratch sized for this index's dataset.
    pub fn scratch(&self) -> crate::common::Dedup {
        self.inner.scratch()
    }

    /// [`Falconn::query`] with a query-time probe-count override.
    pub fn query_probes(
        &self,
        q: &[f32],
        k: usize,
        max_candidates: usize,
        probes: usize,
    ) -> Vec<Neighbor> {
        let mut dedup = self.inner.scratch();
        self.query_probes_with(q, k, max_candidates, probes, &mut dedup)
    }

    /// [`Falconn::query_probes`] with caller-provided scratch.
    pub fn query_probes_with(
        &self,
        q: &[f32],
        k: usize,
        max_candidates: usize,
        probes: usize,
        dedup: &mut crate::common::Dedup,
    ) -> Vec<Neighbor> {
        self.inner.query_probes(q, k, max_candidates, probes, dedup)
    }

    /// Index footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.inner.index_bytes()
    }
}

/// [`ann::AnnIndex`] for the FALCONN-style index: `budget` is the candidate
/// cap, `probes` the probe-sequence length (`0` = no extra probes).
impl ann::AnnIndex for Falconn {
    fn name(&self) -> &'static str {
        "FALCONN"
    }

    fn len(&self) -> usize {
        self.inner.data_len()
    }

    fn index_bytes(&self) -> usize {
        Falconn::index_bytes(self)
    }

    fn make_scratch(&self) -> ann::Scratch {
        ann::Scratch::new(self.scratch())
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        let dedup = scratch.get_valid_with(
            |d: &crate::common::Dedup| d.capacity() == self.inner.data_len(),
            || self.scratch(),
        );
        self.query_probes_with(q, p.k, p.budget, p.probes, dedup)
    }
}

/// Builds under [`ann::BuildAnn`]; the metric argument is ignored — the
/// cross-polytope family is Angular-only by construction.
impl ann::BuildAnn for Falconn {
    type Params = FalconnParams;

    fn build_index(data: Arc<Dataset>, _metric: Metric, params: &FalconnParams) -> Self {
        Falconn::build(data, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn sphere(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("s", n, 24).with_clusters(8).generate(5).normalized())
    }

    #[test]
    fn finds_own_cluster() {
        let data = sphere(400);
        let idx = Falconn::build(data.clone(), &FalconnParams::new(2, 8, 32));
        let out = idx.query(data.get(11), 1, 500);
        assert!(!out.is_empty());
        assert!(out[0].dist < 0.4, "top hit should be nearby, got {}", out[0].dist);
    }

    #[test]
    fn self_collision_with_single_hash() {
        let data = sphere(200);
        let idx = Falconn::build(data.clone(), &FalconnParams::new(1, 4, 0));
        let out = idx.query(data.get(3), 1, 500);
        assert_eq!(out[0].id, 3, "identical vector always lands in its own bucket");
    }

    #[test]
    fn probes_increase_or_keep_recall() {
        let data = sphere(600);
        let queries = SynthSpec::new("s", 600, 24)
            .with_clusters(8)
            .generate_queries(25, 5)
            .normalized();
        let gt = dataset::ExactKnn::compute(&data, &queries, 5, Metric::Angular);
        let recall = |probes: usize| {
            let idx = Falconn::build(data.clone(), &FalconnParams::new(3, 2, probes));
            let mut hits = 0usize;
            for (qi, q) in queries.iter().enumerate() {
                let out = idx.query(q, 5, 3000);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.iter().filter(|n| truth.contains(&n.id)).count();
            }
            hits as f64 / (5.0 * queries.len() as f64)
        };
        let r0 = recall(0);
        let r64 = recall(64);
        assert!(r64 >= r0, "probing must not reduce recall: {r0} -> {r64}");
    }
}
