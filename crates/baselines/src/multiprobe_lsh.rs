//! Multi-Probe LSH (Lv et al., VLDB 2007).
//!
//! E2LSH's table structure plus *query-directed probing*: after the `L` home
//! buckets, additional buckets are probed in ascending perturbation-score
//! order, letting a small `L` behave like a much larger one — the scheme the
//! paper credits with the best space trade-off among the static-framework
//! baselines (§6.4). Probes from different tables are interleaved through a
//! global score heap, matching the original's query-directed ordering.

use crate::common::{mix_key, verify_topk, Dedup};
use crate::probing::{Probe, ProbeSequence};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind, FamilyParams, LshFunction, ScoredAlt};
use std::collections::HashMap;
use std::sync::Arc;

/// Build parameters for Multi-Probe LSH.
#[derive(Debug, Clone)]
pub struct MultiProbeLshParams {
    /// Concatenation length `K`.
    pub k_funcs: usize,
    /// Number of tables `L` (multi-probe keeps this small).
    pub l_tables: usize,
    /// Extra probes per query across all tables (0 = plain E2LSH).
    pub probes: usize,
    /// Alternatives fetched per position.
    pub max_alts: usize,
    /// LSH family.
    pub family: FamilyKind,
    /// Family parameters.
    pub family_params: FamilyParams,
    /// RNG seed.
    pub seed: u64,
}

impl MultiProbeLshParams {
    /// Euclidean defaults (random projection).
    pub fn euclidean(k_funcs: usize, l_tables: usize, probes: usize, w: f64) -> Self {
        Self {
            k_funcs,
            l_tables,
            probes,
            max_alts: 4,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0x3b15,
        }
    }
}

/// The Multi-Probe LSH index.
pub struct MultiProbeLsh {
    data: Arc<Dataset>,
    metric: Metric,
    funcs: Vec<Box<dyn LshFunction>>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    params: MultiProbeLshParams,
    bucket_entries: usize,
}

impl MultiProbeLsh {
    /// Builds the `L` tables (identical to E2LSH's indexing phase).
    ///
    /// # Panics
    /// Panics on an empty dataset or zero `K`/`L`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &MultiProbeLshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.k_funcs > 0 && params.l_tables > 0, "K and L must be positive");
        let total = params.k_funcs * params.l_tables;
        let funcs = sample_family(params.family, data.dim(), total, &params.family_params, params.seed);
        let mut tables = Vec::with_capacity(params.l_tables);
        let mut bucket_entries = 0usize;
        let mut key_buf = vec![0u64; params.k_funcs];
        for t in 0..params.l_tables {
            let tf = &funcs[t * params.k_funcs..(t + 1) * params.k_funcs];
            let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, v) in data.iter().enumerate() {
                for (slot, f) in key_buf.iter_mut().zip(tf) {
                    *slot = f.hash(v);
                }
                table.entry(mix_key(key_buf.iter().copied())).or_default().push(i as u32);
                bucket_entries += 1;
            }
            tables.push(table);
        }
        Self { data, metric, funcs, tables, params: params.clone(), bucket_entries }
    }

    fn table_funcs(&self, t: usize) -> &[Box<dyn LshFunction>] {
        &self.funcs[t * self.params.k_funcs..(t + 1) * self.params.k_funcs]
    }

    /// c-k-ANNS: home buckets of all tables, then `probes` perturbed buckets
    /// in global ascending score order; at most `max_candidates` verified.
    pub fn query(&self, q: &[f32], k: usize, max_candidates: usize) -> Vec<Neighbor> {
        let mut dedup = Dedup::new(self.data.len());
        self.query_with(q, k, max_candidates, &mut dedup)
    }

    /// Fresh reusable dedup scratch sized for this index's dataset.
    pub fn scratch(&self) -> Dedup {
        Dedup::new(self.data.len())
    }

    /// Indexed object count (scratch-validation hook for the FALCONN
    /// wrapper).
    pub(crate) fn data_len(&self) -> usize {
        self.data.len()
    }

    /// [`MultiProbeLsh::query`] with reusable scratch.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        max_candidates: usize,
        dedup: &mut Dedup,
    ) -> Vec<Neighbor> {
        self.query_probes(q, k, max_candidates, self.params.probes, dedup)
    }

    /// [`MultiProbeLsh::query_with`] with a query-time probe-count override
    /// (lets the harness sweep probes without rebuilding the tables).
    pub fn query_probes(
        &self,
        q: &[f32],
        k: usize,
        max_candidates: usize,
        probes: usize,
        dedup: &mut Dedup,
    ) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        dedup.begin();
        let cap = max_candidates.max(k);
        let mut cands: Vec<u32> = Vec::new();
        let kf = self.params.k_funcs;

        // Home buckets + per-table base keys and alternatives.
        let mut base_keys: Vec<Vec<u64>> = Vec::with_capacity(self.tables.len());
        for (t, table) in self.tables.iter().enumerate() {
            let key: Vec<u64> = self.table_funcs(t).iter().map(|f| f.hash(q)).collect();
            if let Some(bucket) = table.get(&mix_key(key.iter().copied())) {
                for &id in bucket {
                    if dedup.mark_new(id) && cands.len() < cap {
                        cands.push(id);
                    }
                }
            }
            base_keys.push(key);
        }

        if probes > 0 && cands.len() < cap {
            // Per-table probe sequences, globally interleaved by score.
            let alt_lists: Vec<Vec<Vec<ScoredAlt>>> = (0..self.tables.len())
                .map(|t| {
                    self.table_funcs(t)
                        .iter()
                        .map(|f| f.alternatives(q, self.params.max_alts))
                        .collect()
                })
                .collect();
            let mut seqs: Vec<ProbeSequence> =
                alt_lists.iter().map(|a| ProbeSequence::new(a)).collect();

            // (score, table, probe) min-ordering via sort keys in a heap.
            struct Pending {
                score: f64,
                table: usize,
                probe: Probe,
            }
            impl PartialEq for Pending {
                fn eq(&self, o: &Self) -> bool {
                    self.score == o.score && self.table == o.table
                }
            }
            impl Eq for Pending {}
            impl Ord for Pending {
                fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                    o.score.total_cmp(&self.score).then_with(|| o.table.cmp(&self.table))
                }
            }
            impl PartialOrd for Pending {
                fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(o))
                }
            }

            let mut heap = std::collections::BinaryHeap::new();
            for (t, seq) in seqs.iter_mut().enumerate() {
                if let Some(p) = seq.next() {
                    heap.push(Pending { score: p.score, table: t, probe: p });
                }
            }
            let mut key_buf = vec![0u64; kf];
            for _ in 0..probes {
                let Some(Pending { table: t, probe, .. }) = heap.pop() else { break };
                key_buf.copy_from_slice(&base_keys[t]);
                for e in &probe.entries {
                    key_buf[e.pos as usize] = e.symbol;
                }
                if let Some(bucket) = self.tables[t].get(&mix_key(key_buf.iter().copied())) {
                    for &id in bucket {
                        if dedup.mark_new(id) && cands.len() < cap {
                            cands.push(id);
                        }
                    }
                }
                if cands.len() >= cap {
                    break;
                }
                if let Some(p) = seqs[t].next() {
                    heap.push(Pending { score: p.score, table: t, probe: p });
                }
            }
        }

        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint (same accounting as E2LSH).
    pub fn index_bytes(&self) -> usize {
        let entries = self.bucket_entries * 4;
        let buckets: usize = self.tables.iter().map(|t| t.len() * 16).sum();
        let funcs = self.params.k_funcs * self.params.l_tables * self.data.dim() * 4;
        entries + buckets + funcs
    }
}

/// [`ann::AnnIndex`] for Multi-Probe LSH: `budget` is the candidate cap,
/// `probes` the probe-sequence length (`0` = no extra probes, matching the
/// eval harness's historical convention).
impl ann::AnnIndex for MultiProbeLsh {
    fn name(&self) -> &'static str {
        "Multi-Probe LSH"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        MultiProbeLsh::index_bytes(self)
    }

    fn make_scratch(&self) -> ann::Scratch {
        ann::Scratch::new(self.scratch())
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        let dedup = scratch.get_valid_with(
            |d: &Dedup| d.capacity() == self.data.len(),
            || self.scratch(),
        );
        self.query_probes(q, p.k, p.budget, p.probes, dedup)
    }
}

impl ann::BuildAnn for MultiProbeLsh {
    type Params = MultiProbeLshParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &MultiProbeLshParams) -> Self {
        MultiProbeLsh::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(21))
    }

    #[test]
    fn self_query_hits_itself() {
        let data = toy(300);
        let idx = MultiProbeLsh::build(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams::euclidean(4, 4, 16, 8.0),
        );
        let out = idx.query(data.get(8), 1, 500);
        assert_eq!(out[0].id, 8);
    }

    #[test]
    fn probing_recovers_what_few_tables_miss() {
        // With K large and a single table, the home bucket often misses the
        // true NN of a *perturbed* query; probing must recover many of them.
        let data = toy(800);
        let noisy: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let mut v = data.get(i * 7).to_vec();
                for (j, x) in v.iter_mut().enumerate() {
                    *x += ((i * 31 + j * 17) % 13) as f32 * 0.02 - 0.12;
                }
                v
            })
            .collect();
        let home_only = MultiProbeLsh::build(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams::euclidean(6, 1, 0, 2.0),
        );
        let probing = MultiProbeLsh::build(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams::euclidean(6, 1, 64, 2.0),
        );
        let hits = |idx: &MultiProbeLsh| {
            noisy
                .iter()
                .enumerate()
                .filter(|(i, q)| {
                    idx.query(q, 1, 2000).first().map(|n| n.id) == Some((*i as u32) * 7)
                })
                .count()
        };
        let h0 = hits(&home_only);
        let h1 = hits(&probing);
        assert!(h1 >= h0, "probing cannot hurt: {h0} -> {h1}");
        assert!(h1 > h0, "probing should recover at least one miss ({h0} -> {h1})");
    }

    #[test]
    fn zero_probes_equals_e2lsh() {
        let data = toy(200);
        let mp = MultiProbeLsh::build(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams {
                seed: 0xe215,
                ..MultiProbeLshParams::euclidean(3, 4, 0, 8.0)
            },
        );
        let e2 = crate::e2lsh::E2Lsh::build(
            data.clone(),
            Metric::Euclidean,
            &crate::e2lsh::E2lshParams::euclidean(3, 4, 8.0),
        );
        for i in [0usize, 50, 123] {
            let a = mp.query(data.get(i), 5, 100);
            let b = e2.query(data.get(i), 5, 100);
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn candidate_cap_respected() {
        let data = toy(300);
        let idx = MultiProbeLsh::build(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams::euclidean(2, 4, 32, 20.0),
        );
        let out = idx.query(data.get(0), 3, 5);
        assert!(out.len() <= 3);
    }
}
