//! QALSH — query-aware LSH (Huang et al., PVLDB 2015 / VLDBJ 2017),
//! memory version.
//!
//! Where C2LSH quantizes projections into buckets at indexing time, QALSH
//! keeps the *raw* projections `h_a(o) = a·o` in sorted order (the paper's
//! B⁺-tree; a sorted array in memory) and anchors the bucket on the query:
//! at round `R`, object `o` collides with `q` under `h_a` iff
//! `|a·o − a·q| ≤ w·R/2`. Collision counting and the `l` threshold then
//! work exactly as in C2LSH, with two-pointer windows widening per round —
//! the "query-aware" part removes the random bucket-offset misalignment.

use crate::common::{verify_topk, Dedup};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};
use std::sync::Arc;

/// Build parameters for QALSH.
#[derive(Debug, Clone)]
pub struct QalshParams {
    /// Number of projections `m`.
    pub m: usize,
    /// Collision threshold `l`.
    pub l: usize,
    /// Bucket width `w` (full width; the query-anchored half-width is w/2).
    pub w: f64,
    /// Approximation ratio `c` driving round widening.
    pub c: f64,
    /// Termination slack: stop after `k + beta_n` candidates.
    pub beta_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QalshParams {
    /// Defaults mirroring the authors' memory version.
    pub fn new(m: usize, l: usize, w: f64) -> Self {
        Self { m, l, w, c: 2.0, beta_n: 100, seed: 0x9a15 }
    }
}

/// One projection line: the Gaussian vector and the sorted projections.
struct Line {
    a: Vec<f32>,
    /// (projection, id) sorted ascending by projection.
    entries: Vec<(f32, u32)>,
}

/// The QALSH index.
pub struct Qalsh {
    data: Arc<Dataset>,
    metric: Metric,
    lines: Vec<Line>,
    params: QalshParams,
}

impl Qalsh {
    /// Builds `m` sorted projection lines.
    ///
    /// # Panics
    /// Panics on empty data or `l > m` / `l == 0` / non-positive `w`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &QalshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.l >= 1 && params.l <= params.m, "need 1 <= l <= m");
        assert!(params.w > 0.0, "bucket width must be positive");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let lines = (0..params.m)
            .map(|_| {
                let a: Vec<f32> = (0..data.dim())
                    .map(|_| {
                        let g: f64 = StandardNormal.sample(&mut rng);
                        g as f32
                    })
                    .collect();
                let mut entries: Vec<(f32, u32)> = data
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (dataset::metric::dot(&a, v) as f32, i as u32))
                    .collect();
                entries.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                Line { a, entries }
            })
            .collect();
        Self { data, metric, lines, params: params.clone() }
    }

    /// c-k-ANNS by query-aware collision counting.
    pub fn query(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.query_slack(q, k, self.params.beta_n)
    }

    /// [`Qalsh::query`] with a query-time candidate-slack override.
    pub fn query_slack(&self, q: &[f32], k: usize, beta_n: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        let n = self.data.len();
        let m = self.params.m;
        let mut counts = vec![0u32; n];
        let mut dedup = Dedup::new(n);
        dedup.begin();
        let mut cands: Vec<u32> = Vec::new();
        let cap = (k + beta_n).min(n);

        // Anchor: the query's projection on every line; windows start empty
        // at the anchor's insertion point.
        let anchors: Vec<f32> =
            self.lines.iter().map(|l| dataset::metric::dot(&l.a, q) as f32).collect();
        let mut lo: Vec<usize> = self
            .lines
            .iter()
            .zip(&anchors)
            .map(|(l, &p)| l.entries.partition_point(|&(x, _)| x < p))
            .collect();
        let mut hi = lo.clone();

        let mut radius = 1.0f64;
        for _round in 0..48 {
            let half = self.params.w * radius / 2.0;
            for j in 0..m {
                let line = &self.lines[j];
                let lo_bound = anchors[j] - half as f32;
                let hi_bound = anchors[j] + half as f32;
                // widen left
                while lo[j] > 0 && line.entries[lo[j] - 1].0 >= lo_bound {
                    lo[j] -= 1;
                    let id = line.entries[lo[j]].1;
                    let c = &mut counts[id as usize];
                    *c += 1;
                    if *c as usize >= self.params.l && dedup.mark_new(id) {
                        cands.push(id);
                    }
                }
                // widen right
                while hi[j] < line.entries.len() && line.entries[hi[j]].0 <= hi_bound {
                    let id = line.entries[hi[j]].1;
                    hi[j] += 1;
                    let c = &mut counts[id as usize];
                    *c += 1;
                    if *c as usize >= self.params.l && dedup.mark_new(id) {
                        cands.push(id);
                    }
                }
            }
            if cands.len() >= cap {
                break;
            }
            radius *= self.params.c;
            if (0..m).all(|j| lo[j] == 0 && hi[j] == self.lines[j].entries.len()) {
                break;
            }
        }

        if cands.len() < k {
            let mut rest: Vec<u32> = (0..n as u32).filter(|&i| !cands.contains(&i)).collect();
            rest.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
            cands.extend(rest.into_iter().take(k - cands.len()));
        }

        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: m sorted (f32, u32) arrays + projection vectors.
    pub fn index_bytes(&self) -> usize {
        self.lines.iter().map(|l| l.entries.len() * 8 + l.a.len() * 4).sum()
    }
}

/// [`ann::AnnIndex`] for QALSH: `budget` is the βn collision-count slack;
/// `probes` is ignored.
impl ann::AnnIndex for Qalsh {
    fn name(&self) -> &'static str {
        "QALSH"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        Qalsh::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        self.query_slack(q, p.k, p.budget)
    }
}

impl ann::BuildAnn for Qalsh {
    type Params = QalshParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &QalshParams) -> Self {
        Qalsh::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(41))
    }

    #[test]
    fn self_query_is_top() {
        let data = toy(300);
        let idx = Qalsh::build(data.clone(), Metric::Euclidean, &QalshParams::new(32, 8, 2.0));
        let out = idx.query(data.get(77), 1);
        assert_eq!(out[0].id, 77);
    }

    #[test]
    fn query_aware_buckets_beat_round_one_width() {
        // At round 1 the query-anchored window [p−w/2, p+w/2] must already
        // cover near projections, so near duplicates become candidates fast.
        let data = toy(400);
        let idx = Qalsh::build(data.clone(), Metric::Euclidean, &QalshParams::new(24, 12, 4.0));
        let mut q = data.get(10).to_vec();
        for x in q.iter_mut() {
            *x += 0.02;
        }
        let out = idx.query(&q, 1);
        assert_eq!(out[0].id, 10);
    }

    #[test]
    fn returns_sorted_k() {
        let data = toy(250);
        let idx = Qalsh::build(data.clone(), Metric::Euclidean, &QalshParams::new(16, 4, 2.0));
        let out = idx.query(data.get(0), 8);
        assert_eq!(out.len(), 8);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn fallback_fills_k_on_tiny_data() {
        let data = Arc::new(SynthSpec::new("t", 6, 8).generate(2));
        let idx = Qalsh::build(data.clone(), Metric::Euclidean, &QalshParams::new(4, 4, 0.01));
        assert_eq!(idx.query(data.get(1), 6).len(), 6);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn bad_w_panics() {
        Qalsh::build(toy(10), Metric::Euclidean, &QalshParams::new(4, 2, 0.0));
    }
}
