//! SRS — c-ANNS with a tiny index (Sun et al., PVLDB 2014), memory version.
//!
//! SRS projects the dataset to `d′ ∈ [4, 10]` dimensions with Gaussian
//! random projections and answers queries by *incremental* nearest-neighbor
//! search in the projected space (here over [`crate::kdtree`], standing in
//! for the paper-version R-tree / the authors' memory-version cover tree).
//! Each projected hit is verified in the original space; the search stops
//! when either
//!
//! * `max_verify` objects have been verified (the `t·n` budget knob), or
//! * the *early-termination test* fires: the squared projected distance of
//!   the next candidate exceeds `threshold² · best²`, where `threshold` is
//!   calibrated from the χ²(d′) concentration of Gaussian projections —
//!   once projected distances are this large, the probability any remaining
//!   object beats the current best is below the target failure rate.
//!
//! The index is d′ floats per object — the "tiny index" that gives SRS its
//! name and its place in the paper's Figure 6 trade-off.

use crate::common::verify_topk;
use crate::kdtree::KdTree;
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};
use std::sync::Arc;

/// Build parameters for SRS.
#[derive(Debug, Clone)]
pub struct SrsParams {
    /// Projected dimensionality `d′` (the paper sweeps 4..=10).
    pub d_proj: usize,
    /// Hard verification budget per query (the `t·n` knob).
    pub max_verify: usize,
    /// Early-termination slack multiplier on the χ² calibration (≥ 1;
    /// larger = more accurate, slower).
    pub slack: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SrsParams {
    /// Defaults matching the paper's memory configuration.
    pub fn new(d_proj: usize, max_verify: usize) -> Self {
        Self { d_proj, max_verify, slack: 1.0, seed: 0x5125 }
    }
}

/// The SRS index.
pub struct Srs {
    data: Arc<Dataset>,
    metric: Metric,
    proj: Vec<f32>, // d_proj × dim, row-major
    tree: KdTree,
    params: SrsParams,
    threshold_sq: f64,
}

impl Srs {
    /// Projects the dataset and builds the kd-tree.
    ///
    /// # Panics
    /// Panics on empty data or `d_proj == 0`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &SrsParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.d_proj >= 1, "projected dimension must be positive");
        let d = data.dim();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut proj = vec![0.0f32; params.d_proj * d];
        for x in &mut proj {
            let g: f64 = StandardNormal.sample(&mut rng);
            // 1/sqrt(d') scaling makes projected distances unbiased
            // estimators of original distances.
            *x = (g / (params.d_proj as f64).sqrt()) as f32;
        }
        let mut projected = vec![0.0f32; data.len() * params.d_proj];
        for (i, v) in data.iter().enumerate() {
            for r in 0..params.d_proj {
                projected[i * params.d_proj + r] =
                    dataset::metric::dot(&proj[r * d..(r + 1) * d], v) as f32;
            }
        }
        let tree = KdTree::build(params.d_proj, projected);
        // χ²(d′) upper-quantile calibration: a Gaussian projection of a
        // vector at true distance τ has E[proj²] = τ² and is concentrated;
        // stopping when proj² > (q_{0.99}/d′)·slack·best² keeps the miss
        // probability per object below ~1%. q_{0.99}(χ²_k) ≈ k + 2√(2k·ln100)
        // + 2·ln100 (Laurent–Massart).
        let kf = params.d_proj as f64;
        let ln100 = 100.0f64.ln();
        let q99 = kf + 2.0 * (2.0 * kf * ln100).sqrt() + 2.0 * ln100;
        let threshold_sq = q99 / kf * params.slack;
        Self { data, metric, proj, tree, params: params.clone(), threshold_sq }
    }

    /// c-k-ANNS by incremental projected NN + verification.
    pub fn query(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.query_budget(q, k, self.params.max_verify)
    }

    /// [`Srs::query`] with a query-time verification-budget override.
    pub fn query_budget(&self, q: &[f32], k: usize, max_verify: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        let d = self.data.dim();
        let qp: Vec<f32> = (0..self.params.d_proj)
            .map(|r| dataset::metric::dot(&self.proj[r * d..(r + 1) * d], q) as f32)
            .collect();
        let mut cands: Vec<u32> = Vec::new();
        let mut best_sq = f64::INFINITY;
        let budget = max_verify.max(k).min(self.data.len());
        for (id, proj_sq) in self.tree.nearest_iter(&qp) {
            if cands.len() >= budget {
                break;
            }
            // Early termination: projected distances are now provably (w.h.p.)
            // beyond the current best true distance.
            if best_sq.is_finite() && proj_sq > self.threshold_sq * best_sq {
                break;
            }
            let true_sq = dataset::metric::squared_euclidean(self.data.get(id as usize), q);
            best_sq = best_sq.min(true_sq);
            cands.push(id);
        }
        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: the kd-tree over n·d′ floats + the projection matrix.
    pub fn index_bytes(&self) -> usize {
        self.tree.nbytes() + self.proj.len() * 4
    }
}

/// [`ann::AnnIndex`] for SRS: `budget` is the exact-verification budget of
/// the projected incremental-NN walk; `probes` is ignored.
impl ann::AnnIndex for Srs {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        Srs::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        self.query_budget(q, p.k, p.budget)
    }
}

impl ann::BuildAnn for Srs {
    type Params = SrsParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &SrsParams) -> Self {
        Srs::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 32).with_clusters(10).generate(51))
    }

    #[test]
    fn self_query_tops() {
        let data = toy(300);
        let idx = Srs::build(data.clone(), Metric::Euclidean, &SrsParams::new(6, 100));
        let out = idx.query(data.get(21), 1);
        assert_eq!(out[0].id, 21, "projected distance 0 is visited first");
    }

    #[test]
    fn high_budget_approaches_exact() {
        let data = toy(400);
        let queries = SynthSpec::new("toy", 400, 32).with_clusters(10).generate_queries(15, 5);
        let gt = dataset::ExactKnn::compute(&data, &queries, 5, Metric::Euclidean);
        let idx = Srs::build(data.clone(), Metric::Euclidean, &SrsParams::new(8, 400));
        let mut hits = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let out = idx.query(q, 5);
            let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
            hits += out.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits as f64 / (5.0 * queries.len() as f64);
        assert!(recall > 0.85, "full-budget SRS should be near-exact, recall {recall}");
    }

    #[test]
    fn budget_monotonicity() {
        let data = toy(500);
        let queries = SynthSpec::new("toy", 500, 32).with_clusters(10).generate_queries(10, 9);
        let gt = dataset::ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);
        let recall = |budget: usize| {
            let idx = Srs::build(data.clone(), Metric::Euclidean, &SrsParams::new(6, budget));
            let mut hits = 0usize;
            for (qi, q) in queries.iter().enumerate() {
                let out = idx.query(q, 10);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.iter().filter(|n| truth.contains(&n.id)).count();
            }
            hits as f64 / (10.0 * queries.len() as f64)
        };
        assert!(recall(250) >= recall(20) - 1e-9);
    }

    #[test]
    fn index_is_tiny_relative_to_data() {
        let data = toy(1000);
        let idx = Srs::build(data.clone(), Metric::Euclidean, &SrsParams::new(6, 100));
        assert!(
            idx.index_bytes() < data.nbytes(),
            "SRS's selling point is the tiny index: {} vs {}",
            idx.index_bytes(),
            data.nbytes()
        );
    }

    #[test]
    fn early_termination_caps_work() {
        let data = toy(400);
        let idx = Srs::build(data.clone(), Metric::Euclidean, &SrsParams::new(6, 5));
        let out = idx.query(data.get(0), 3);
        assert!(out.len() <= 3);
        assert_eq!(out[0].id, 0);
    }
}
