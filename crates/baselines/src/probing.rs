//! Query-directed probe-sequence generation (Lv et al., VLDB 2007) — the
//! shared engine of [`crate::multiprobe_lsh`] and [`crate::falconn`].
//!
//! Given, for each of the `K` positions of a compound hash, a list of
//! *alternative* symbols with perturbation scores (ascending), the generator
//! enumerates perturbation sets — subsets picking at most one alternative
//! per position — in non-decreasing total score. It is the classic
//! min-heap/shift/expand construction over the globally score-sorted entry
//! list `z₁ ≤ z₂ ≤ …`:
//!
//! * `shift(A)`: replace the maximum entry index `i` of `A` by `i + 1`;
//! * `expand(A)`: add entry index `max(A) + 1` to `A`.
//!
//! Both successors have a score no smaller than `A`'s, so heap pops are
//! globally ordered; every subset has a unique generation path, so nothing
//! repeats. Subsets that pick two alternatives of the same position are
//! *invalid*: they are skipped at emission but still expanded, exactly as in
//! the original algorithm.

use lsh::ScoredAlt;

/// One flattened perturbation entry: position `pos` replaced by `symbol`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEntry {
    /// Which compound-hash position to replace.
    pub pos: u32,
    /// Replacement symbol.
    pub symbol: u64,
    /// Perturbation score (smaller probes first).
    pub score: f64,
}

/// A generated probe: the set of (position, symbol) replacements to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Replacements, at most one per position.
    pub entries: Vec<ProbeEntry>,
    /// Total score.
    pub score: f64,
}

#[derive(Debug)]
struct State {
    /// Sorted entry indices into the flattened z-list.
    idx: Vec<u32>,
    score: f64,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx
    }
}
impl Eq for State {}
impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.score.total_cmp(&self.score).then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming generator of [`Probe`]s in ascending score order (the base,
/// unperturbed probe is *not* emitted — callers look up the home bucket
/// themselves first).
pub struct ProbeSequence {
    z: Vec<ProbeEntry>,
    heap: std::collections::BinaryHeap<State>,
}

impl ProbeSequence {
    /// `alts[i]` = ascending-score alternatives of position `i` (from
    /// [`lsh::LshFunction::alternatives`]).
    pub fn new(alts: &[Vec<ScoredAlt>]) -> Self {
        let mut z: Vec<ProbeEntry> = alts
            .iter()
            .enumerate()
            .flat_map(|(pos, list)| {
                list.iter().map(move |a| ProbeEntry {
                    pos: pos as u32,
                    symbol: a.symbol,
                    score: a.score,
                })
            })
            .collect();
        z.sort_by(|a, b| a.score.total_cmp(&b.score));
        let mut heap = std::collections::BinaryHeap::new();
        if !z.is_empty() {
            heap.push(State { idx: vec![0], score: z[0].score });
        }
        Self { z, heap }
    }

    fn emit(&self, s: &State) -> Option<Probe> {
        // Valid iff all positions distinct.
        let mut positions: Vec<u32> = s.idx.iter().map(|&i| self.z[i as usize].pos).collect();
        positions.sort_unstable();
        for w in positions.windows(2) {
            if w[0] == w[1] {
                return None;
            }
        }
        Some(Probe {
            entries: s.idx.iter().map(|&i| self.z[i as usize]).collect(),
            score: s.score,
        })
    }
}

impl Iterator for ProbeSequence {
    type Item = Probe;

    fn next(&mut self) -> Option<Probe> {
        loop {
            let s = self.heap.pop()?;
            let max = *s.idx.last().expect("states are non-empty") as usize;
            if max + 1 < self.z.len() {
                // shift
                let mut idx = s.idx.clone();
                *idx.last_mut().expect("non-empty") = (max + 1) as u32;
                let score = s.score - self.z[max].score + self.z[max + 1].score;
                self.heap.push(State { idx, score });
                // expand
                let mut idx = s.idx.clone();
                idx.push((max + 1) as u32);
                let score = s.score + self.z[max + 1].score;
                self.heap.push(State { idx, score });
            }
            if let Some(p) = self.emit(&s) {
                return Some(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alts(rows: &[&[f64]]) -> Vec<Vec<ScoredAlt>> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &s)| ScoredAlt { symbol: j as u64, score: s })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn scores_ascend() {
        let a = alts(&[&[0.1, 0.4], &[0.2, 0.3], &[0.15]]);
        let probes: Vec<Probe> = ProbeSequence::new(&a).take(20).collect();
        assert!(!probes.is_empty());
        for w in probes.windows(2) {
            assert!(w[0].score <= w[1].score + 1e-12);
        }
    }

    #[test]
    fn first_probe_is_single_cheapest() {
        let a = alts(&[&[0.5], &[0.1], &[0.3]]);
        let first = ProbeSequence::new(&a).next().unwrap();
        assert_eq!(first.entries.len(), 1);
        assert_eq!(first.entries[0].pos, 1);
        assert!((first.score - 0.1).abs() < 1e-12);
    }

    #[test]
    fn no_position_used_twice() {
        let a = alts(&[&[0.1, 0.11, 0.12], &[0.2]]);
        for p in ProbeSequence::new(&a).take(16) {
            let mut pos: Vec<u32> = p.entries.iter().map(|e| e.pos).collect();
            pos.sort_unstable();
            pos.dedup();
            assert_eq!(pos.len(), p.entries.len(), "{p:?}");
        }
    }

    #[test]
    fn no_duplicates_and_exhaustive_for_small_case() {
        // 2 positions × 1 alt each: valid non-empty subsets = {a}, {b}, {a,b}.
        let a = alts(&[&[0.1], &[0.2]]);
        let got: Vec<Probe> = ProbeSequence::new(&a).collect();
        assert_eq!(got.len(), 3);
        let sizes: Vec<usize> = got.iter().map(|p| p.entries.len()).collect();
        assert_eq!(sizes, vec![1, 1, 2]);
        assert!((got[2].score - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_alternatives_yield_nothing() {
        let a: Vec<Vec<ScoredAlt>> = vec![vec![], vec![]];
        assert_eq!(ProbeSequence::new(&a).count(), 0);
    }

    #[test]
    fn scores_are_entry_sums() {
        let a = alts(&[&[0.1, 0.4], &[0.25]]);
        for p in ProbeSequence::new(&a).take(10) {
            let want: f64 = p.entries.iter().map(|e| e.score).sum();
            assert!((p.score - want).abs() < 1e-12);
        }
    }
}
