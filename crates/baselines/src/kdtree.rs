//! kd-tree with best-bin-first incremental nearest-neighbor iteration —
//! the low-dimensional substrate SRS searches its projected space with.
//!
//! Median-split construction over ids (O(n log n) with `select_nth`),
//! queries via a single priority queue holding both subtrees (keyed by the
//! minimum possible distance to their bounding slab) and points (keyed by
//! exact distance). Popping yields points in exactly ascending Euclidean
//! distance — the "incremental NN" interface `Srs` consumes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A kd-tree over `n` points of (low) dimension `d`.
pub struct KdTree {
    dim: usize,
    points: Vec<f32>,
    nodes: Vec<Node>,
    root: u32,
}

const LEAF_SIZE: usize = 8;

enum Node {
    Leaf {
        ids: Vec<u32>,
    },
    Split {
        axis: u8,
        value: f32,
        left: u32,
        right: u32,
    },
}

impl KdTree {
    /// Builds over row-major `points` (n×d).
    ///
    /// # Panics
    /// Panics if `dim == 0`, the buffer is ragged, or there are no points.
    pub fn build(dim: usize, points: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            !points.is_empty() && points.len().is_multiple_of(dim),
            "ragged or empty point buffer"
        );
        let n = points.len() / dim;
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut tree = Self { dim, points, nodes: Vec::new(), root: 0 };
        let root = tree.build_rec(&mut ids, 0);
        tree.root = root;
        tree
    }

    fn coord(&self, id: u32, axis: usize) -> f32 {
        self.points[id as usize * self.dim + axis]
    }

    fn build_rec(&mut self, ids: &mut [u32], depth: usize) -> u32 {
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { ids: ids.to_vec() });
            return (self.nodes.len() - 1) as u32;
        }
        let axis = depth % self.dim;
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a as usize * self.dim + axis]
                .total_cmp(&self.points[b as usize * self.dim + axis])
        });
        let value = self.coord(ids[mid], axis);
        let (l, r) = ids.split_at_mut(mid);
        let left = self.build_rec(l, depth + 1);
        let right = self.build_rec(r, depth + 1);
        self.nodes.push(Node::Split { axis: axis as u8, value, left, right });
        (self.nodes.len() - 1) as u32
    }

    /// Iterator producing `(id, squared_distance)` in ascending distance.
    pub fn nearest_iter<'a>(&'a self, q: &'a [f32]) -> NearestIter<'a> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut heap = BinaryHeap::new();
        heap.push(Entry { dist: 0.0, item: Item::Node(self.root) });
        NearestIter { tree: self, q, heap }
    }

    /// Memory footprint in bytes (points + nodes).
    pub fn nbytes(&self) -> usize {
        self.points.len() * 4
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Leaf { ids } => 24 + ids.len() * 4,
                    Node::Split { .. } => 16,
                })
                .sum::<usize>()
    }
}

enum Item {
    Node(u32),
    Point(u32),
}

struct Entry {
    dist: f64,
    item: Item,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist) // min-heap
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// See [`KdTree::nearest_iter`].
pub struct NearestIter<'a> {
    tree: &'a KdTree,
    q: &'a [f32],
    heap: BinaryHeap<Entry>,
}

impl Iterator for NearestIter<'_> {
    /// `(point id, squared Euclidean distance)`, ascending by distance.
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        while let Some(Entry { dist, item }) = self.heap.pop() {
            match item {
                Item::Point(id) => return Some((id, dist)),
                Item::Node(nid) => match &self.tree.nodes[nid as usize] {
                    Node::Leaf { ids } => {
                        for &id in ids {
                            let p = &self.tree.points
                                [id as usize * self.tree.dim..(id as usize + 1) * self.tree.dim];
                            let d = dataset::metric::squared_euclidean(p, self.q);
                            self.heap.push(Entry { dist: d, item: Item::Point(id) });
                        }
                    }
                    Node::Split { axis, value, left, right } => {
                        let delta = f64::from(self.q[*axis as usize] - value);
                        // `dist` is the parent's lower bound; the child on
                        // the query's side inherits it, the other side adds
                        // the slab distance.
                        let (near, far) = if delta < 0.0 { (left, right) } else { (right, left) };
                        self.heap.push(Entry { dist, item: Item::Node(*near) });
                        self.heap
                            .push(Entry { dist: dist.max(delta * delta), item: Item::Node(*far) });
                    }
                },
            }
        }
        None
    }
}

/// [`ann::AnnIndex`] for the kd-tree substrate: exact k-NN in its own
/// (projected) space via the incremental iterator; `budget` and `probes`
/// are ignored. The kd-tree is built from raw points rather than a
/// [`dataset::Dataset`], so it has no [`ann::BuildAnn`] impl.
impl ann::AnnIndex for KdTree {
    fn name(&self) -> &'static str {
        "kd-tree"
    }

    fn len(&self) -> usize {
        self.points.len() / self.dim.max(1)
    }

    fn index_bytes(&self) -> usize {
        self.nbytes()
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<dataset::exact::Neighbor> {
        assert!(p.k > 0, "k must be positive");
        self.nearest_iter(q)
            .take(p.k)
            .map(|(id, sq)| dataset::exact::Neighbor { id, dist: sq.sqrt() })
            .collect()
    }
}

/// Exact k-NN over a full [`dataset::Dataset`] through a kd-tree — the
/// registry-buildable form of the substrate (spec token `kdtree`).
///
/// Euclidean only: the best-bin-first bound prunes by squared Euclidean
/// slab distance, which is not a valid lower bound for the other metrics
/// (the eval registry rejects non-Euclidean specs with `BadParam`).
/// Results are canonicalized through [`verify_topk`], so ordering and tie
/// breaking (ascending distance, then id) match every other scheme.
pub struct KdTreeScan {
    data: std::sync::Arc<dataset::Dataset>,
    tree: KdTree,
}

impl KdTreeScan {
    /// Builds the tree over every vector of `data`.
    pub fn build(data: std::sync::Arc<dataset::Dataset>) -> Self {
        let tree = KdTree::build(data.dim(), data.as_flat().to_vec());
        Self { data, tree }
    }
}

use crate::common::verify_topk;

impl ann::AnnIndex for KdTreeScan {
    fn name(&self) -> &'static str {
        "KD-Tree"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        // The tree's own point copy counts; the shared dataset does not.
        self.tree.nbytes()
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<dataset::exact::Neighbor> {
        assert!(p.k > 0, "k must be positive");
        let k = p.k.min(self.data.len());
        // Take the exact top-k by squared distance, then keep draining
        // while candidates tie the kth distance so verify_topk can break
        // ties by id exactly like the linear scan does.
        let mut iter = self.tree.nearest_iter(q);
        let mut ids = Vec::with_capacity(k + 4);
        let mut kth = f64::INFINITY;
        for (id, sq) in iter.by_ref() {
            if ids.len() >= k && sq > kth {
                break;
            }
            if ids.len() == k - 1 {
                kth = sq;
            }
            ids.push(id);
        }
        verify_topk(&self.data, dataset::Metric::Euclidean, q, k, ids.into_iter())
    }
}

impl ann::BuildAnn for KdTreeScan {
    type Params = ();

    fn build_index(
        data: std::sync::Arc<dataset::Dataset>,
        metric: dataset::Metric,
        _params: &(),
    ) -> Self {
        assert!(
            matches!(metric, dataset::Metric::Euclidean),
            "KdTreeScan is Euclidean-only (got {})",
            metric.name()
        );
        KdTreeScan::build(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_linear_scan_exactly() {
        use ann::{AnnIndex, BuildAnn, SearchParams};
        let data = std::sync::Arc::new(
            dataset::SynthSpec::new("kdscan", 300, 6).with_clusters(5).generate(11),
        );
        let scan = KdTreeScan::build_index(data.clone(), dataset::Metric::Euclidean, &());
        let linear = crate::LinearScan::build(data.clone(), dataset::Metric::Euclidean);
        let p = SearchParams::new(7, 0);
        for qi in [0usize, 17, 123, 299] {
            let got = scan.query(data.get(qi), &p);
            let want = linear.query(data.get(qi), 7);
            assert_eq!(got, want, "query {qi}");
        }
        assert!(scan.index_bytes() > 0);
        assert_eq!(scan.name(), "KD-Tree");
    }

    #[test]
    fn scan_caps_k_at_n() {
        use ann::{AnnIndex, BuildAnn, SearchParams};
        let data =
            std::sync::Arc::new(dataset::SynthSpec::new("kdsmall", 5, 3).generate(2));
        let scan = KdTreeScan::build_index(data.clone(), dataset::Metric::Euclidean, &());
        assert_eq!(scan.query(data.get(0), &SearchParams::new(50, 0)).len(), 5);
    }

    #[test]
    #[should_panic(expected = "Euclidean-only")]
    fn scan_rejects_other_metrics() {
        use ann::BuildAnn;
        let data = std::sync::Arc::new(dataset::SynthSpec::new("kdang", 10, 3).generate(2));
        let _ = KdTreeScan::build_index(data, dataset::Metric::Angular, &());
    }

    fn grid2d() -> KdTree {
        // 5×5 grid of points (x, y) in 0..5
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push(x as f32);
                pts.push(y as f32);
            }
        }
        KdTree::build(2, pts)
    }

    #[test]
    fn nearest_is_exact_and_ascending() {
        let tree = grid2d();
        let q = [2.2f32, 2.7];
        let got: Vec<(u32, f64)> = tree.nearest_iter(&q).collect();
        assert_eq!(got.len(), 25);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1, "distances must ascend");
        }
        // Nearest grid point to (2.2, 2.7) is (2, 3) = id 2*5+3 = 13.
        assert_eq!(got[0].0, 13);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut seed = 987u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f32) / (1u32 << 30) as f32
        };
        let n = 300;
        let d = 4;
        let pts: Vec<f32> = (0..n * d).map(|_| next()).collect();
        let tree = KdTree::build(d, pts.clone());
        let q: Vec<f32> = (0..d).map(|_| next()).collect();
        let mut brute: Vec<(u32, f64)> = (0..n)
            .map(|i| {
                (i as u32, dataset::metric::squared_euclidean(&pts[i * d..(i + 1) * d], &q))
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let got: Vec<(u32, f64)> = tree.nearest_iter(&q).take(20).collect();
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.1 - b.1).abs() < 1e-9, "distance mismatch");
        }
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(3, vec![1.0, 2.0, 3.0]);
        let got: Vec<(u32, f64)> = tree.nearest_iter(&[1.0, 2.0, 3.0]).collect();
        assert_eq!(got, vec![(0, 0.0)]);
    }

    #[test]
    fn duplicate_points_all_emitted() {
        let tree = KdTree::build(1, vec![5.0; 20]);
        let got: Vec<(u32, f64)> = tree.nearest_iter(&[5.0]).collect();
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn wrong_dim_panics() {
        grid2d().nearest_iter(&[1.0, 2.0, 3.0]).next();
    }
}
