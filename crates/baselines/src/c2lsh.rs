//! C2LSH — dynamic collision counting (Gan et al., SIGMOD 2012);
//! the paper's Figure 1(b) and §1.
//!
//! Indexing: `m` *individual* LSH functions, each with its own hash table —
//! here a per-function array of `(bucket, id)` pairs sorted by bucket, which
//! supports the *virtual rehashing* of the original: at search round `R ∈
//! {1, c, c², …}`, two objects collide under `h` iff
//! `⌊h(o)/R⌋ = ⌊h(q)/R⌋`, so each round widens every function's matching
//! bucket window and newly covered objects bump their collision counts.
//! An object becomes a candidate once `#Col(o) ≥ l` (the collision
//! threshold); candidates are verified exactly. Termination follows the
//! original's two conditions: enough candidates within distance `c·R`
//! (T1), or `k + βn` candidates verified (T2).
//!
//! The query cost is `O(n)`-ish in the worst case (the paper's complaint:
//! "there are expected `p₂·m·n` objects with at least one collision, which
//! cannot be neglected") — reproducing that behaviour is the point.

use crate::common::{verify_topk, Dedup};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind, FamilyParams, LshFunction};
use lsh::random_projection::symbol_to_bucket;
use std::sync::Arc;

/// Build parameters for C2LSH.
#[derive(Debug, Clone)]
pub struct C2lshParams {
    /// Number of individual hash functions `m` (the paper sweeps 8..=512).
    pub m: usize,
    /// Collision threshold `l` (the paper sweeps 2..=10).
    pub l: usize,
    /// Approximation ratio `c` driving the virtual-rehashing schedule.
    pub c: f64,
    /// Termination slack: stop after `k + beta_n` candidates (T2).
    pub beta_n: usize,
    /// LSH family (random projection for Euclidean; cross-polytope symbols
    /// are re-keyed per round for Angular, degrading gracefully to plain
    /// counting because polytope vertices have no metric widening).
    pub family: FamilyKind,
    /// Family parameters (base bucket width `w`).
    pub family_params: FamilyParams,
    /// RNG seed.
    pub seed: u64,
}

impl C2lshParams {
    /// Euclidean defaults.
    pub fn euclidean(m: usize, l: usize, w: f64) -> Self {
        Self {
            m,
            l,
            c: 2.0,
            beta_n: 100,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0xc215,
        }
    }

    /// Angular adaptation (cross-polytope functions, §6.3): no virtual
    /// rehashing (vertex symbols are nominal), pure collision counting.
    pub fn angular(m: usize, l: usize) -> Self {
        Self {
            m,
            l,
            c: 2.0,
            beta_n: 100,
            family: FamilyKind::CrossPolytopeFast,
            family_params: FamilyParams::default(),
            seed: 0xc215,
        }
    }
}

/// Per-function index: ids sorted by signed bucket.
struct FuncIndex {
    /// (bucket, id), sorted by bucket then id.
    entries: Vec<(i64, u32)>,
}

/// The C2LSH index.
pub struct C2Lsh {
    data: Arc<Dataset>,
    metric: Metric,
    funcs: Vec<Box<dyn LshFunction>>,
    per_func: Vec<FuncIndex>,
    params: C2lshParams,
    /// True when the family's symbols support interval widening (signed
    /// buckets); false for nominal symbol families (cross-polytope).
    widening: bool,
}

impl C2Lsh {
    /// Builds the `m` per-function sorted indices.
    ///
    /// # Panics
    /// Panics on empty data or `l > m` / `l == 0`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &C2lshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.l >= 1 && params.l <= params.m, "need 1 <= l <= m");
        let funcs =
            sample_family(params.family, data.dim(), params.m, &params.family_params, params.seed);
        let widening = matches!(params.family, FamilyKind::RandomProjection);
        let per_func = funcs
            .iter()
            .map(|f| {
                let mut entries: Vec<(i64, u32)> = data
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let sym = f.hash(v);
                        let b = if widening { symbol_to_bucket(sym) } else { sym as i64 };
                        (b, i as u32)
                    })
                    .collect();
                entries.sort_unstable();
                FuncIndex { entries }
            })
            .collect();
        Self { data, metric, funcs, per_func, params: params.clone(), widening }
    }

    /// c-k-ANNS by dynamic collision counting with virtual rehashing.
    pub fn query(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.query_slack(q, k, self.params.beta_n)
    }

    /// [`C2Lsh::query`] with a query-time candidate-slack override (T2's
    /// `βn` term), so the harness can sweep budgets on one built index.
    pub fn query_slack(&self, q: &[f32], k: usize, beta_n: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        let n = self.data.len();
        let m = self.params.m;
        let mut counts = vec![0u32; n];
        let mut dedup = Dedup::new(n);
        dedup.begin();
        let mut cands: Vec<u32> = Vec::new();
        let cap = (k + beta_n).min(n);

        // Query buckets per function.
        let qb: Vec<i64> = self
            .funcs
            .iter()
            .map(|f| {
                let sym = f.hash(q);
                if self.widening {
                    symbol_to_bucket(sym)
                } else {
                    sym as i64
                }
            })
            .collect();

        // Per-function already-counted windows [lo, hi).
        let mut lo = vec![0usize; m];
        let mut hi = vec![0usize; m];
        for (j, fi) in self.per_func.iter().enumerate() {
            let start = fi.entries.partition_point(|&(b, _)| b < qb[j]);
            lo[j] = start;
            hi[j] = start;
        }

        let mut radius: i64 = 1;
        let max_rounds = if self.widening { 40 } else { 1 };
        for _round in 0..max_rounds {
            for j in 0..m {
                let fi = &self.per_func[j];
                // Bucket window at this round: ⌊b/R⌋ == ⌊qb/R⌋ over signed
                // buckets (floor division).
                let (wlo, whi) = if self.widening {
                    let base = qb[j].div_euclid(radius);
                    let blo = base * radius;
                    let bhi = blo + radius; // exclusive
                    (
                        fi.entries.partition_point(|&(b, _)| b < blo),
                        fi.entries.partition_point(|&(b, _)| b < bhi),
                    )
                } else {
                    (
                        fi.entries.partition_point(|&(b, _)| b < qb[j]),
                        fi.entries.partition_point(|&(b, _)| b <= qb[j]),
                    )
                };
                // Count only newly covered entries.
                for &(_, id) in fi.entries[wlo..lo[j]].iter().chain(&fi.entries[hi[j]..whi]) {
                    let c = &mut counts[id as usize];
                    *c += 1;
                    if *c as usize >= self.params.l && dedup.mark_new(id) {
                        cands.push(id);
                    }
                }
                lo[j] = wlo.min(lo[j]);
                hi[j] = whi.max(hi[j]);
            }
            if cands.len() >= cap {
                break;
            }
            // Virtual rehashing: R <- c·R.
            radius = (radius as f64 * self.params.c).ceil() as i64;
            if radius > i64::MAX / 4 {
                break;
            }
            // If every function already covers everything, stop.
            if (0..m).all(|j| lo[j] == 0 && hi[j] == self.per_func[j].entries.len()) {
                break;
            }
        }

        // Fallback: if collision counting never produced k candidates (tiny
        // datasets, thin tails), top up with the most-collided objects.
        if cands.len() < k {
            let mut rest: Vec<u32> = (0..n as u32).filter(|&i| !cands.contains(&i)).collect();
            rest.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
            cands.extend(rest.into_iter().take(k - cands.len()));
        }

        verify_topk(&self.data, self.metric, q, k, cands.into_iter())
    }

    /// Index footprint: m sorted (bucket, id) arrays + projection vectors.
    pub fn index_bytes(&self) -> usize {
        self.per_func.iter().map(|f| f.entries.len() * 12).sum::<usize>()
            + self.params.m * self.data.dim() * 4
    }
}

/// [`ann::AnnIndex`] for C2LSH: `budget` is the βn collision-count slack
/// (T2's candidate allowance); `probes` is ignored.
impl ann::AnnIndex for C2Lsh {
    fn name(&self) -> &'static str {
        "C2LSH"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn index_bytes(&self) -> usize {
        C2Lsh::index_bytes(self)
    }

    fn query_with(
        &self,
        q: &[f32],
        p: &ann::SearchParams,
        _scratch: &mut ann::Scratch,
    ) -> Vec<Neighbor> {
        self.query_slack(q, p.k, p.budget)
    }
}

impl ann::BuildAnn for C2Lsh {
    type Params = C2lshParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &C2lshParams) -> Self {
        C2Lsh::build(data, metric, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy(n: usize) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 16).with_clusters(8).generate(31))
    }

    #[test]
    fn self_query_collides_everywhere() {
        let data = toy(300);
        let idx = C2Lsh::build(data.clone(), Metric::Euclidean, &C2lshParams::euclidean(32, 8, 4.0));
        let out = idx.query(data.get(12), 1);
        assert_eq!(out[0].id, 12, "a duplicate collides in all m functions at round 1");
    }

    #[test]
    fn returns_k_results_sorted() {
        let data = toy(200);
        let idx = C2Lsh::build(data.clone(), Metric::Euclidean, &C2lshParams::euclidean(16, 4, 4.0));
        let out = idx.query(data.get(0), 10);
        assert_eq!(out.len(), 10);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn finds_near_neighbor_of_perturbed_query() {
        let data = toy(500);
        let idx = C2Lsh::build(data.clone(), Metric::Euclidean, &C2lshParams::euclidean(32, 8, 4.0));
        let mut hits = 0;
        for i in 0..20 {
            let mut q = data.get(i * 11).to_vec();
            for x in q.iter_mut() {
                *x += 0.05;
            }
            let out = idx.query(&q, 1);
            hits += u32::from(out[0].id == (i as u32) * 11);
        }
        assert!(hits >= 15, "virtual rehashing should find most planted NNs, got {hits}/20");
    }

    #[test]
    fn angular_variant_counts_collisions() {
        let data =
            Arc::new(SynthSpec::new("a", 250, 16).with_clusters(6).generate(3).normalized());
        let idx = C2Lsh::build(data.clone(), Metric::Angular, &C2lshParams::angular(32, 4));
        let out = idx.query(data.get(9), 3);
        assert_eq!(out.len(), 3);
        assert!(out[0].dist < 0.4);
    }

    #[test]
    fn tiny_dataset_fallback_fills_k() {
        let data = Arc::new(SynthSpec::new("t", 5, 8).generate(1));
        let idx = C2Lsh::build(data.clone(), Metric::Euclidean, &C2lshParams::euclidean(8, 8, 0.5));
        let out = idx.query(data.get(0), 5);
        assert_eq!(out.len(), 5, "fallback must fill k even when counting stalls");
    }

    #[test]
    #[should_panic(expected = "1 <= l <= m")]
    fn threshold_above_m_panics() {
        C2Lsh::build(toy(10), Metric::Euclidean, &C2lshParams::euclidean(4, 8, 4.0));
    }
}
