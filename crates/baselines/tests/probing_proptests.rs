//! Property tests of the query-directed probe-sequence generator shared by
//! Multi-Probe LSH and FALCONN: exhaustiveness, uniqueness, and global
//! score ordering, checked against brute-force enumeration of all valid
//! perturbation sets.

use baselines::probing::ProbeSequence;
use lsh::ScoredAlt;
use proptest::prelude::*;

/// All valid perturbation sets (at most one alternative per position) for
/// tiny alternative tables, by brute force.
fn brute_force(alts: &[Vec<ScoredAlt>]) -> Vec<(Vec<(u32, u64)>, f64)> {
    // Choice per position: None or one of its alternatives.
    let mut sets: Vec<(Vec<(u32, u64)>, f64)> = vec![(Vec::new(), 0.0)];
    for (pos, list) in alts.iter().enumerate() {
        let mut next = Vec::new();
        for (chosen, score) in &sets {
            next.push((chosen.clone(), *score));
            for a in list {
                let mut c = chosen.clone();
                c.push((pos as u32, a.symbol));
                next.push((c, score + a.score));
            }
        }
        sets = next;
    }
    sets.retain(|(c, _)| !c.is_empty());
    sets
}

fn alt_tables() -> impl Strategy<Value = Vec<Vec<ScoredAlt>>> {
    proptest::collection::vec(
        proptest::collection::vec(0.01f64..2.0, 0..3).prop_map(|scores| {
            let mut sorted = scores;
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted
                .into_iter()
                .enumerate()
                .map(|(j, s)| ScoredAlt { symbol: 100 + j as u64, score: s })
                .collect::<Vec<_>>()
        }),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The generator enumerates *every* valid perturbation set exactly once.
    #[test]
    fn generator_is_exhaustive_and_unique(alts in alt_tables()) {
        let want = brute_force(&alts);
        let got: Vec<_> = ProbeSequence::new(&alts).collect();
        prop_assert_eq!(got.len(), want.len(), "must enumerate all valid sets");
        // Compare as normalized sets of (pos, symbol) lists.
        let norm = |entries: Vec<(u32, u64)>| {
            let mut v = entries;
            v.sort_unstable();
            v
        };
        let mut got_sets: Vec<Vec<(u32, u64)>> = got
            .iter()
            .map(|p| norm(p.entries.iter().map(|e| (e.pos, e.symbol)).collect()))
            .collect();
        let mut want_sets: Vec<Vec<(u32, u64)>> = want.into_iter().map(|(c, _)| norm(c)).collect();
        got_sets.sort();
        want_sets.sort();
        let before = got_sets.len();
        got_sets.dedup();
        prop_assert_eq!(got_sets.len(), before, "no duplicates");
        prop_assert_eq!(got_sets, want_sets);
    }

    /// Probes come out in non-decreasing score order, and each score is the
    /// sum of its entries'.
    #[test]
    fn generator_orders_by_score(alts in alt_tables()) {
        let got: Vec<_> = ProbeSequence::new(&alts).collect();
        for w in got.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-12);
        }
        for p in &got {
            let sum: f64 = p.entries.iter().map(|e| e.score).sum();
            prop_assert!((p.score - sum).abs() < 1e-9);
        }
    }
}
