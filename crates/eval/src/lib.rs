//! Evaluation harness (paper §6).
//!
//! Uniform machinery to build every scheme as a `Box<dyn AnnIndex>`
//! (through the [`registry`] of named factories), time queries either
//! single-threaded (the §6 protocol) or through the parallel batch
//! executor, compute the paper's metrics (recall, overall ratio, query
//! time, index size, indexing time — §6.2), grid-search parameter spaces,
//! extract the lowest-time-per-recall-level Pareto frontiers the figures
//! plot, and write TSV series. The per-figure drivers live in
//! [`experiments`]; the runnable binaries wrapping them live in the
//! `bench` crate.
//!
//! Where this harness sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod pareto;
pub mod registry;
pub mod report;

pub use ann::{AnnIndex, IndexSpec, SearchParams};
pub use harness::{build_spec, run_point, run_point_parallel, BuiltIndex, RunPoint};
pub use metrics::{overall_ratio, recall};
pub use registry::BuildError;
