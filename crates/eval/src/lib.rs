//! Evaluation harness (paper §6).
//!
//! Uniform machinery to build every scheme, time single-threaded queries,
//! compute the paper's metrics (recall, overall ratio, query time, index
//! size, indexing time — §6.2), grid-search parameter spaces, extract the
//! lowest-time-per-recall-level Pareto frontiers the figures plot, and write
//! TSV series. The per-figure drivers live in [`experiments`]; the runnable
//! binaries wrapping them live in the `bench` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod pareto;
pub mod report;

pub use harness::{BuiltIndex, IndexSpec, RunPoint};
pub use metrics::{overall_ratio, recall};
