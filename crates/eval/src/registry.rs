//! Method-keyed index factories: the one place that knows how to turn an
//! [`ann::IndexSpec`] into a concrete scheme.
//!
//! Every experiment drives indexes through `Box<dyn AnnIndex>`; this
//! registry is the only per-algorithm dispatch left in the evaluation
//! stack, and the serving layer's BUILD command routes through it too.
//! Dispatch is keyed on the spec's scheme token (the grammar word from
//! [`ann::spec`]): [`entry_for`] resolves the one [`Entry`] for a spec
//! and returns a typed [`BuildError`] — [`BuildError::UnknownSpec`] for a
//! token with no factory, [`BuildError::BadParam`] when a factory rejects
//! the spec for the given dataset/metric — instead of the PR-1-era
//! `Option`-returning linear scan over every factory.
//!
//! Adding a scheme to the suite means adding one [`Scheme`] variant (plus
//! its `ann::spec::schemes()` row) and one [`Entry`] here — the harness,
//! the sweeps, the figure drivers, and `annd` BUILD pick it up unchanged.

use ann::spec::{IndexSpec, Scheme};
use ann::{AnnIndex, BuildAnn, PersistAnn, PersistError};
use baselines::{
    C2Lsh, C2lshParams, E2Lsh, E2lshParams, Falconn, FalconnParams, KdTreeScan, LinearScan,
    LshForest, LshForestParams, MultiProbeLsh, MultiProbeLshParams, Qalsh, QalshParams, SkLsh,
    SkLshParams, Srs, SrsParams,
};
use dataset::{Dataset, Metric};
use lccs_lsh::{LccsLsh, LccsParams, MpBuildParams, MpLccsLsh, MpParams};
use lsh::FamilyKind;
use std::sync::Arc;

/// Everything a factory needs besides the spec itself. Bucket width and
/// seed travel *inside* the spec ([`ann::spec::BuildOptions`]), so the
/// context is down to the data and the verification metric.
pub struct BuildCtx<'a> {
    /// The dataset to index.
    pub data: &'a Arc<Dataset>,
    /// Verification metric (also selects the hash family for the
    /// family-agnostic schemes, as §6.3 adapts them to Angular).
    pub metric: Metric,
}

impl BuildCtx<'_> {
    fn family(&self) -> FamilyKind {
        match self.metric {
            Metric::Angular => FamilyKind::CrossPolytopeFast,
            _ => FamilyKind::RandomProjection,
        }
    }

    fn lccs_params(&self, m: usize, spec: &IndexSpec) -> LccsParams {
        LccsParams {
            m,
            family: self.family(),
            family_params: lsh::FamilyParams { w: spec.build.w },
            seed: spec.build.seed,
        }
    }
}

/// Errors raised when resolving or running a spec's factory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No registered factory for the scheme token.
    UnknownSpec(String),
    /// The factory rejected the spec for this dataset/metric.
    BadParam(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownSpec(t) => {
                write!(f, "no registered factory for scheme {t:?}")
            }
            BuildError::BadParam(m) => write!(f, "bad build parameter: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Spec-to-index constructor.
pub type BuildFn = fn(&IndexSpec, &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError>;

/// Spec-to-(index + snapshot payload) constructor, for schemes that
/// implement [`PersistAnn`]. The payload is captured before type erasure
/// because `PersistAnn` is not reachable through `dyn AnnIndex`.
pub type PersistBuildFn =
    fn(&IndexSpec, &BuildCtx) -> Result<(Box<dyn AnnIndex>, Vec<u8>), BuildError>;

/// One named factory, keyed by the spec grammar token.
pub struct Entry {
    /// Method name as printed in the paper's legends.
    pub method: &'static str,
    /// The scheme's grammar token ([`Scheme::token`]) — the dispatch key.
    pub token: &'static str,
    /// Spec-to-index constructor.
    pub build: BuildFn,
    /// Snapshot-capable constructor, when the scheme persists.
    pub build_persist: Option<PersistBuildFn>,
}

/// Destructure helper: the registry guarantees a factory only ever sees
/// its own variant, so a mismatch is a table-wiring bug, not bad input.
macro_rules! own_scheme {
    ($spec:expr, $pat:pat) => {
        let $pat = $spec.scheme else {
            unreachable!("registry token routed a foreign spec: {:?}", $spec.scheme)
        };
    };
}

fn build_lccs(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::Lccs { m });
    Ok(Box::new(LccsLsh::build_index(ctx.data.clone(), ctx.metric, &ctx.lccs_params(m, spec))))
}

fn persist_lccs(
    spec: &IndexSpec,
    ctx: &BuildCtx,
) -> Result<(Box<dyn AnnIndex>, Vec<u8>), BuildError> {
    own_scheme!(spec, Scheme::Lccs { m });
    let idx = LccsLsh::build_index(ctx.data.clone(), ctx.metric, &ctx.lccs_params(m, spec));
    let payload = idx.snapshot_bytes();
    Ok((Box::new(idx), payload))
}

fn mp_build_params(m: usize, spec: &IndexSpec, ctx: &BuildCtx) -> MpBuildParams {
    MpBuildParams {
        lccs: ctx.lccs_params(m, spec),
        mp: MpParams { probes: 1, max_alts: 8 },
    }
}

fn build_mp_lccs(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::MpLccs { m });
    let params = mp_build_params(m, spec, ctx);
    Ok(Box::new(MpLccsLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn persist_mp_lccs(
    spec: &IndexSpec,
    ctx: &BuildCtx,
) -> Result<(Box<dyn AnnIndex>, Vec<u8>), BuildError> {
    own_scheme!(spec, Scheme::MpLccs { m });
    let params = mp_build_params(m, spec, ctx);
    let idx = MpLccsLsh::build_index(ctx.data.clone(), ctx.metric, &params);
    let payload = idx.snapshot_bytes();
    Ok((Box::new(idx), payload))
}

fn build_e2lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::E2lsh { k_funcs, l_tables });
    let params = E2lshParams {
        k_funcs,
        l_tables,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: spec.build.w },
        seed: spec.build.seed,
    };
    Ok(Box::new(E2Lsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_multiprobe(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::MultiProbeLsh { k_funcs, l_tables });
    let params = MultiProbeLshParams {
        k_funcs,
        l_tables,
        probes: 0,
        max_alts: 4,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: spec.build.w },
        seed: spec.build.seed,
    };
    Ok(Box::new(MultiProbeLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_falconn(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::Falconn { k_funcs, l_tables });
    if ctx.metric != Metric::Angular {
        return Err(BuildError::BadParam(format!(
            "falconn is Angular-only (cross-polytope hashing), got metric {}",
            ctx.metric.name()
        )));
    }
    let params =
        FalconnParams { k_funcs, l_tables, probes: 0, max_alts: 8, seed: spec.build.seed };
    Ok(Box::new(Falconn::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_c2lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::C2lsh { m, l });
    let params = C2lshParams {
        m,
        l,
        c: 2.0,
        beta_n: 100,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: spec.build.w },
        seed: spec.build.seed,
    };
    Ok(Box::new(C2Lsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_qalsh(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::Qalsh { m, l });
    let params =
        QalshParams { m, l, w: spec.build.w, c: 2.0, beta_n: 100, seed: spec.build.seed };
    Ok(Box::new(Qalsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_srs(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::Srs { d_proj });
    if d_proj > ctx.data.dim() {
        return Err(BuildError::BadParam(format!(
            "srs d={d_proj} exceeds the dataset dimensionality {}",
            ctx.data.dim()
        )));
    }
    let params = SrsParams { d_proj, max_verify: 100, slack: 1.0, seed: spec.build.seed };
    Ok(Box::new(Srs::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_lsh_forest(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::LshForest { trees, depth });
    let params = LshForestParams {
        trees,
        depth,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: spec.build.w },
        seed: spec.build.seed,
    };
    Ok(Box::new(LshForest::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_sk_lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    own_scheme!(spec, Scheme::SkLsh { k_funcs, l_indexes });
    let params = SkLshParams {
        k_funcs,
        l_indexes,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: spec.build.w },
        seed: spec.build.seed,
    };
    Ok(Box::new(SkLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_kd_tree(_spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    if ctx.metric != Metric::Euclidean {
        return Err(BuildError::BadParam(format!(
            "kdtree is Euclidean-only (squared-distance pruning), got metric {}",
            ctx.metric.name()
        )));
    }
    Ok(Box::new(KdTreeScan::build_index(ctx.data.clone(), ctx.metric, &())))
}

fn build_linear(_spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    Ok(Box::new(LinearScan::build_index(ctx.data.clone(), ctx.metric, &())))
}

/// The full factory table, in the paper's §6.3 method order (the same
/// order as `ann::spec::schemes()`, which a unit test pins).
pub fn entries() -> &'static [Entry] {
    &[
        Entry {
            method: "LCCS-LSH",
            token: "lccs",
            build: build_lccs,
            build_persist: Some(persist_lccs),
        },
        Entry {
            method: "MP-LCCS-LSH",
            token: "mp-lccs",
            build: build_mp_lccs,
            build_persist: Some(persist_mp_lccs),
        },
        Entry { method: "E2LSH", token: "e2lsh", build: build_e2lsh, build_persist: None },
        Entry {
            method: "Multi-Probe LSH",
            token: "mp-lsh",
            build: build_multiprobe,
            build_persist: None,
        },
        Entry { method: "FALCONN", token: "falconn", build: build_falconn, build_persist: None },
        Entry { method: "C2LSH", token: "c2lsh", build: build_c2lsh, build_persist: None },
        Entry { method: "QALSH", token: "qalsh", build: build_qalsh, build_persist: None },
        Entry { method: "SRS", token: "srs", build: build_srs, build_persist: None },
        Entry {
            method: "LSH-Forest",
            token: "lsh-forest",
            build: build_lsh_forest,
            build_persist: None,
        },
        Entry { method: "SK-LSH", token: "sk-lsh", build: build_sk_lsh, build_persist: None },
        Entry { method: "KD-Tree", token: "kdtree", build: build_kd_tree, build_persist: None },
        Entry { method: "Linear", token: "linear", build: build_linear, build_persist: None },
    ]
}

/// Resolves the factory for a grammar token.
pub fn entry_by_token(token: &str) -> Result<&'static Entry, BuildError> {
    entries()
        .iter()
        .find(|e| e.token == token)
        .ok_or_else(|| BuildError::UnknownSpec(token.to_string()))
}

/// Resolves the factory a spec dispatches to (keyed by scheme token).
pub fn entry_for(spec: &IndexSpec) -> Result<&'static Entry, BuildError> {
    entry_by_token(spec.scheme.token())
}

/// Builds the index a spec describes.
pub fn build_index(spec: &IndexSpec, ctx: &BuildCtx) -> Result<Box<dyn AnnIndex>, BuildError> {
    (entry_for(spec)?.build)(spec, ctx)
}

/// What [`build_index_persist`] returns: the erased index plus its
/// snapshot payload when the scheme supports one (`None` for the
/// rebuild-from-scratch baselines).
pub type PersistBuilt = (Box<dyn AnnIndex>, Option<Vec<u8>>);

/// Builds the index a spec describes, also returning its [`PersistAnn`]
/// snapshot payload when the scheme supports one.
pub fn build_index_persist(
    spec: &IndexSpec,
    ctx: &BuildCtx,
) -> Result<PersistBuilt, BuildError> {
    let entry = entry_for(spec)?;
    match entry.build_persist {
        Some(f) => f(spec, ctx).map(|(i, p)| (i, Some(p))),
        None => (entry.build)(spec, ctx).map(|i| (i, None)),
    }
}

/// One named snapshot restorer: the method label (matching
/// [`AnnIndex::name`]) plus the [`PersistAnn::restore`] constructor erased
/// to `Box<dyn AnnIndex>`. This is the serving-side half of the registry:
/// `crates/serve` restores catalog entries through it by method name.
pub struct SnapshotEntry {
    /// Method name as printed in the paper's legends (and stored in
    /// snapshot containers).
    pub method: &'static str,
    /// Payload-to-index restorer.
    pub restore: SnapshotRestoreFn,
}

/// Signature of a [`SnapshotEntry`] restorer: payload + dataset → erased
/// index.
pub type SnapshotRestoreFn =
    fn(&[u8], Arc<Dataset>) -> Result<Box<dyn AnnIndex>, PersistError>;

fn restore_erased<I: PersistAnn + 'static>(
    payload: &[u8],
    data: Arc<Dataset>,
) -> Result<Box<dyn AnnIndex>, PersistError> {
    I::restore(payload, data).map(|i| Box::new(i) as Box<dyn AnnIndex>)
}

/// The restorers for every scheme that implements [`PersistAnn`] (the
/// LCCS schemes; the baselines rebuild from scratch instead).
pub fn snapshot_entries() -> &'static [SnapshotEntry] {
    &[
        SnapshotEntry { method: "LCCS-LSH", restore: restore_erased::<LccsLsh> },
        SnapshotEntry { method: "MP-LCCS-LSH", restore: restore_erased::<MpLccsLsh> },
    ]
}

/// Errors raised when restoring a named snapshot payload.
#[derive(Debug)]
pub enum RestoreError {
    /// No registered restorer for the method name.
    UnknownMethod(String),
    /// The payload failed to decode or mismatched the dataset.
    Persist(PersistError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnknownMethod(m) => {
                write!(f, "no snapshot restorer registered for method {m:?}")
            }
            RestoreError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Restores the index a snapshot payload describes, consulting the
/// snapshot registry by method name.
pub fn restore_index(
    method: &str,
    payload: &[u8],
    data: Arc<Dataset>,
) -> Result<Box<dyn AnnIndex>, RestoreError> {
    let entry = snapshot_entries()
        .iter()
        .find(|e| e.method == method)
        .ok_or_else(|| RestoreError::UnknownMethod(method.to_string()))?;
    (entry.restore)(payload, data).map_err(RestoreError::Persist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn euclid_zoo() -> Vec<IndexSpec> {
        vec![
            IndexSpec::lccs(8),
            IndexSpec::mp_lccs(8),
            IndexSpec::e2lsh(2, 4),
            IndexSpec::multi_probe(2, 2),
            IndexSpec::c2lsh(8, 2),
            IndexSpec::qalsh(8, 2),
            IndexSpec::srs(4),
            IndexSpec::lsh_forest(2, 4),
            IndexSpec::sk_lsh(4, 2),
            IndexSpec::kd_tree(),
            IndexSpec::linear(),
        ]
    }

    #[test]
    fn registry_names_match_trait_names() {
        let data = Arc::new(SynthSpec::new("reg", 200, 12).with_clusters(4).generate(1));
        let ctx = BuildCtx { data: &data, metric: Metric::Euclidean };
        for spec in euclid_zoo() {
            let spec = spec.with_w(4.0).with_seed(7);
            let idx = build_index(&spec, &ctx).expect("build");
            assert_eq!(idx.name(), spec.method_name(), "trait/legend name drift");
        }
        // FALCONN is Angular-only, so it gets its own dataset.
        let ang = Arc::new(
            SynthSpec::new("reg-ang", 200, 12).with_clusters(4).generate(1).normalized(),
        );
        let ctx = BuildCtx { data: &ang, metric: Metric::Angular };
        let spec = IndexSpec::falconn(1, 2).with_seed(7);
        let idx = build_index(&spec, &ctx).expect("build falconn");
        assert_eq!(idx.name(), spec.method_name());
    }

    /// `Result<Box<dyn AnnIndex>, _>::unwrap_err` needs `T: Debug`, which
    /// the trait object doesn't have — unwrap the error by hand.
    fn expect_err(r: Result<Box<dyn AnnIndex>, BuildError>) -> BuildError {
        match r {
            Ok(idx) => panic!("expected a build error, built {}", idx.name()),
            Err(e) => e,
        }
    }

    #[test]
    fn dispatch_is_keyed_and_typed() {
        let data = Arc::new(SynthSpec::new("key", 100, 8).generate(2));
        let ctx = BuildCtx { data: &data, metric: Metric::Euclidean };

        assert!(matches!(entry_by_token("hnsw"), Err(BuildError::UnknownSpec(t)) if t == "hnsw"));
        assert_eq!(entry_for(&IndexSpec::lccs(8)).unwrap().method, "LCCS-LSH");

        // BadParam: falconn off-metric, kdtree off-metric, srs over-dim.
        let err = expect_err(build_index(&IndexSpec::falconn(1, 2), &ctx));
        assert!(matches!(&err, BuildError::BadParam(m) if m.contains("Angular-only")), "{err}");
        let ang_ctx = BuildCtx { data: &data, metric: Metric::Angular };
        let err = expect_err(build_index(&IndexSpec::kd_tree(), &ang_ctx));
        assert!(matches!(&err, BuildError::BadParam(m) if m.contains("Euclidean-only")), "{err}");
        let err = expect_err(build_index(&IndexSpec::srs(9), &ctx));
        assert!(matches!(&err, BuildError::BadParam(m) if m.contains("dimensionality")), "{err}");
    }

    #[test]
    fn entry_table_matches_spec_scheme_table() {
        let entries = entries();
        let schemes = ann::spec::schemes();
        assert_eq!(entries.len(), schemes.len(), "one factory per scheme row");
        assert_eq!(entries.len(), 12);
        for (e, s) in entries.iter().zip(schemes) {
            assert_eq!(e.token, s.token, "table order drift");
            assert_eq!(e.method, s.method, "method name drift for {}", e.token);
        }
    }

    #[test]
    fn every_registry_entry_appears_in_spec_help() {
        let help = ann::spec::help();
        for e in entries() {
            assert!(help.contains(e.token), "help() misses registry token {}", e.token);
            assert!(help.contains(e.method), "help() misses registry method {}", e.method);
        }
    }

    #[test]
    fn build_persist_payload_restores_identically() {
        use ann::SearchParams;
        let data = Arc::new(SynthSpec::new("snap", 300, 16).with_clusters(6).generate(2));
        let ctx = BuildCtx { data: &data, metric: Metric::Euclidean };
        for spec in [IndexSpec::lccs(8), IndexSpec::mp_lccs(8)] {
            let spec = spec.with_w(4.0).with_seed(7);
            let (built, payload) = build_index_persist(&spec, &ctx).expect("build");
            let payload = payload.expect("LCCS schemes persist");
            let restored = restore_index(built.name(), &payload, data.clone()).expect("restore");
            assert_eq!(restored.name(), built.name());
            let p = SearchParams::new(5, 64);
            for i in [0usize, 123, 299] {
                assert_eq!(restored.query(data.get(i), &p), built.query(data.get(i), &p));
            }
        }
        // Baselines build fine but carry no payload.
        let (_, payload) = build_index_persist(&IndexSpec::e2lsh(2, 4), &ctx).unwrap();
        assert!(payload.is_none());
        // Restore errors stay typed.
        assert!(matches!(
            restore_index("E2LSH", &[], data.clone()),
            Err(RestoreError::UnknownMethod(_))
        ));
        assert!(matches!(
            restore_index("LCCS-LSH", &[1, 2, 3], data),
            Err(RestoreError::Persist(_))
        ));
    }

    #[test]
    fn snapshot_methods_are_registered_build_methods() {
        let build_names: Vec<&str> = entries().iter().map(|e| e.method).collect();
        for s in snapshot_entries() {
            assert!(build_names.contains(&s.method), "{} not in build registry", s.method);
        }
    }

    #[test]
    fn entry_table_covers_every_method_once() {
        let mut names: Vec<&str> = entries().iter().map(|e| e.method).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry entries");
        assert_eq!(before, 12);
    }
}
