//! Named index factories: the one place that knows how to turn an
//! [`IndexSpec`] into a concrete scheme.
//!
//! Every experiment drives indexes through `Box<dyn AnnIndex>`; this
//! registry is the only per-algorithm dispatch left in the evaluation
//! stack. Adding a scheme to the paper suite means adding one
//! [`Entry`] here (and a spec variant) — the harness, the sweeps, and
//! the figure drivers pick it up unchanged.

use crate::harness::IndexSpec;
use ann::{AnnIndex, BuildAnn, PersistAnn, PersistError};
use baselines::{
    C2Lsh, C2lshParams, E2Lsh, E2lshParams, Falconn, FalconnParams, LinearScan, LshForest,
    LshForestParams, MultiProbeLsh, MultiProbeLshParams, Qalsh, QalshParams, SkLsh, SkLshParams,
    Srs, SrsParams,
};
use dataset::{Dataset, Metric};
use lccs_lsh::{LccsLsh, LccsParams, MpBuildParams, MpLccsLsh, MpParams};
use lsh::FamilyKind;
use std::sync::Arc;

/// Everything a factory needs besides its own spec.
pub struct BuildCtx<'a> {
    /// The dataset to index.
    pub data: &'a Arc<Dataset>,
    /// Verification metric (also selects the hash family for the
    /// family-agnostic schemes, as §6.3 adapts them to Angular).
    pub metric: Metric,
    /// Random-projection bucket width (per-dataset tuned, footnote 11).
    pub w: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BuildCtx<'_> {
    fn family(&self) -> FamilyKind {
        match self.metric {
            Metric::Angular => FamilyKind::CrossPolytopeFast,
            _ => FamilyKind::RandomProjection,
        }
    }

    fn lccs_params(&self, m: usize) -> LccsParams {
        LccsParams {
            m,
            family: self.family(),
            family_params: lsh::FamilyParams { w: self.w },
            seed: self.seed,
        }
    }
}

/// One named factory: the method label (paper legend) plus its builder.
/// The builder returns `None` when handed a spec belonging to another
/// method, which lets [`build_index`] scan the table generically.
pub struct Entry {
    /// Method name as printed in the paper's legends.
    pub method: &'static str,
    /// Spec-to-index constructor.
    pub build: fn(&IndexSpec, &BuildCtx) -> Option<Box<dyn AnnIndex>>,
}

fn build_lccs(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::Lccs { m } = *spec else { return None };
    Some(Box::new(LccsLsh::build_index(ctx.data.clone(), ctx.metric, &ctx.lccs_params(m))))
}

fn build_mp_lccs(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::MpLccs { m } = *spec else { return None };
    let params = MpBuildParams {
        lccs: ctx.lccs_params(m),
        mp: MpParams { probes: 1, max_alts: 8 },
    };
    Some(Box::new(MpLccsLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_e2lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::E2lsh { k_funcs, l_tables } = *spec else { return None };
    let params = E2lshParams {
        k_funcs,
        l_tables,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: ctx.w },
        seed: ctx.seed,
    };
    Some(Box::new(E2Lsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_multiprobe(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::MultiProbeLsh { k_funcs, l_tables } = *spec else { return None };
    let params = MultiProbeLshParams {
        k_funcs,
        l_tables,
        probes: 0,
        max_alts: 4,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: ctx.w },
        seed: ctx.seed,
    };
    Some(Box::new(MultiProbeLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_falconn(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::Falconn { k_funcs, l_tables } = *spec else { return None };
    let params = FalconnParams { k_funcs, l_tables, probes: 0, max_alts: 8, seed: ctx.seed };
    Some(Box::new(Falconn::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_c2lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::C2lsh { m, l } = *spec else { return None };
    let params = C2lshParams {
        m,
        l,
        c: 2.0,
        beta_n: 100,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: ctx.w },
        seed: ctx.seed,
    };
    Some(Box::new(C2Lsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_qalsh(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::Qalsh { m, l } = *spec else { return None };
    let params = QalshParams { m, l, w: ctx.w, c: 2.0, beta_n: 100, seed: ctx.seed };
    Some(Box::new(Qalsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_srs(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::Srs { d_proj } = *spec else { return None };
    let params = SrsParams { d_proj, max_verify: 100, slack: 1.0, seed: ctx.seed };
    Some(Box::new(Srs::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_lsh_forest(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::LshForest { trees, depth } = *spec else { return None };
    let params = LshForestParams {
        trees,
        depth,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: ctx.w },
        seed: ctx.seed,
    };
    Some(Box::new(LshForest::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_sk_lsh(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    let IndexSpec::SkLsh { k_funcs, l_indexes } = *spec else { return None };
    let params = SkLshParams {
        k_funcs,
        l_indexes,
        family: ctx.family(),
        family_params: lsh::FamilyParams { w: ctx.w },
        seed: ctx.seed,
    };
    Some(Box::new(SkLsh::build_index(ctx.data.clone(), ctx.metric, &params)))
}

fn build_linear(spec: &IndexSpec, ctx: &BuildCtx) -> Option<Box<dyn AnnIndex>> {
    matches!(spec, IndexSpec::Linear)
        .then(|| Box::new(LinearScan::build_index(ctx.data.clone(), ctx.metric, &())) as _)
}

/// The full factory table, in the paper's §6.3 method order.
pub fn entries() -> &'static [Entry] {
    &[
        Entry { method: "LCCS-LSH", build: build_lccs },
        Entry { method: "MP-LCCS-LSH", build: build_mp_lccs },
        Entry { method: "E2LSH", build: build_e2lsh },
        Entry { method: "Multi-Probe LSH", build: build_multiprobe },
        Entry { method: "FALCONN", build: build_falconn },
        Entry { method: "C2LSH", build: build_c2lsh },
        Entry { method: "QALSH", build: build_qalsh },
        Entry { method: "SRS", build: build_srs },
        Entry { method: "LSH-Forest", build: build_lsh_forest },
        Entry { method: "SK-LSH", build: build_sk_lsh },
        Entry { method: "Linear", build: build_linear },
    ]
}

/// Builds the index a spec describes, consulting the registry.
///
/// # Panics
/// Panics if no registered factory accepts the spec — which would mean a
/// spec variant was added without a registry entry.
pub fn build_index(spec: &IndexSpec, ctx: &BuildCtx) -> Box<dyn AnnIndex> {
    entries()
        .iter()
        .find_map(|e| (e.build)(spec, ctx))
        .unwrap_or_else(|| panic!("no registered factory for spec {spec:?}"))
}

/// One named snapshot restorer: the method label (matching
/// [`AnnIndex::name`]) plus the [`PersistAnn::restore`] constructor erased
/// to `Box<dyn AnnIndex>`. This is the serving-side half of the registry:
/// `crates/serve` restores catalog entries through it by method name.
pub struct SnapshotEntry {
    /// Method name as printed in the paper's legends (and stored in
    /// snapshot containers).
    pub method: &'static str,
    /// Payload-to-index restorer.
    pub restore: SnapshotRestoreFn,
}

/// Signature of a [`SnapshotEntry`] restorer: payload + dataset → erased
/// index.
pub type SnapshotRestoreFn =
    fn(&[u8], Arc<Dataset>) -> Result<Box<dyn AnnIndex>, PersistError>;

fn restore_erased<I: PersistAnn + 'static>(
    payload: &[u8],
    data: Arc<Dataset>,
) -> Result<Box<dyn AnnIndex>, PersistError> {
    I::restore(payload, data).map(|i| Box::new(i) as Box<dyn AnnIndex>)
}

/// The restorers for every scheme that implements [`PersistAnn`] (the
/// LCCS schemes; the baselines rebuild from scratch instead).
pub fn snapshot_entries() -> &'static [SnapshotEntry] {
    &[
        SnapshotEntry { method: "LCCS-LSH", restore: restore_erased::<LccsLsh> },
        SnapshotEntry { method: "MP-LCCS-LSH", restore: restore_erased::<MpLccsLsh> },
    ]
}

/// Errors raised when restoring a named snapshot payload.
#[derive(Debug)]
pub enum RestoreError {
    /// No registered restorer for the method name.
    UnknownMethod(String),
    /// The payload failed to decode or mismatched the dataset.
    Persist(PersistError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnknownMethod(m) => {
                write!(f, "no snapshot restorer registered for method {m:?}")
            }
            RestoreError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Restores the index a snapshot payload describes, consulting the
/// snapshot registry by method name.
pub fn restore_index(
    method: &str,
    payload: &[u8],
    data: Arc<Dataset>,
) -> Result<Box<dyn AnnIndex>, RestoreError> {
    let entry = snapshot_entries()
        .iter()
        .find(|e| e.method == method)
        .ok_or_else(|| RestoreError::UnknownMethod(method.to_string()))?;
    (entry.restore)(payload, data).map_err(RestoreError::Persist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    #[test]
    fn registry_names_match_trait_names() {
        let data = Arc::new(SynthSpec::new("reg", 200, 12).with_clusters(4).generate(1));
        let ctx = BuildCtx { data: &data, metric: Metric::Euclidean, w: 4.0, seed: 7 };
        let specs = [
            IndexSpec::Lccs { m: 8 },
            IndexSpec::MpLccs { m: 8 },
            IndexSpec::E2lsh { k_funcs: 2, l_tables: 4 },
            IndexSpec::MultiProbeLsh { k_funcs: 2, l_tables: 2 },
            IndexSpec::Falconn { k_funcs: 1, l_tables: 2 },
            IndexSpec::C2lsh { m: 8, l: 2 },
            IndexSpec::Qalsh { m: 8, l: 2 },
            IndexSpec::Srs { d_proj: 4 },
            IndexSpec::LshForest { trees: 2, depth: 4 },
            IndexSpec::SkLsh { k_funcs: 4, l_indexes: 2 },
            IndexSpec::Linear,
        ];
        for spec in specs {
            let idx = build_index(&spec, &ctx);
            assert_eq!(idx.name(), spec.method_name(), "trait/legend name drift");
        }
    }

    #[test]
    fn snapshot_registry_round_trips_by_method_name() {
        use ann::{PersistAnn, SearchParams};
        let data = Arc::new(SynthSpec::new("snap", 300, 16).with_clusters(6).generate(2));
        let ctx = BuildCtx { data: &data, metric: Metric::Euclidean, w: 4.0, seed: 7 };
        for spec in [IndexSpec::Lccs { m: 8 }, IndexSpec::MpLccs { m: 8 }] {
            let built = build_index(&spec, &ctx);
            let payload = match &spec {
                // The dyn-erased index can't expose PersistAnn (not object
                // safe end to end), so snapshot through the concrete types.
                IndexSpec::Lccs { .. } => LccsLsh::build_index(
                    data.clone(),
                    ctx.metric,
                    &ctx.lccs_params(8),
                )
                .snapshot_bytes(),
                _ => MpLccsLsh::build_index(
                    data.clone(),
                    ctx.metric,
                    &MpBuildParams {
                        lccs: ctx.lccs_params(8),
                        mp: MpParams { probes: 1, max_alts: 8 },
                    },
                )
                .snapshot_bytes(),
            };
            let restored = restore_index(built.name(), &payload, data.clone()).expect("restore");
            assert_eq!(restored.name(), built.name());
            let p = SearchParams::new(5, 64);
            for i in [0usize, 123, 299] {
                assert_eq!(restored.query(data.get(i), &p), built.query(data.get(i), &p));
            }
        }
        assert!(matches!(
            restore_index("E2LSH", &[], data.clone()),
            Err(RestoreError::UnknownMethod(_))
        ));
        assert!(matches!(
            restore_index("LCCS-LSH", &[1, 2, 3], data),
            Err(RestoreError::Persist(_))
        ));
    }

    #[test]
    fn snapshot_methods_are_registered_build_methods() {
        let build_names: Vec<&str> = entries().iter().map(|e| e.method).collect();
        for s in snapshot_entries() {
            assert!(build_names.contains(&s.method), "{} not in build registry", s.method);
        }
    }

    #[test]
    fn entry_table_covers_every_method_once() {
        let mut names: Vec<&str> = entries().iter().map(|e| e.method).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry entries");
        assert_eq!(before, 11);
    }
}
