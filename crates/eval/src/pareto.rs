//! Pareto-frontier extraction for the paper's figures.
//!
//! §6.4: "To remove the impact of parameters for each method, we report
//! their lowest query time for all combinations of parameters under each
//! certain recall level using grid search." This module implements exactly
//! that reduction, plus the index-size / indexing-time frontiers of
//! Figures 6–7.

use crate::harness::RunPoint;

/// `(recall_level_percent, best_query_ms, config)` — one point of a
/// time-recall curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Recall level in percent (x axis of Figures 4–5).
    pub recall_pct: f64,
    /// Lowest mean query time among configs reaching that recall.
    pub query_ms: f64,
    /// Config that achieved it.
    pub config: String,
}

/// Lowest query time at each recall level (levels in percent, ascending).
/// Levels no config reaches are omitted.
pub fn time_recall_frontier(points: &[RunPoint], levels_pct: &[f64]) -> Vec<FrontierPoint> {
    let mut out = Vec::new();
    for &lvl in levels_pct {
        let mut best: Option<&RunPoint> = None;
        for p in points {
            if p.recall * 100.0 + 1e-9 >= lvl
                && best.is_none_or(|b| p.query_ms < b.query_ms)
            {
                best = Some(p);
            }
        }
        if let Some(b) = best {
            out.push(FrontierPoint { recall_pct: lvl, query_ms: b.query_ms, config: b.config.clone() });
        }
    }
    out
}

/// `(resource, best_query_ms, config)` — one point of the Figures 6–7
/// trade-off curves (resource = index bytes or indexing seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Resource value (bytes or seconds).
    pub resource: f64,
    /// Lowest query time among configs at or below this resource that reach
    /// the recall floor.
    pub query_ms: f64,
    /// Config that achieved it.
    pub config: String,
}

/// Staircase frontier of query time vs a resource, restricted to points
/// with `recall ≥ min_recall`: sort by resource ascending, keep points that
/// strictly improve the best query time seen so far.
pub fn resource_frontier(
    points: &[RunPoint],
    min_recall: f64,
    resource: impl Fn(&RunPoint) -> f64,
) -> Vec<TradeoffPoint> {
    let mut eligible: Vec<&RunPoint> =
        points.iter().filter(|p| p.recall + 1e-9 >= min_recall).collect();
    eligible.sort_by(|a, b| {
        resource(a)
            .total_cmp(&resource(b))
            .then_with(|| a.query_ms.total_cmp(&b.query_ms))
    });
    let mut out: Vec<TradeoffPoint> = Vec::new();
    let mut best = f64::INFINITY;
    for p in eligible {
        if p.query_ms < best {
            best = p.query_ms;
            out.push(TradeoffPoint {
                resource: resource(p),
                query_ms: p.query_ms,
                config: p.config.clone(),
            });
        }
    }
    out
}

/// The recall levels used by the figures: 2% steps from 2 to 100.
pub fn default_levels() -> Vec<f64> {
    (1..=50).map(|i| i as f64 * 2.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(recall: f64, ms: f64, bytes: usize, cfg: &str) -> RunPoint {
        RunPoint {
            dataset: "d".into(),
            method: "m".into(),
            config: cfg.into(),
            k: 10,
            recall,
            ratio: 1.0,
            query_ms: ms,
            index_bytes: bytes,
            build_secs: bytes as f64 / 1e6,
        }
    }

    #[test]
    fn frontier_picks_cheapest_at_each_level() {
        let pts = vec![pt(0.4, 1.0, 0, "a"), pt(0.6, 3.0, 0, "b"), pt(0.9, 10.0, 0, "c")];
        let f = time_recall_frontier(&pts, &[30.0, 50.0, 80.0, 95.0]);
        assert_eq!(f.len(), 3, "95% unreachable");
        assert_eq!(f[0].query_ms, 1.0);
        assert_eq!(f[1].query_ms, 3.0);
        assert_eq!(f[2].query_ms, 10.0);
    }

    #[test]
    fn faster_high_recall_config_dominates() {
        // A config with higher recall AND lower time should win lower levels.
        let pts = vec![pt(0.5, 5.0, 0, "slow"), pt(0.8, 2.0, 0, "fast")];
        let f = time_recall_frontier(&pts, &[50.0]);
        assert_eq!(f[0].query_ms, 2.0);
        assert_eq!(f[0].config, "fast");
    }

    #[test]
    fn resource_frontier_is_decreasing_staircase() {
        let pts = vec![
            pt(0.6, 10.0, 100, "tiny"),
            pt(0.6, 4.0, 200, "mid"),
            pt(0.6, 6.0, 300, "bad"),   // dominated: more memory, slower than mid
            pt(0.6, 1.0, 400, "big"),
            pt(0.3, 0.1, 50, "lowrec"), // filtered by recall floor
        ];
        let f = resource_frontier(&pts, 0.5, |p| p.index_bytes as f64);
        let cfgs: Vec<&str> = f.iter().map(|t| t.config.as_str()).collect();
        assert_eq!(cfgs, vec!["tiny", "mid", "big"]);
        for w in f.windows(2) {
            assert!(w[0].query_ms > w[1].query_ms);
            assert!(w[0].resource <= w[1].resource);
        }
    }

    #[test]
    fn default_levels_span_2_to_100() {
        let l = default_levels();
        assert_eq!(l.first().copied(), Some(2.0));
        assert_eq!(l.last().copied(), Some(100.0));
        assert_eq!(l.len(), 50);
    }
}
