//! TSV/console reporting for the experiment drivers.
//!
//! Each figure binary writes one TSV per (dataset, method) series, named
//! after the paper's legends, plus a combined `points.tsv` with every raw
//! grid-search point, so external plotting tools can regenerate the figures.

use crate::harness::RunPoint;
use crate::pareto::{FrontierPoint, TradeoffPoint};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Sanitizes a series name into a filename fragment.
pub fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join("-")
}

/// Writes the raw grid-search points.
pub fn write_points(dir: &Path, name: &str, points: &[RunPoint]) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-points.tsv", slug(name)));
    let mut f = fs::File::create(&path)?;
    writeln!(
        f,
        "dataset\tmethod\tconfig\tk\trecall\tratio\tquery_ms\tindex_bytes\tbuild_secs"
    )?;
    for p in points {
        writeln!(
            f,
            "{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{}\t{:.6}",
            p.dataset, p.method, p.config, p.k, p.recall, p.ratio, p.query_ms, p.index_bytes,
            p.build_secs
        )?;
    }
    Ok(path)
}

/// Writes one time-recall series (Figures 4, 5, 9, 10).
pub fn write_frontier(
    dir: &Path,
    name: &str,
    series: &[FrontierPoint],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.tsv", slug(name)));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "recall_pct\tquery_ms\tconfig")?;
    for p in series {
        writeln!(f, "{:.1}\t{:.6}\t{}", p.recall_pct, p.query_ms, p.config)?;
    }
    Ok(path)
}

/// Writes one resource-tradeoff series (Figures 6, 7).
pub fn write_tradeoff(
    dir: &Path,
    name: &str,
    series: &[TradeoffPoint],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.tsv", slug(name)));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "resource\tquery_ms\tconfig")?;
    for p in series {
        writeln!(f, "{:.6}\t{:.6}\t{}", p.resource, p.query_ms, p.config)?;
    }
    Ok(path)
}

/// Renders an aligned console table.
pub fn console_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_normalizes() {
        assert_eq!(slug("Fig 4 / Msong (Euclidean)"), "fig-4-msong-euclidean");
        assert_eq!(slug("MP-LCCS-LSH"), "mp-lccs-lsh");
    }

    #[test]
    fn tsv_files_round_trip() {
        let dir = std::env::temp_dir().join("lccs-report-test");
        let pts = vec![RunPoint {
            dataset: "Sift".into(),
            method: "LCCS-LSH".into(),
            config: "m=64".into(),
            k: 10,
            recall: 0.5,
            ratio: 1.01,
            query_ms: 0.3,
            index_bytes: 1024,
            build_secs: 0.1,
        }];
        let p = write_points(&dir, "unit", &pts).unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains("Sift\tLCCS-LSH\tm=64\t10\t0.5"));
        let f = write_frontier(
            &dir,
            "unit-frontier",
            &[FrontierPoint { recall_pct: 50.0, query_ms: 0.25, config: "m=64".into() }],
        )
        .unwrap();
        assert!(std::fs::read_to_string(f).unwrap().contains("50.0\t0.25"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_is_aligned() {
        let t = console_table(
            &["method", "recall"],
            &[vec!["LCCS-LSH".into(), "0.93".into()], vec!["E2LSH".into(), "0.7".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("LCCS-LSH"));
    }
}
