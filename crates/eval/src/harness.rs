//! Index-building and query-timing machinery shared by all experiments.
//!
//! Every scheme is a [`ann::AnnIndex`] trait object built through the
//! [`crate::registry`] of named factories; the harness drives them with
//! two query-time knobs packed into [`ann::SearchParams`]: a *budget*
//! (candidates to verify: λ for the LCCS schemes, bucket-union cap for the
//! table schemes, βn slack for the counting schemes, the verify budget for
//! SRS) and an optional *probe count* (multi-probe schemes). Index-time
//! parameters live in [`IndexSpec`]; the split lets grid search sweep
//! query knobs without rebuilding.
//!
//! Two timing modes:
//! * [`run_point`] — single-threaded, per-query scratch reuse; this is the
//!   paper's §6 measurement protocol.
//! * [`run_point_parallel`] — routes the whole query set through the
//!   batch executor ([`ann::executor`]); `query_ms` then reports
//!   wall-clock per query, i.e. the serving-throughput view.

use crate::registry::{self, BuildCtx};
use ann::{AnnIndex, SearchParams};
use dataset::exact::Neighbor;
use dataset::{Dataset, GroundTruth, Metric};
use std::sync::Arc;
use std::time::Instant;

/// Index-time configuration of one method instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexSpec {
    /// LCCS-LSH with hash-string length m.
    Lccs {
        /// Hash-string length.
        m: usize,
    },
    /// MP-LCCS-LSH (same index as LCCS; probes are a query knob).
    MpLccs {
        /// Hash-string length.
        m: usize,
    },
    /// E2LSH with K-concatenation and L tables.
    E2lsh {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// Multi-Probe LSH (probes are a query knob).
    MultiProbeLsh {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// FALCONN-style cross-polytope multiprobe (Angular only).
    Falconn {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// C2LSH with m functions and collision threshold l.
    C2lsh {
        /// Function count m.
        m: usize,
        /// Collision threshold l.
        l: usize,
    },
    /// QALSH with m projections and collision threshold l.
    Qalsh {
        /// Projection count m.
        m: usize,
        /// Collision threshold l.
        l: usize,
    },
    /// SRS with d' projected dimensions.
    Srs {
        /// Projected dimensionality.
        d_proj: usize,
    },
    /// LSH-Forest with `trees` sorted label arrays of length `depth`.
    LshForest {
        /// Number of trees.
        trees: usize,
        /// Label length / max trie depth.
        depth: usize,
    },
    /// SK-LSH with `l_indexes` sorted compound-key arrays of length `k_funcs`.
    SkLsh {
        /// Compound-key length.
        k_funcs: usize,
        /// Number of sorted indexes.
        l_indexes: usize,
    },
    /// Exact linear scan.
    Linear,
}

impl IndexSpec {
    /// The method name as printed in the paper's legends.
    pub fn method_name(&self) -> &'static str {
        match self {
            IndexSpec::Lccs { .. } => "LCCS-LSH",
            IndexSpec::MpLccs { .. } => "MP-LCCS-LSH",
            IndexSpec::E2lsh { .. } => "E2LSH",
            IndexSpec::MultiProbeLsh { .. } => "Multi-Probe LSH",
            IndexSpec::Falconn { .. } => "FALCONN",
            IndexSpec::C2lsh { .. } => "C2LSH",
            IndexSpec::Qalsh { .. } => "QALSH",
            IndexSpec::Srs { .. } => "SRS",
            IndexSpec::LshForest { .. } => "LSH-Forest",
            IndexSpec::SkLsh { .. } => "SK-LSH",
            IndexSpec::Linear => "Linear",
        }
    }

    /// Short config description for reports.
    pub fn config_string(&self) -> String {
        match self {
            IndexSpec::Lccs { m } | IndexSpec::MpLccs { m } => format!("m={m}"),
            IndexSpec::E2lsh { k_funcs, l_tables }
            | IndexSpec::MultiProbeLsh { k_funcs, l_tables }
            | IndexSpec::Falconn { k_funcs, l_tables } => format!("K={k_funcs},L={l_tables}"),
            IndexSpec::C2lsh { m, l } | IndexSpec::Qalsh { m, l } => format!("m={m},l={l}"),
            IndexSpec::Srs { d_proj } => format!("d'={d_proj}"),
            IndexSpec::LshForest { trees, depth } => format!("l={trees},km={depth}"),
            IndexSpec::SkLsh { k_funcs, l_indexes } => format!("K={k_funcs},L={l_indexes}"),
            IndexSpec::Linear => String::new(),
        }
    }

    /// Builds the index through the factory registry, timing the indexing
    /// phase.
    ///
    /// `w` is the random-projection bucket width (fine-tuned per dataset in
    /// the paper, footnote 11); ignored by angular/CP methods. `metric`
    /// selects the family for the family-agnostic schemes (§6.3 adapts
    /// E2LSH and C2LSH to Angular with cross-polytope functions).
    pub fn build(&self, data: &Arc<Dataset>, metric: Metric, w: f64, seed: u64) -> BuiltIndex {
        let start = Instant::now();
        let index = registry::build_index(self, &BuildCtx { data, metric, w, seed });
        let build_secs = start.elapsed().as_secs_f64();
        let index_bytes = index.index_bytes();
        BuiltIndex { spec: self.clone(), build_secs, index_bytes, index }
    }
}

/// One built index with its build-time measurements.
pub struct BuiltIndex {
    /// The spec it was built from.
    pub spec: IndexSpec,
    /// Wall-clock indexing time in seconds.
    pub build_secs: f64,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// The scheme, erased behind the workspace-wide index trait.
    pub index: Box<dyn AnnIndex>,
}

impl BuiltIndex {
    /// Runs one query. `budget` is the method's candidate knob; `probes`
    /// applies to the multi-probe schemes (ignored elsewhere; 0 = none).
    pub fn query(&self, q: &[f32], k: usize, budget: usize, probes: usize) -> Vec<Neighbor> {
        self.index.query(q, &SearchParams { k, budget, probes })
    }

    /// Runs the whole query set through the parallel batch executor,
    /// returning per-query results in query order.
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
        budget: usize,
        probes: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.index.query_batch(queries, &SearchParams { k, budget, probes })
    }
}

/// One measured point of a sweep: metrics averaged over the query set.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Dataset name.
    pub dataset: String,
    /// Method name (paper legend).
    pub method: String,
    /// Index + query configuration description.
    pub config: String,
    /// Neighbors requested.
    pub k: usize,
    /// Mean recall over the query set.
    pub recall: f64,
    /// Mean overall ratio.
    pub ratio: f64,
    /// Mean query time in milliseconds — per-query CPU time in sequential
    /// mode, wall-clock per query in parallel mode.
    pub query_ms: f64,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// Indexing wall-clock seconds.
    pub build_secs: f64,
}

/// Times `built` over every query single-threaded with scratch reuse (the
/// §6 protocol) and averages the metrics against `gt` (whose k must be
/// ≥ `k`).
pub fn run_point(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    budget: usize,
    probes: usize,
) -> RunPoint {
    run_point_mode(built, dataset_name, queries, gt, k, budget, probes, false)
}

/// [`run_point`] but answering the query set through the parallel batch
/// executor; `query_ms` becomes wall-clock per query (throughput view).
/// Recall/ratio are identical to sequential mode — the executor is
/// deterministic.
pub fn run_point_parallel(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    budget: usize,
    probes: usize,
) -> RunPoint {
    run_point_mode(built, dataset_name, queries, gt, k, budget, probes, true)
}

/// Shared implementation of the two timing modes.
#[allow(clippy::too_many_arguments)]
pub fn run_point_mode(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    budget: usize,
    probes: usize,
    parallel: bool,
) -> RunPoint {
    assert!(gt.k() >= k, "ground truth too shallow: {} < {k}", gt.k());
    let params = SearchParams { k, budget, probes };
    let start = Instant::now();
    let results: Vec<Vec<Neighbor>> = if parallel {
        built.index.query_batch(queries, &params)
    } else {
        let mut scratch = built.index.make_scratch();
        queries.iter().map(|q| built.index.query_with(q, &params, &mut scratch)).collect()
    };
    let elapsed = start.elapsed().as_secs_f64();
    let mut recall_sum = 0.0;
    let mut ratio_sum = 0.0;
    for (qi, got) in results.iter().enumerate() {
        let truth = &gt.neighbors(qi)[..k];
        recall_sum += crate::metrics::recall(got, truth);
        ratio_sum += crate::metrics::overall_ratio(got, truth);
    }
    let nq = queries.len() as f64;
    let mut config = built.spec.config_string();
    if !config.is_empty() {
        config.push(',');
    }
    config.push_str(&format!("budget={budget}"));
    if probes > 0 {
        config.push_str(&format!(",probes={probes}"));
    }
    if parallel {
        config.push_str(",par");
    }
    RunPoint {
        dataset: dataset_name.to_string(),
        method: built.index.name().to_string(),
        config,
        k,
        recall: recall_sum / nq,
        ratio: ratio_sum / nq,
        query_ms: elapsed * 1000.0 / nq,
        index_bytes: built.index_bytes,
        build_secs: built.build_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{ExactKnn, SynthSpec};

    fn setup() -> (Arc<Dataset>, Dataset, GroundTruth) {
        let spec = SynthSpec::new("unit", 600, 16).with_clusters(8);
        let data = Arc::new(spec.generate(3));
        let queries = spec.generate_queries(10, 3);
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);
        (data, queries, gt)
    }

    #[test]
    fn all_specs_build_and_answer() {
        let (data, queries, gt) = setup();
        let specs = [
            IndexSpec::Lccs { m: 16 },
            IndexSpec::MpLccs { m: 16 },
            IndexSpec::E2lsh { k_funcs: 2, l_tables: 8 },
            IndexSpec::MultiProbeLsh { k_funcs: 2, l_tables: 4 },
            IndexSpec::C2lsh { m: 16, l: 4 },
            IndexSpec::Qalsh { m: 16, l: 4 },
            IndexSpec::Srs { d_proj: 6 },
            IndexSpec::LshForest { trees: 2, depth: 8 },
            IndexSpec::SkLsh { k_funcs: 8, l_indexes: 2 },
            IndexSpec::Linear,
        ];
        for spec in specs {
            let built = spec.build(&data, Metric::Euclidean, 4.0, 7);
            let pt = run_point(&built, "unit", &queries, &gt, 10, 128, 16);
            assert!(pt.recall >= 0.0 && pt.recall <= 1.0, "{}", pt.method);
            assert!(pt.ratio >= 1.0 - 1e-9, "{} ratio {}", pt.method, pt.ratio);
            assert!(pt.query_ms >= 0.0);
            if !matches!(spec, IndexSpec::Linear) {
                assert!(pt.index_bytes > 0, "{}", pt.method);
            }
        }
    }

    #[test]
    fn linear_scan_is_exact() {
        let (data, queries, gt) = setup();
        let built = IndexSpec::Linear.build(&data, Metric::Euclidean, 4.0, 1);
        let pt = run_point(&built, "unit", &queries, &gt, 10, 0, 0);
        assert!((pt.recall - 1.0).abs() < 1e-12);
        assert!((pt.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn falconn_on_angular() {
        let spec = SynthSpec::new("ang", 500, 16).with_clusters(8);
        let data = Arc::new(spec.generate(4).normalized());
        let queries = spec.generate_queries(8, 4).normalized();
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Angular);
        let built = IndexSpec::Falconn { k_funcs: 2, l_tables: 8 }.build(
            &data,
            Metric::Angular,
            1.0,
            2,
        );
        let pt = run_point(&built, "ang", &queries, &gt, 10, 400, 32);
        assert!(pt.recall > 0.0, "FALCONN should find something, got {}", pt.recall);
    }

    #[test]
    fn bigger_budget_helps_lccs() {
        let (data, queries, gt) = setup();
        let built = IndexSpec::Lccs { m: 32 }.build(&data, Metric::Euclidean, 4.0, 9);
        let small = run_point(&built, "unit", &queries, &gt, 10, 4, 0);
        let large = run_point(&built, "unit", &queries, &gt, 10, 512, 0);
        assert!(large.recall >= small.recall);
    }

    #[test]
    fn parallel_mode_reproduces_sequential_metrics() {
        let (data, queries, gt) = setup();
        for spec in [
            IndexSpec::Lccs { m: 16 },
            IndexSpec::MpLccs { m: 16 },
            IndexSpec::E2lsh { k_funcs: 2, l_tables: 8 },
            IndexSpec::Qalsh { m: 16, l: 4 },
        ] {
            let built = spec.build(&data, Metric::Euclidean, 4.0, 7);
            let seq = run_point(&built, "unit", &queries, &gt, 10, 64, 8);
            let par = run_point_parallel(&built, "unit", &queries, &gt, 10, 64, 8);
            assert_eq!(seq.recall, par.recall, "{}", seq.method);
            assert_eq!(seq.ratio, par.ratio, "{}", seq.method);
        }
    }

    #[test]
    fn batch_query_equals_sequential_queries() {
        let (data, queries, gt) = setup();
        let _ = &gt;
        let built = IndexSpec::Lccs { m: 16 }.build(&data, Metric::Euclidean, 4.0, 5);
        let batch = built.query_batch(&queries, 5, 64, 0);
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(batch[qi], built.query(q, 5, 64, 0), "query {qi}");
        }
    }
}
