//! Index-building and query-timing machinery shared by all experiments.
//!
//! Every scheme is a [`ann::AnnIndex`] trait object built through the
//! method-keyed [`crate::registry`]; the harness drives them with
//! two query-time knobs packed into [`ann::SearchParams`]: a *budget*
//! (candidates to verify: λ for the LCCS schemes, bucket-union cap for the
//! table schemes, βn slack for the counting schemes, the verify budget for
//! SRS) and an optional *probe count* (multi-probe schemes). Index-time
//! parameters live in [`ann::IndexSpec`] (relocated to the API crate in
//! PR 3, including its `w`/`seed` [`ann::spec::BuildOptions`]); the split
//! lets grid search sweep query knobs without rebuilding.
//!
//! Two timing modes:
//! * [`run_point`] — single-threaded, per-query scratch reuse; this is the
//!   paper's §6 measurement protocol.
//! * [`run_point_parallel`] — routes the whole query set through the
//!   batch executor ([`ann::executor`]); `query_ms` then reports
//!   wall-clock per query, i.e. the serving-throughput view.

use crate::registry::{self, BuildCtx, BuildError};
use ann::{AnnIndex, SearchParams, SearchRequest, SearchResponse};
use dataset::exact::Neighbor;
use dataset::{Dataset, GroundTruth, Metric};
use std::sync::Arc;
use std::time::Instant;

pub use ann::spec::{BuildOptions, IndexSpec, Scheme};

/// Builds the index a spec describes through the factory registry, timing
/// the indexing phase. Bucket width and seed come from the spec's own
/// [`BuildOptions`]; `metric` selects the family for the family-agnostic
/// schemes (§6.3 adapts E2LSH and C2LSH to Angular with cross-polytope
/// functions).
pub fn build_spec(
    spec: &IndexSpec,
    data: &Arc<Dataset>,
    metric: Metric,
) -> Result<BuiltIndex, BuildError> {
    let start = Instant::now();
    let index = registry::build_index(spec, &BuildCtx { data, metric })?;
    let build_secs = start.elapsed().as_secs_f64();
    let index_bytes = index.index_bytes();
    Ok(BuiltIndex { spec: *spec, build_secs, index_bytes, index })
}

/// One built index with its build-time measurements.
pub struct BuiltIndex {
    /// The spec it was built from.
    pub spec: IndexSpec,
    /// Wall-clock indexing time in seconds.
    pub build_secs: f64,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// The scheme, erased behind the workspace-wide index trait.
    pub index: Box<dyn AnnIndex>,
}

impl BuiltIndex {
    /// [`build_spec`] as an associated constructor.
    pub fn build(
        spec: &IndexSpec,
        data: &Arc<Dataset>,
        metric: Metric,
    ) -> Result<BuiltIndex, BuildError> {
        build_spec(spec, data, metric)
    }

    /// Runs one query with the uniform [`SearchParams`] knobs (the same
    /// contract as [`AnnIndex::query`] — no positional budget/probes).
    pub fn query(&self, q: &[f32], params: &SearchParams) -> Vec<Neighbor> {
        self.index.query(q, params)
    }

    /// Runs the whole query set through the parallel batch executor,
    /// returning per-query results in query order.
    pub fn query_batch(&self, queries: &Dataset, params: &SearchParams) -> Vec<Vec<Neighbor>> {
        self.index.query_batch(queries, params)
    }

    /// Answers one [`SearchRequest`] (filter, threshold, and stats
    /// included) — [`AnnIndex::search`] on the erased index.
    pub fn search(&self, q: &[f32], req: &SearchRequest) -> SearchResponse {
        self.index.search(q, req)
    }

    /// Answers the whole query set under one request through the parallel
    /// batch executor, in query order.
    pub fn search_batch(&self, queries: &Dataset, req: &SearchRequest) -> Vec<SearchResponse> {
        self.index.search_batch(queries, req)
    }
}

/// One measured point of a sweep: metrics averaged over the query set.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Dataset name.
    pub dataset: String,
    /// Method name (paper legend).
    pub method: String,
    /// Index + query configuration description.
    pub config: String,
    /// Neighbors requested.
    pub k: usize,
    /// Mean recall over the query set.
    pub recall: f64,
    /// Mean overall ratio.
    pub ratio: f64,
    /// Mean query time in milliseconds — per-query CPU time in sequential
    /// mode, wall-clock per query in parallel mode.
    pub query_ms: f64,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// Indexing wall-clock seconds.
    pub build_secs: f64,
}

/// Times `built` over every query single-threaded with scratch reuse (the
/// §6 protocol) and averages the metrics against `gt` (whose k must be
/// ≥ `k`). Thin wrapper building the [`SearchRequest`] from the bare
/// triple; drivers with richer questions call [`run_point_mode`] with a
/// builder-constructed request directly.
pub fn run_point(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    budget: usize,
    probes: usize,
) -> RunPoint {
    let req = SearchRequest::top_k(k).budget(budget).probes(probes);
    run_point_mode(built, dataset_name, queries, gt, &req, false)
}

/// [`run_point`] but answering the query set through the parallel batch
/// executor; `query_ms` becomes wall-clock per query (throughput view).
/// Recall/ratio are identical to sequential mode — the executor is
/// deterministic.
pub fn run_point_parallel(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    k: usize,
    budget: usize,
    probes: usize,
) -> RunPoint {
    let req = SearchRequest::top_k(k).budget(budget).probes(probes);
    run_point_mode(built, dataset_name, queries, gt, &req, true)
}

/// Shared implementation of the two timing modes, driven by one
/// [`SearchRequest`] applied to every query. Recall/ratio are measured
/// against the unfiltered ground truth, so only pass filter-free
/// requests when interpreting them as the paper's §6 metrics.
pub fn run_point_mode(
    built: &BuiltIndex,
    dataset_name: &str,
    queries: &Dataset,
    gt: &GroundTruth,
    req: &SearchRequest,
    parallel: bool,
) -> RunPoint {
    let k = req.k;
    // Same legality rule the serving layer applies — defined once in
    // `SearchRequest::validate`, not re-derived here.
    if let Err(e) = req.validate(built.index.len()) {
        panic!("invalid request: {e}");
    }
    assert!(gt.k() >= k, "ground truth too shallow: {} < {k}", gt.k());
    let start = Instant::now();
    let results: Vec<Vec<Neighbor>> = if parallel {
        built.index.search_batch(queries, req).into_iter().map(|r| r.hits).collect()
    } else {
        let mut scratch = built.index.make_scratch();
        queries.iter().map(|q| built.index.search_with(q, req, &mut scratch).hits).collect()
    };
    let elapsed = start.elapsed().as_secs_f64();
    let mut recall_sum = 0.0;
    let mut ratio_sum = 0.0;
    for (qi, got) in results.iter().enumerate() {
        let truth = &gt.neighbors(qi)[..k];
        recall_sum += crate::metrics::recall(got, truth);
        ratio_sum += crate::metrics::overall_ratio(got, truth);
    }
    let nq = queries.len() as f64;
    let mut config = built.spec.config_string();
    if !config.is_empty() {
        config.push(',');
    }
    config.push_str(&format!("budget={}", req.budget));
    if req.probes > 0 {
        config.push_str(&format!(",probes={}", req.probes));
    }
    if parallel {
        config.push_str(",par");
    }
    RunPoint {
        dataset: dataset_name.to_string(),
        method: built.index.name().to_string(),
        config,
        k,
        recall: recall_sum / nq,
        ratio: ratio_sum / nq,
        query_ms: elapsed * 1000.0 / nq,
        index_bytes: built.index_bytes,
        build_secs: built.build_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{ExactKnn, SynthSpec};

    fn setup() -> (Arc<Dataset>, Dataset, GroundTruth) {
        let spec = SynthSpec::new("unit", 600, 16).with_clusters(8);
        let data = Arc::new(spec.generate(3));
        let queries = spec.generate_queries(10, 3);
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);
        (data, queries, gt)
    }

    #[test]
    fn all_specs_build_and_answer() {
        let (data, queries, gt) = setup();
        let specs = [
            IndexSpec::lccs(16),
            IndexSpec::mp_lccs(16),
            IndexSpec::e2lsh(2, 8),
            IndexSpec::multi_probe(2, 4),
            IndexSpec::c2lsh(16, 4),
            IndexSpec::qalsh(16, 4),
            IndexSpec::srs(6),
            IndexSpec::lsh_forest(2, 8),
            IndexSpec::sk_lsh(8, 2),
            IndexSpec::kd_tree(),
            IndexSpec::linear(),
        ];
        for spec in specs {
            let spec = spec.with_w(4.0).with_seed(7);
            let built = build_spec(&spec, &data, Metric::Euclidean).expect("build");
            let pt = run_point(&built, "unit", &queries, &gt, 10, 128, 16);
            assert!(pt.recall >= 0.0 && pt.recall <= 1.0, "{}", pt.method);
            assert!(pt.ratio >= 1.0 - 1e-9, "{} ratio {}", pt.method, pt.ratio);
            assert!(pt.query_ms >= 0.0);
            if !matches!(spec.scheme, Scheme::Linear) {
                assert!(pt.index_bytes > 0, "{}", pt.method);
            }
        }
    }

    #[test]
    fn exact_schemes_have_perfect_recall() {
        let (data, queries, gt) = setup();
        for spec in [IndexSpec::linear().with_seed(1), IndexSpec::kd_tree()] {
            let built = build_spec(&spec, &data, Metric::Euclidean).expect("build");
            let pt = run_point(&built, "unit", &queries, &gt, 10, 0, 0);
            assert!((pt.recall - 1.0).abs() < 1e-12, "{}", pt.method);
            assert!((pt.ratio - 1.0).abs() < 1e-9, "{}", pt.method);
        }
    }

    #[test]
    fn falconn_on_angular() {
        let spec = SynthSpec::new("ang", 500, 16).with_clusters(8);
        let data = Arc::new(spec.generate(4).normalized());
        let queries = spec.generate_queries(8, 4).normalized();
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Angular);
        let built = build_spec(
            &IndexSpec::falconn(2, 8).with_w(1.0).with_seed(2),
            &data,
            Metric::Angular,
        )
        .expect("build");
        let pt = run_point(&built, "ang", &queries, &gt, 10, 400, 32);
        assert!(pt.recall > 0.0, "FALCONN should find something, got {}", pt.recall);
    }

    #[test]
    fn build_errors_are_surfaced_not_panicked() {
        let (data, _, _) = setup();
        assert!(matches!(
            build_spec(&IndexSpec::falconn(2, 8), &data, Metric::Euclidean),
            Err(BuildError::BadParam(_))
        ));
    }

    #[test]
    fn bigger_budget_helps_lccs() {
        let (data, queries, gt) = setup();
        let built = build_spec(&IndexSpec::lccs(32).with_w(4.0).with_seed(9), &data, Metric::Euclidean)
            .expect("build");
        let small = run_point(&built, "unit", &queries, &gt, 10, 4, 0);
        let large = run_point(&built, "unit", &queries, &gt, 10, 512, 0);
        assert!(large.recall >= small.recall);
    }

    #[test]
    fn parallel_mode_reproduces_sequential_metrics() {
        let (data, queries, gt) = setup();
        for spec in [
            IndexSpec::lccs(16),
            IndexSpec::mp_lccs(16),
            IndexSpec::e2lsh(2, 8),
            IndexSpec::qalsh(16, 4),
        ] {
            let spec = spec.with_w(4.0).with_seed(7);
            let built = build_spec(&spec, &data, Metric::Euclidean).expect("build");
            let seq = run_point(&built, "unit", &queries, &gt, 10, 64, 8);
            let par = run_point_parallel(&built, "unit", &queries, &gt, 10, 64, 8);
            assert_eq!(seq.recall, par.recall, "{}", seq.method);
            assert_eq!(seq.ratio, par.ratio, "{}", seq.method);
        }
    }

    #[test]
    fn batch_query_equals_sequential_queries() {
        let (data, queries, _) = setup();
        let built = build_spec(&IndexSpec::lccs(16).with_seed(5), &data, Metric::Euclidean)
            .expect("build");
        let params = SearchParams::new(5, 64);
        let batch = built.query_batch(&queries, &params);
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(batch[qi], built.query(q, &params), "query {qi}");
        }
    }

    #[test]
    fn spec_strings_build_the_same_index_as_constructed_specs() {
        // The textual grammar is a first-class construction path: a parsed
        // spec must produce bit-identical answers to the same spec built
        // from Rust constructors.
        let (data, queries, _) = setup();
        let parsed: IndexSpec = "lccs:m=16,seed=7".parse().expect("grammar");
        let constructed = IndexSpec::lccs(16).with_seed(7);
        assert_eq!(parsed, constructed);
        let a = build_spec(&parsed, &data, Metric::Euclidean).expect("build parsed");
        let b = build_spec(&constructed, &data, Metric::Euclidean).expect("build constructed");
        let params = SearchParams::new(5, 64);
        for q in queries.iter() {
            assert_eq!(a.query(q, &params), b.query(q, &params));
        }
    }
}
