//! Table 1 — space and time complexities of E2LSH, C2LSH and LCCS-LSH
//! under the α settings {0, 1, 1/(1−ρ)}.
//!
//! Two parts:
//!
//! 1. **Analytic** — the asymptotic rows of the paper's Table 1, instantiated
//!    with the hash quality ρ computed from the workload's actual collision
//!    probabilities (Eq. 2 at the tuned `w`, R = sampled NN distance, c = 2).
//! 2. **Empirical** — a scaling sweep n ∈ {2⁰, 2¹, …}·n₀ measuring LCCS-LSH
//!    index size, indexing time and query time at the theory-recommended
//!    λ(m, n), demonstrating the sub-linear query scaling the table claims.

use super::ExpOptions;
use crate::harness::{build_spec, IndexSpec};
use crate::report::console_table;
use dataset::stats::DistanceProfile;
use dataset::{ExactKnn, Metric, SynthSpec};
use lccs_lsh::theory;
use lsh::prob;
use std::sync::Arc;
use std::time::Instant;

/// Runs Table 1. Returns the console output (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let mut out = String::new();

    // --- Part 1: analytic rows with a workload-derived rho. ---
    let spec = SynthSpec::sift_like().with_n(opts.n.min(8000));
    let data = Arc::new(spec.generate(opts.seed));
    let prof = DistanceProfile::sample(&data, Metric::Euclidean, 400, opts.seed);
    let r = (prof.mean / prof.relative_contrast).max(1e-9);
    let w = 2.0 * r;
    let c = 2.0;
    let p1 = prob::collision_probability_euclidean(r, w);
    let p2 = prob::collision_probability_euclidean(c * r, w);
    let rho = prob::rho(p1, p2);
    out.push_str(&format!(
        "hash quality on the Sift surrogate: R={r:.3}, w={w:.3}, p1={p1:.3}, p2={p2:.3}, rho={rho:.3}\n\n"
    ));

    let mut rows = vec![
        vec![
            "E2LSH".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "O(n^(1+rho))".into(),
            "O(n^(1+rho) eta(d) log n)".into(),
            "O(n^rho (eta(d) log n + d))".into(),
        ],
        vec![
            "C2LSH".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "O(n log n)".into(),
            "O(n log n (eta(d)+log n))".into(),
            "O(n log n)".into(),
        ],
    ];
    for row in theory::table1_rows(rho) {
        rows.push(vec![
            "LCCS-LSH".into(),
            format!("{:.3}", row.alpha),
            format!("O(n^{:.3})", row.m_exponent),
            format!("O(n^{:.3})", row.lambda_exponent),
            format!("O(n^{:.3})", row.space_exponent),
            format!("O(n^{:.3} (eta(d)+log n))", row.space_exponent),
            format!("O(n^{:.3} + n^{:.3} d)", row.m_exponent, row.lambda_exponent),
        ]);
    }
    let t1 = console_table(
        &["method", "alpha", "m", "lambda", "space", "indexing time", "query time"],
        &rows,
    );
    out.push_str(&t1);
    out.push('\n');

    // --- Part 2: empirical scaling of LCCS-LSH at alpha = 1. ---
    let base_n = (opts.n / 8).max(500);
    let mut rows = Vec::new();
    for scale in [1usize, 2, 4, 8] {
        let n = base_n * scale;
        let spec = SynthSpec::sift_like().with_n(n);
        let data = Arc::new(spec.generate(opts.seed));
        let queries = spec.generate_queries(opts.queries.min(50), opts.seed + 1);
        let gt = ExactKnn::compute(&data, &queries, opts.k, Metric::Euclidean);
        // alpha = 1: m = n^rho (clamped to a sane range), lambda from Thm 5.1.
        let m = ((n as f64).powf(rho).round() as usize).clamp(8, 512);
        let lambda = theory::lambda(m, n, p1, p2);
        let spec = IndexSpec::lccs(m).with_w(w).with_seed(opts.seed);
        let built = build_spec(&spec, &data, Metric::Euclidean).expect("build lccs");
        let req = ann::SearchRequest::top_k(opts.k).budget(lambda);
        let start = Instant::now();
        let mut recall_sum = 0.0;
        for (qi, q) in queries.iter().enumerate() {
            let got = built.search(q, &req).hits;
            recall_sum += crate::metrics::recall(&got, gt.neighbors(qi));
        }
        let qms = start.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            lambda.to_string(),
            format!("{:.1} MB", built.index_bytes as f64 / 1e6),
            format!("{:.3} s", built.build_secs),
            format!("{qms:.3} ms"),
            format!("{:.1}%", recall_sum / queries.len() as f64 * 100.0),
        ]);
    }
    let t2 = console_table(
        &["n", "m=n^rho", "lambda(Thm 5.1)", "index size", "index time", "query time", "recall"],
        &rows,
    );
    out.push_str("empirical scaling at alpha = 1:\n");
    out.push_str(&t2);

    std::fs::create_dir_all(&opts.out_dir)?;
    std::fs::write(opts.out_dir.join("table1.txt"), &out)?;
    println!("{out}");
    Ok(out)
}
