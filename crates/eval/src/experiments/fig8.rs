//! Figure 8 — sensitivity to k ∈ {1, 2, 5, 10, 20, 50, 100} on Sift under
//! both metrics: recall, ratio, and query time of every method at matched
//! recall levels.
//!
//! Protocol (§6.4): "we present their best query performance vs. k for all
//! combinations of parameters under the similar recall levels" — for each
//! k, each method contributes its lowest-query-time point among those
//! reaching the target recall (50%); methods that can't reach it contribute
//! their highest-recall point.

use super::{angular_grids, euclidean_grids, load_sift, ExpOptions};
use crate::harness::RunPoint;
use crate::report::{console_table, write_points};
use dataset::Metric;

/// The k values of Figure 8.
pub const KS: [usize; 7] = [1, 2, 5, 10, 20, 50, 100];

/// Target recall level for "similar recall" matching.
pub const TARGET_RECALL: f64 = 0.5;

fn best_at_recall(points: &[RunPoint]) -> Option<&RunPoint> {
    points
        .iter()
        .filter(|p| p.recall >= TARGET_RECALL)
        .min_by(|a, b| a.query_ms.total_cmp(&b.query_ms))
        .or_else(|| points.iter().max_by(|a, b| a.recall.total_cmp(&b.recall)))
}

/// Runs the Figure 8 sweep. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for metric in [Metric::Euclidean, Metric::Angular] {
        let wl = load_sift(opts, metric);
        let grids = match metric {
            Metric::Angular => angular_grids(opts.quick, opts.n),
            _ => euclidean_grids(opts.quick, opts.n),
        };
        for grid in &grids {
            eprintln!("[fig8] Sift-{} / {} ...", metric.name(), grid.method);
            // Build once per spec; evaluate each k over the grid.
            for &k in &KS {
                let k = k.min(wl.data.len());
                let pts = super::sweep(grid, &wl, metric, k, opts.seed, opts.parallel);
                if let Some(best) = best_at_recall(&pts) {
                    rows.push(vec![
                        format!("Sift-{}", metric.name()),
                        grid.method.to_string(),
                        k.to_string(),
                        format!("{:.1}%", best.recall * 100.0),
                        format!("{:.4}", best.ratio),
                        format!("{:.3}", best.query_ms),
                    ]);
                    all.push(best.clone());
                }
            }
        }
    }
    write_points(&opts.out_dir.join("fig8"), "fig8 sift", &all)?;
    let table = console_table(
        &["dataset", "method", "k", "recall", "ratio", "query ms"],
        &rows,
    );
    println!("{table}");
    Ok(table)
}
