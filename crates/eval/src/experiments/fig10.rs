//! Figure 10 — impact of #probes for MP-LCCS-LSH on Sift, both metrics,
//! with m = 128 and #probes ∈ {1, m+1, 2m+1, 4m+1, 8m+1}.

use super::{load_sift, ExpOptions, MethodGrid};
use crate::harness::IndexSpec;
use crate::pareto::{default_levels, time_recall_frontier};
use crate::report::{console_table, write_frontier, write_points};
use dataset::Metric;

/// The fixed hash-string length of the sweep (§6.4 uses m = 128; quick mode
/// uses 64 to bound runtime).
pub fn fixed_m(quick: bool) -> usize {
    if quick {
        64
    } else {
        128
    }
}

/// Probe multipliers of the sweep: `#probes = mult·m + 1`.
pub const MULTS: [usize; 5] = [0, 1, 2, 4, 8];

/// Runs the Figure 10 sweep. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let m = fixed_m(opts.quick);
    let levels = default_levels();
    let mut rows = Vec::new();
    for metric in [Metric::Euclidean, Metric::Angular] {
        let wl = load_sift(opts, metric);
        let mut all = Vec::new();
        for mult in MULTS {
            let probes = mult * m + 1;
            eprintln!("[fig10] Sift-{} / #probes={} ...", metric.name(), probes);
            let grid = MethodGrid {
                method: "MP-LCCS-LSH",
                specs: vec![IndexSpec::mp_lccs(m)],
                budgets: super::budget_ladder_pub(opts.quick, opts.n),
                probes: vec![probes],
            };
            let pts = super::sweep(&grid, &wl, metric, opts.k, opts.seed, opts.parallel);
            let frontier = time_recall_frontier(&pts, &levels);
            write_frontier(
                &opts.out_dir.join("fig10"),
                &format!("fig10 sift {} probes{}", metric.name(), probes),
                &frontier,
            )?;
            let at50 = frontier
                .iter()
                .find(|p| p.recall_pct >= 50.0)
                .map_or("-".into(), |p| format!("{:.3} ms", p.query_ms));
            let best = pts.iter().map(|p| p.recall).fold(0.0f64, f64::max);
            rows.push(vec![
                format!("Sift-{}", metric.name()),
                format!("#probes={probes}"),
                at50,
                format!("{:.1}%", best * 100.0),
            ]);
            all.extend(pts);
        }
        write_points(
            &opts.out_dir.join("fig10"),
            &format!("fig10 sift {}", metric.name()),
            &all,
        )?;
    }
    let table =
        console_table(&["dataset", "config", "time@50% recall", "max recall"], &rows);
    println!("{table}");
    Ok(table)
}
