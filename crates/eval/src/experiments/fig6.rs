//! Figure 6 — query time vs index size and vs indexing time at the 50%
//! recall level, **Euclidean distance**, five datasets.
//!
//! Same grids as Figure 4; each (dataset, method) reduces to two staircase
//! frontiers: configs reaching ≥ 50% recall, Pareto-optimal in
//! (index size, query time) and in (indexing time, query time).

use super::{euclidean_grids, load_suite, ExpOptions};
use crate::pareto::resource_frontier;
use crate::report::{console_table, write_points, write_tradeoff};
use dataset::Metric;

/// The recall floor of Figures 6–7.
pub const RECALL_FLOOR: f64 = 0.5;

/// Runs the Figure 6 sweep. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    run_metric(opts, Metric::Euclidean, "fig6")
}

pub(crate) fn run_metric(
    opts: &ExpOptions,
    metric: Metric,
    tag: &str,
) -> std::io::Result<String> {
    let grids = match metric {
        Metric::Angular => super::angular_grids(opts.quick, opts.n),
        _ => euclidean_grids(opts.quick, opts.n),
    };
    let suite = load_suite(opts, metric);
    let mut rows = Vec::new();
    for wl in &suite {
        let mut all_points = Vec::new();
        for grid in &grids {
            eprintln!("[{tag}] {} / {} ...", wl.name, grid.method);
            let pts = super::sweep(grid, wl, metric, opts.k, opts.seed, opts.parallel);
            let by_size = resource_frontier(&pts, RECALL_FLOOR, |p| p.index_bytes as f64);
            let by_time = resource_frontier(&pts, RECALL_FLOOR, |p| p.build_secs);
            write_tradeoff(
                &opts.out_dir.join(tag),
                &format!("{tag} {} {} size", wl.name, grid.method),
                &by_size,
            )?;
            write_tradeoff(
                &opts.out_dir.join(tag),
                &format!("{tag} {} {} buildtime", wl.name, grid.method),
                &by_time,
            )?;
            let best = by_size
                .last()
                .map_or("-".into(), |p| format!("{:.3} ms @ {:.1} MB", p.query_ms, p.resource / 1e6));
            rows.push(vec![wl.name.clone(), grid.method.to_string(), best]);
            all_points.extend(pts);
        }
        write_points(&opts.out_dir.join(tag), &format!("{tag} {}", wl.name), &all_points)?;
    }
    let table =
        console_table(&["dataset", "method", "fastest config ≥50% recall (size)"], &rows);
    println!("{table}");
    Ok(table)
}
