//! Framework ablation (beyond the paper's figures; supports its §7 claims).
//!
//! §7 positions LCCS-LSH against the two sorted-key ancestors of the CSA:
//! LSH-Forest ("the LCP between the hash values of query and data objects
//! can be found via a trie") and SK-LSH ("sorts the compound keys in
//! alphabetical order"), arguing that "since CSA can reuse the hash values
//! in every position, it carries more information than sequence and
//! curves... LCCS-LSH can be considered to extend them by virtually
//! building more trees".
//!
//! This experiment isolates exactly that claim: at **matched hash-function
//! budgets** (the same total number of stored hash values per object), it
//! compares LCCS-LSH's one circular index of length m against LSH-Forest
//! with l·depth = m and SK-LSH with K·L = m, plus E2LSH as the bucketed
//! reference — same family, same data, same verification.

use super::{budget_ladder_pub, load_sift, ExpOptions};
use crate::harness::IndexSpec;
use crate::pareto::{default_levels, time_recall_frontier};
use crate::report::{console_table, write_frontier, write_points};
use dataset::Metric;

/// Runs the framework ablation. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let wl = load_sift(opts, Metric::Euclidean);
    let levels = default_levels();
    let budgets = budget_ladder_pub(opts.quick, opts.n);
    // Matched budget: 64 stored hash values per object for every framework.
    let m = 64;
    let contenders: Vec<(&str, Vec<IndexSpec>)> = vec![
        ("LCCS-LSH (1 circular index, m=64)", vec![IndexSpec::lccs(m)]),
        (
            "LSH-Forest (4 trees x depth 16)",
            vec![IndexSpec::lsh_forest(4, 16)],
        ),
        (
            "LSH-Forest (8 trees x depth 8)",
            vec![IndexSpec::lsh_forest(8, 8)],
        ),
        ("SK-LSH (4 indexes x K=16)", vec![IndexSpec::sk_lsh(16, 4)]),
        ("SK-LSH (8 indexes x K=8)", vec![IndexSpec::sk_lsh(8, 8)]),
        ("E2LSH (8 tables x K=8)", vec![IndexSpec::e2lsh(8, 8)]),
    ];

    let mut rows = Vec::new();
    let mut all = Vec::new();
    for (label, specs) in &contenders {
        eprintln!("[frameworks] {label} ...");
        let grid = super::MethodGrid {
            method: "ablation",
            specs: specs.clone(),
            budgets: budgets.clone(),
            probes: vec![0],
        };
        let pts = super::sweep(&grid, &wl, Metric::Euclidean, opts.k, opts.seed, opts.parallel);
        let frontier = time_recall_frontier(&pts, &levels);
        write_frontier(&opts.out_dir.join("frameworks"), &format!("frameworks {label}"), &frontier)?;
        let at50 = frontier
            .iter()
            .find(|p| p.recall_pct >= 50.0)
            .map_or("-".into(), |p| format!("{:.3} ms", p.query_ms));
        let at80 = frontier
            .iter()
            .find(|p| p.recall_pct >= 80.0)
            .map_or("-".into(), |p| format!("{:.3} ms", p.query_ms));
        let best = pts.iter().map(|p| p.recall).fold(0.0f64, f64::max);
        let bytes = pts.first().map_or(0, |p| p.index_bytes);
        rows.push(vec![
            label.to_string(),
            at50,
            at80,
            format!("{:.1}%", best * 100.0),
            format!("{:.1} MB", bytes as f64 / 1e6),
        ]);
        all.extend(pts);
    }
    write_points(&opts.out_dir.join("frameworks"), "frameworks sift", &all)?;
    let table = console_table(
        &["framework (64 hash values/object)", "time@50%", "time@80%", "max recall", "index"],
        &rows,
    );
    println!("{table}");
    Ok(table)
}
