//! Table 2 — statistics of datasets and queries (#objects, #queries, d,
//! data size, type), extended with the distance-distribution profile that
//! validates the surrogates (see DESIGN.md §4).

use super::{suite_specs, ExpOptions};
use crate::report::console_table;
use dataset::stats::{DistanceProfile, TableRow};
use dataset::Metric;

/// Runs Table 2. Returns the console output (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let mut rows = Vec::new();
    for (spec, ty) in suite_specs(opts.n) {
        let data = spec.generate(opts.seed);
        let queries = spec.generate_queries(opts.queries, opts.seed + 1);
        let row = TableRow::new(&data, &queries, ty);
        let prof = DistanceProfile::sample(&data, Metric::Euclidean, 300, opts.seed ^ 0x55);
        rows.push(vec![
            row.name.clone(),
            row.n_objects.to_string(),
            row.n_queries.to_string(),
            row.dim.to_string(),
            row.pretty_size(),
            row.data_type.clone(),
            format!("{:.2}", prof.relative_contrast),
        ]);
    }
    let table = console_table(
        &["Datasets", "#Objects", "#Queries", "d", "Data Size", "Type", "contrast"],
        &rows,
    );
    std::fs::create_dir_all(&opts.out_dir)?;
    std::fs::write(opts.out_dir.join("table2.txt"), &table)?;
    println!("{table}");
    Ok(table)
}
