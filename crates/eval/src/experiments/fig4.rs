//! Figure 4 — query time vs recall, top-k NNs, **Euclidean distance**,
//! five datasets × seven methods.
//!
//! For every (dataset, method) the driver grid-searches the method's
//! parameter space, reduces to the lowest-time-per-recall-level frontier
//! (§6.4's protocol), writes one TSV per series, and prints the
//! 50%-recall column as a console summary.

use super::{euclidean_grids, load_suite, ExpOptions};
use crate::pareto::{default_levels, time_recall_frontier};
use crate::report::{console_table, write_frontier, write_points};
use dataset::Metric;

/// Runs the Figure 4 sweep. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    run_metric(opts, Metric::Euclidean, "fig4")
}

/// Shared implementation for Figures 4 (Euclidean) and 5 (Angular).
pub(crate) fn run_metric(
    opts: &ExpOptions,
    metric: Metric,
    tag: &str,
) -> std::io::Result<String> {
    let grids = match metric {
        Metric::Angular => super::angular_grids(opts.quick, opts.n),
        _ => euclidean_grids(opts.quick, opts.n),
    };
    let suite = load_suite(opts, metric);
    let levels = default_levels();
    let mut rows = Vec::new();
    for wl in &suite {
        let mut all_points = Vec::new();
        for grid in &grids {
            eprintln!("[{tag}] {} / {} ...", wl.name, grid.method);
            let pts = super::sweep(grid, wl, metric, opts.k, opts.seed, opts.parallel);
            let frontier = time_recall_frontier(&pts, &levels);
            write_frontier(
                &opts.out_dir.join(tag),
                &format!("{} {} {}", tag, wl.name, grid.method),
                &frontier,
            )?;
            // Console summary: best time at the 50% recall level.
            let at50 = frontier
                .iter()
                .find(|p| p.recall_pct >= 50.0)
                .map_or("-".to_string(), |p| format!("{:.3} ms", p.query_ms));
            let best = pts
                .iter()
                .map(|p| p.recall)
                .fold(0.0f64, f64::max);
            rows.push(vec![
                wl.name.clone(),
                grid.method.to_string(),
                at50,
                format!("{:.1}%", best * 100.0),
            ]);
            all_points.extend(pts);
        }
        write_points(&opts.out_dir.join(tag), &format!("{tag} {}", wl.name), &all_points)?;
    }
    let table = console_table(
        &["dataset", "method", "time@50% recall", "max recall"],
        &rows,
    );
    println!("{table}");
    Ok(table)
}
