//! Figure 9 — impact of m for LCCS-LSH on Sift, both metrics: one
//! query-time/recall curve per m ∈ {8, 16, 32, 64, 128, 256, 512}.

use super::{load_sift, ExpOptions, MethodGrid};
use crate::harness::IndexSpec;
use crate::pareto::{default_levels, time_recall_frontier};
use crate::report::{console_table, write_frontier, write_points};
use dataset::Metric;

/// The m values swept (§6.4; quick mode trims the tail to bound runtime).
pub fn ms(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 16, 32, 64, 128]
    } else {
        vec![8, 16, 32, 64, 128, 256, 512]
    }
}

/// Runs the Figure 9 sweep. Returns the console summary (also printed).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    let levels = default_levels();
    let mut rows = Vec::new();
    for metric in [Metric::Euclidean, Metric::Angular] {
        let wl = load_sift(opts, metric);
        let mut all = Vec::new();
        for m in ms(opts.quick) {
            if m >= wl.data.len() {
                continue;
            }
            eprintln!("[fig9] Sift-{} / m={} ...", metric.name(), m);
            let grid = MethodGrid {
                method: "LCCS-LSH",
                specs: vec![IndexSpec::lccs(m)],
                budgets: super::budget_ladder_pub(opts.quick, opts.n),
                probes: vec![0],
            };
            let pts = super::sweep(&grid, &wl, metric, opts.k, opts.seed, opts.parallel);
            let frontier = time_recall_frontier(&pts, &levels);
            write_frontier(
                &opts.out_dir.join("fig9"),
                &format!("fig9 sift {} m{}", metric.name(), m),
                &frontier,
            )?;
            let at50 = frontier
                .iter()
                .find(|p| p.recall_pct >= 50.0)
                .map_or("-".into(), |p| format!("{:.3} ms", p.query_ms));
            let best = pts.iter().map(|p| p.recall).fold(0.0f64, f64::max);
            rows.push(vec![
                format!("Sift-{}", metric.name()),
                format!("m={m}"),
                at50,
                format!("{:.1}%", best * 100.0),
            ]);
            all.extend(pts);
        }
        write_points(
            &opts.out_dir.join("fig9"),
            &format!("fig9 sift {}", metric.name()),
            &all,
        )?;
    }
    let table =
        console_table(&["dataset", "config", "time@50% recall", "max recall"], &rows);
    println!("{table}");
    Ok(table)
}
