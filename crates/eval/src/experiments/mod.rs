//! Experiment drivers — one submodule per table/figure of §6.
//!
//! Each driver takes [`ExpOptions`], runs the corresponding grid
//! search/sweep, writes TSV series into `out_dir`, and prints a console
//! summary. The `bench` crate exposes one binary per driver
//! (`cargo run -p bench --release --bin fig4`, …).

pub mod fig10;
pub mod frameworks;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use crate::harness::{build_spec, run_point_mode, IndexSpec, RunPoint};
use dataset::stats::DistanceProfile;
use dataset::{Dataset, ExactKnn, GroundTruth, Metric, SynthSpec};
use std::path::PathBuf;
use std::sync::Arc;

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Objects per dataset (the paper uses ~10⁶; surrogate default 20 000).
    pub n: usize,
    /// Queries per dataset (paper: 100).
    pub queries: usize,
    /// Neighbors per query (paper default: 10).
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for TSV series.
    pub out_dir: PathBuf,
    /// Reduced grids for fast runs (default true; pass `--full` to use the
    /// paper-scale grids).
    pub quick: bool,
    /// Answer query sets through the parallel batch executor instead of
    /// the single-threaded §6 protocol (`--parallel`); `query_ms` then
    /// reports wall-clock per query.
    pub parallel: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            n: 20_000,
            queries: 100,
            k: 10,
            seed: 42,
            out_dir: PathBuf::from("results"),
            quick: true,
            parallel: false,
        }
    }
}

impl ExpOptions {
    /// Parses `--n`, `--queries`, `--k`, `--seed`, `--out`, `--full` from an
    /// argument iterator (unknown flags are rejected).
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut o = Self::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match a.as_str() {
                "--n" => o.n = take("--n").parse().expect("--n wants an integer"),
                "--queries" => {
                    o.queries = take("--queries").parse().expect("--queries wants an integer")
                }
                "--k" => o.k = take("--k").parse().expect("--k wants an integer"),
                "--seed" => o.seed = take("--seed").parse().expect("--seed wants an integer"),
                "--out" => o.out_dir = PathBuf::from(take("--out")),
                "--full" => o.quick = false,
                "--quick" => o.quick = true,
                "--parallel" => o.parallel = true,
                other => panic!(
                    "unknown flag {other}; known: --n --queries --k --seed --out --full --quick --parallel"
                ),
            }
        }
        o
    }
}

/// One prepared dataset: data, held-out queries, deep ground truth, and the
/// per-dataset tuned bucket width (footnote 11's `w`).
pub struct Workload {
    /// Dataset name (paper Table 2).
    pub name: String,
    /// The indexed objects.
    pub data: Arc<Dataset>,
    /// Held-out queries.
    pub queries: Dataset,
    /// Exact k-NN lists, k = max(100, opts.k).
    pub gt: GroundTruth,
    /// Tuned bucket width for the random-projection family.
    pub w: f64,
    /// Source data type (Table 2 column).
    pub data_type: &'static str,
}

/// The five surrogate specs in the paper's Table 2 order, with their types.
pub fn suite_specs(n: usize) -> Vec<(SynthSpec, &'static str)> {
    vec![
        (SynthSpec::msong_like().with_n(n), "Audio"),
        (SynthSpec::sift_like().with_n(n), "Image"),
        (SynthSpec::gist_like().with_n(n), "Image"),
        (SynthSpec::glove_like().with_n(n), "Text"),
        (SynthSpec::deep_like().with_n(n), "Deep"),
    ]
}

/// Prepares one workload (generate, normalize for angular, ground truth,
/// tune w). `gt_k` of at least `max(100, opts.k)` supports the k sweeps.
pub fn load_workload(
    spec: &SynthSpec,
    data_type: &'static str,
    opts: &ExpOptions,
    metric: Metric,
) -> Workload {
    // Same seed for data and queries: generate_queries derives the mixture
    // centers from the seed and the query points from an internal distinct
    // stream, so this yields held-out draws from the *same* mixture.
    let mut data = spec.generate(opts.seed);
    let mut queries = spec.generate_queries(opts.queries, opts.seed);
    if metric.is_angular() {
        data = data.normalized();
        queries = queries.normalized();
    }
    let data = Arc::new(data);
    let gt_k = opts.k.max(100).min(data.len());
    let gt = ExactKnn::compute(&data, &queries, gt_k, metric);
    // Bucket-width heuristic standing in for the paper's per-dataset
    // fine-tuning: twice the sampled nearest-of-sample distance puts near
    // neighbors at collision probability ≈ 0.6 (Eq. 2 at w/τ = 2).
    let prof = DistanceProfile::sample(&data, metric, 400, opts.seed ^ 0x77);
    let nn_mean = (prof.mean / prof.relative_contrast).max(1e-9);
    let w = 2.0 * nn_mean;
    Workload { name: spec.name.clone(), data, queries, gt, w, data_type }
}

/// Loads the full five-dataset suite for a metric.
pub fn load_suite(opts: &ExpOptions, metric: Metric) -> Vec<Workload> {
    suite_specs(opts.n)
        .iter()
        .map(|(spec, ty)| load_workload(spec, ty, opts, metric))
        .collect()
}

/// Loads just the Sift surrogate (Figures 8–10 use Sift only).
pub fn load_sift(opts: &ExpOptions, metric: Metric) -> Workload {
    load_workload(&SynthSpec::sift_like().with_n(opts.n), "Image", opts, metric)
}

/// Per-method parameter grids. `budgets` are candidate budgets; `probes`
/// are probe counts for multi-probe schemes (`[0]` for the rest).
pub struct MethodGrid {
    /// Method display name.
    pub method: &'static str,
    /// Index-time configurations. Grid specs carry default
    /// [`ann::spec::BuildOptions`]; [`sweep`] overrides `w` with the
    /// workload's tuned width and `seed` with the run seed.
    pub specs: Vec<IndexSpec>,
    /// Query-time candidate budgets.
    pub budgets: Vec<usize>,
    /// Query-time probe counts.
    pub probes: Vec<usize>,
}

/// The candidate-budget ladder shared by the figure drivers.
pub fn budget_ladder_pub(quick: bool, n: usize) -> Vec<usize> {
    budget_ladder(quick, n)
}

fn budget_ladder(quick: bool, n: usize) -> Vec<usize> {
    let full: &[usize] = &[4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let quick_l: &[usize] = &[8, 64, 512, 2048];
    (if quick { quick_l } else { full }).iter().copied().filter(|&b| b <= n).collect()
}

/// Grids for the Euclidean benchmark set (Figure 4's seven methods).
pub fn euclidean_grids(quick: bool, n: usize) -> Vec<MethodGrid> {
    let budgets = budget_ladder(quick, n);
    let ms: Vec<usize> = if quick { vec![16, 64] } else { vec![8, 16, 32, 64, 128, 256] };
    let mut grids = vec![
        MethodGrid {
            method: "LCCS-LSH",
            specs: ms.iter().map(|&m| IndexSpec::lccs(m)).collect(),
            budgets: budgets.clone(),
            probes: vec![0],
        },
        MethodGrid {
            method: "MP-LCCS-LSH",
            specs: ms.iter().map(|&m| IndexSpec::mp_lccs(m)).collect(),
            budgets: budgets.clone(),
            probes: if quick { vec![1, 65] } else { vec![1, 17, 65, 257] },
        },
    ];
    let kl: Vec<(usize, usize)> = if quick {
        vec![(4, 16), (8, 64)]
    } else {
        vec![(2, 8), (4, 16), (4, 64), (6, 64), (8, 64), (8, 256), (10, 32)]
    };
    grids.push(MethodGrid {
        method: "E2LSH",
        specs: kl.iter().map(|&(k, l)| IndexSpec::e2lsh(k, l)).collect(),
        budgets: budgets.clone(),
        probes: vec![0],
    });
    let mp_kl: Vec<(usize, usize)> =
        if quick { vec![(4, 4), (8, 8)] } else { vec![(4, 4), (6, 8), (8, 8), (10, 16)] };
    grids.push(MethodGrid {
        method: "Multi-Probe LSH",
        specs: mp_kl.iter().map(|&(k, l)| IndexSpec::multi_probe(k, l)).collect(),
        budgets: budgets.clone(),
        probes: if quick { vec![16, 128] } else { vec![8, 32, 128, 512] },
    });
    let c2: Vec<(usize, usize)> =
        if quick { vec![(32, 4)] } else { vec![(16, 2), (32, 4), (64, 6), (128, 8)] };
    grids.push(MethodGrid {
        method: "C2LSH",
        specs: c2.iter().map(|&(m, l)| IndexSpec::c2lsh(m, l)).collect(),
        budgets: budgets.clone(),
        probes: vec![0],
    });
    let qa: Vec<(usize, usize)> =
        if quick { vec![(32, 8)] } else { vec![(16, 4), (32, 8), (64, 16), (96, 24)] };
    grids.push(MethodGrid {
        method: "QALSH",
        specs: qa.iter().map(|&(m, l)| IndexSpec::qalsh(m, l)).collect(),
        budgets: budgets.clone(),
        probes: vec![0],
    });
    let srs_d: Vec<usize> = if quick { vec![6] } else { vec![4, 6, 8, 10] };
    grids.push(MethodGrid {
        method: "SRS",
        specs: srs_d.iter().map(|&d| IndexSpec::srs(d)).collect(),
        budgets,
        probes: vec![0],
    });
    grids
}

/// Grids for the Angular benchmark set (Figure 5's five methods).
pub fn angular_grids(quick: bool, n: usize) -> Vec<MethodGrid> {
    let budgets = budget_ladder(quick, n);
    let ms: Vec<usize> = if quick { vec![16, 64] } else { vec![8, 16, 32, 64, 128, 256] };
    let kl: Vec<(usize, usize)> = if quick { vec![(2, 16)] } else { vec![(1, 8), (2, 16), (3, 64)] };
    let f_kl: Vec<(usize, usize)> =
        if quick { vec![(2, 8)] } else { vec![(1, 4), (2, 8), (3, 16)] };
    let c2: Vec<(usize, usize)> =
        if quick { vec![(32, 4)] } else { vec![(16, 2), (32, 4), (64, 6), (128, 8)] };
    vec![
        MethodGrid {
            method: "LCCS-LSH",
            specs: ms.iter().map(|&m| IndexSpec::lccs(m)).collect(),
            budgets: budgets.clone(),
            probes: vec![0],
        },
        MethodGrid {
            method: "MP-LCCS-LSH",
            specs: ms.iter().map(|&m| IndexSpec::mp_lccs(m)).collect(),
            budgets: budgets.clone(),
            probes: if quick { vec![1, 65] } else { vec![1, 17, 65, 257] },
        },
        MethodGrid {
            method: "E2LSH",
            specs: kl.iter().map(|&(k, l)| IndexSpec::e2lsh(k, l)).collect(),
            budgets: budgets.clone(),
            probes: vec![0],
        },
        MethodGrid {
            method: "FALCONN",
            specs: f_kl.iter().map(|&(k, l)| IndexSpec::falconn(k, l)).collect(),
            budgets: budgets.clone(),
            probes: if quick { vec![0, 32] } else { vec![0, 16, 64, 256] },
        },
        MethodGrid {
            method: "C2LSH",
            specs: c2.iter().map(|&(m, l)| IndexSpec::c2lsh(m, l)).collect(),
            budgets,
            probes: vec![0],
        },
    ]
}

/// Runs the full grid of one method on one workload: every index spec ×
/// budget × probe count. One generic loop over `dyn AnnIndex` — the
/// registry behind [`IndexSpec::build`] is the only per-algorithm code
/// left. With `parallel` the query sets run through the batch executor.
pub fn sweep(
    grid: &MethodGrid,
    wl: &Workload,
    metric: Metric,
    k: usize,
    seed: u64,
    parallel: bool,
) -> Vec<RunPoint> {
    let mut out = Vec::new();
    for spec in &grid.specs {
        let spec = spec.with_w(wl.w).with_seed(seed);
        let built = build_spec(&spec, &wl.data, metric)
            .unwrap_or_else(|e| panic!("building {spec}: {e}"));
        for &budget in &grid.budgets {
            for &probes in &grid.probes {
                let req = ann::SearchRequest::top_k(k).budget(budget).probes(probes);
                out.push(run_point_mode(&built, &wl.name, &wl.queries, &wl.gt, &req, parallel));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_round_trip() {
        let o = ExpOptions::parse(
            ["--n", "500", "--queries", "7", "--k", "3", "--seed", "9", "--out", "/tmp/x", "--full"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.n, 500);
        assert_eq!(o.queries, 7);
        assert_eq!(o.k, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert!(!o.quick);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        ExpOptions::parse(["--bogus"].iter().map(|s| s.to_string()));
    }

    #[test]
    fn suite_has_five_paper_datasets() {
        let s = suite_specs(100);
        let names: Vec<&str> = s.iter().map(|(sp, _)| sp.name.as_str()).collect();
        assert_eq!(names, vec!["Msong", "Sift", "Gist", "GloVe", "Deep"]);
    }

    #[test]
    fn workload_loads_and_tunes_w() {
        let opts = ExpOptions { n: 400, queries: 5, ..Default::default() };
        let wl = load_sift(&opts, Metric::Euclidean);
        assert_eq!(wl.data.len(), 400);
        assert_eq!(wl.queries.len(), 5);
        assert!(wl.w > 0.0);
        assert!(wl.gt.k() >= 100);
    }

    #[test]
    fn grids_cover_paper_method_sets() {
        let e = euclidean_grids(true, 10_000);
        let names: Vec<&str> = e.iter().map(|g| g.method).collect();
        assert_eq!(
            names,
            vec!["LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "Multi-Probe LSH", "C2LSH", "QALSH", "SRS"]
        );
        let a = angular_grids(true, 10_000);
        let names: Vec<&str> = a.iter().map(|g| g.method).collect();
        assert_eq!(names, vec!["LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "FALCONN", "C2LSH"]);
    }

    #[test]
    fn sweep_produces_all_combinations() {
        let opts = ExpOptions { n: 300, queries: 4, ..Default::default() };
        let wl = load_sift(&opts, Metric::Euclidean);
        let grid = MethodGrid {
            method: "LCCS-LSH",
            specs: vec![IndexSpec::lccs(8), IndexSpec::lccs(16)],
            budgets: vec![4, 32],
            probes: vec![0],
        };
        let pts = sweep(&grid, &wl, Metric::Euclidean, 5, 1, false);
        assert_eq!(pts.len(), 4);
    }
}
