//! Figure 7 — query time vs index size / indexing time at 50% recall,
//! **Angular distance** (the Angular twin of Figure 6).

use super::ExpOptions;
use dataset::Metric;

/// Runs the Figure 7 sweep.
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    super::fig6::run_metric(opts, Metric::Angular, "fig7")
}
