//! Figure 5 — query time vs recall, top-k NNs, **Angular distance**,
//! five datasets × five methods (LCCS-LSH, MP-LCCS-LSH, E2LSH with
//! cross-polytope functions, FALCONN, C2LSH with cross-polytope functions).

use super::ExpOptions;
use dataset::Metric;

/// Runs the Figure 5 sweep (the Angular twin of Figure 4).
pub fn run(opts: &ExpOptions) -> std::io::Result<String> {
    super::fig4::run_metric(opts, Metric::Angular, "fig5")
}
