//! The fig9/fig10-style calibration sweep behind recall-targeted
//! planning: measure recall and latency over a `(budget, probes)` grid
//! on a sample of the index's own rows, producing the
//! [`plan::CalibrationTable`] the serving layer plans
//! `target_recall` requests against.
//!
//! Ground truth is the index's *own* answers at saturated parameters
//! (budget = n, the grid's highest probe level): the sweep needs no
//! metric object and no external exact-scan, and the saturated grid
//! point measures recall exactly 1.0 by construction — so every target
//! in `(0, 1]` is satisfiable and the planner's fallback never
//! triggers on a fresh table. Absolute recall against an independent
//! exact scan is pinned separately by the serve e2e tests.
//!
//! The budget ladder is geometric between `max(4k, 16)` and `n`
//! (§5: candidate quality scales with `m^{1−1/ρ}`, so recall moves on
//! a log-budget axis), with Theorem 5.1's λ spliced in as an analytic
//! anchor when the caller knows the scheme's `m`.

use ann::{AnnIndex, SearchRequest};
use dataset::exact::Neighbor;
use dataset::Dataset;
use plan::{CalPoint, CalibrationTable};
use std::time::Instant;

/// Probe levels every sweep measures (0 = the scheme's default probing).
pub const PROBE_LEVELS: [usize; 3] = [0, 4, 16];

/// Rungs in the geometric budget ladder (before the λ anchor).
const BUDGET_RUNGS: usize = 5;

/// Canonical hash-quality pair `(p₁, p₂)` used to seed the λ anchor
/// when the caller supplies `m` but no measured collision
/// probabilities.
const CANONICAL_P: (f64, f64) = (0.9, 0.6);

/// Knobs of one calibration sweep.
#[derive(Debug, Clone, Copy)]
pub struct CalibrateConfig {
    /// Indexed rows to sample as queries (capped at the row count).
    pub sample: usize,
    /// The `k` to measure recall at.
    pub k: usize,
    /// Seed of the deterministic row-sampling stride.
    pub seed: u64,
    /// Unix seconds to stamp the table with (0 = unknown).
    pub built_unix: u64,
    /// The scheme's `m` when known: adds Theorem 5.1's λ to the grid.
    pub m_hint: Option<usize>,
}

impl Default for CalibrateConfig {
    fn default() -> CalibrateConfig {
        CalibrateConfig { sample: 64, k: 10, seed: 7, built_unix: 0, m_hint: None }
    }
}

/// The budget ladder for an `n`-row index at depth `k`: geometric rungs
/// from `max(4k, 16)` to `n`, plus the λ anchor when `m` is known.
/// Sorted, deduplicated, every value in `[1, n]`.
pub fn budget_grid(n: usize, k: usize, m_hint: Option<usize>) -> Vec<usize> {
    let n = n.max(1);
    let lo = (4 * k.max(1)).max(16).min(n);
    let mut grid = Vec::with_capacity(BUDGET_RUNGS + 2);
    for i in 0..=BUDGET_RUNGS {
        let t = i as f64 / BUDGET_RUNGS as f64;
        let b = ((lo as f64).ln() * (1.0 - t) + (n as f64).ln() * t).exp().round() as usize;
        grid.push(b.clamp(1, n));
    }
    if let Some(m) = m_hint.filter(|&m| m >= 2) {
        grid.push(lccs_lsh::theory::lambda(m, n, CANONICAL_P.0, CANONICAL_P.1));
    }
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// `count` distinct row indices spread across `len` rows with a
/// seed-dependent offset: deterministic, so repeated sweeps of an
/// unchanged index measure identical queries.
fn sample_indices(len: usize, count: usize, seed: u64) -> Vec<usize> {
    let count = count.max(1).min(len);
    let step = (len / count).max(1);
    let start = (seed as usize) % len;
    (0..count).map(|i| (start + i * step) % len).collect()
}

/// Runs the sweep: saturated ground truth per sampled query, then one
/// recall + median-latency measurement per grid point. The returned
/// table is already monotone-regularized and ready for
/// [`plan::CalibrationTable::plan`].
pub fn sweep(index: &dyn AnnIndex, rows: &Dataset, cfg: &CalibrateConfig) -> CalibrationTable {
    let n = index.len().max(1);
    let k = cfg.k.clamp(1, n);
    let idxs = sample_indices(rows.len().max(1), cfg.sample, cfg.seed);
    let budgets = budget_grid(n, k, cfg.m_hint);
    let max_probes = *PROBE_LEVELS.iter().max().expect("non-empty");
    let saturated = SearchRequest::top_k(k).budget(n).probes(max_probes);
    let truth: Vec<Vec<Neighbor>> =
        idxs.iter().map(|&i| index.search(rows.get(i), &saturated).hits).collect();
    let mut points = Vec::with_capacity(PROBE_LEVELS.len() * budgets.len());
    for &probes in &PROBE_LEVELS {
        for &budget in &budgets {
            let req = SearchRequest::top_k(k).budget(budget).probes(probes);
            let mut recall_sum = 0.0;
            let mut times: Vec<u64> = Vec::with_capacity(idxs.len());
            for (qi, &i) in idxs.iter().enumerate() {
                let t0 = Instant::now();
                let resp = index.search(rows.get(i), &req);
                times.push(t0.elapsed().as_micros() as u64);
                recall_sum += crate::metrics::recall(&resp.hits, &truth[qi]);
            }
            times.sort_unstable();
            points.push(CalPoint {
                budget: budget as u32,
                probes: probes as u32,
                recall: recall_sum / idxs.len() as f64,
                micros: times[times.len() / 2],
            });
        }
    }
    let mut table = CalibrationTable {
        sample_queries: idxs.len() as u32,
        k: k as u32,
        rows: index.len() as u64,
        built_unix: cfg.built_unix,
        stale: false,
        points,
    };
    table.regularize();
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams};
    use std::sync::Arc;

    #[test]
    fn budget_grid_is_sorted_capped_and_anchored() {
        let grid = budget_grid(10_000, 10, Some(64));
        assert!(grid.windows(2).all(|w| w[0] < w[1]), "sorted + deduped: {grid:?}");
        assert_eq!(*grid.last().unwrap(), 10_000, "ladder tops out at n");
        assert!(grid.iter().all(|&b| (1..=10_000).contains(&b)));
        let anchor = lccs_lsh::theory::lambda(64, 10_000, 0.9, 0.6);
        assert!(grid.contains(&anchor), "λ anchor {anchor} in {grid:?}");
        // Degenerate shapes stay legal.
        assert_eq!(budget_grid(1, 10, None), vec![1]);
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_indices(1000, 64, 7);
        let b = sample_indices(1000, 64, 7);
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "indices distinct");
        assert_eq!(sample_indices(5, 64, 7).len(), 5, "capped at len");
    }

    #[test]
    fn sweep_measures_a_plannable_monotone_table() {
        let data = Arc::new(SynthSpec::new("cal", 600, 16).with_clusters(6).generate(3));
        let index = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(4.0).with_m(16),
        );
        let cfg = CalibrateConfig { sample: 24, k: 5, m_hint: Some(16), ..Default::default() };
        let table = sweep(&index, &data, &cfg);
        assert_eq!(table.sample_queries, 24);
        assert_eq!(table.k, 5);
        assert_eq!(table.rows, 600);
        assert!(!table.stale);
        assert!(
            (table.max_recall() - 1.0).abs() < 1e-12,
            "the saturated grid point is its own ground truth"
        );
        // Every target is satisfiable on a fresh table, and the planner
        // never picks a costlier point than the saturated corner.
        let p = table.plan(0.9).expect("plannable");
        assert!(p.predicted_recall >= 0.9);
        assert!(p.budget <= 600);
        // Regularized recall is monotone along budget per probe level.
        for &probes in &PROBE_LEVELS {
            let mut level: Vec<_> =
                table.points.iter().filter(|p| p.probes == probes as u32).collect();
            level.sort_by_key(|p| p.budget);
            assert!(
                level.windows(2).all(|w| w[0].recall <= w[1].recall + 1e-12),
                "monotone at probes={probes}"
            );
        }
    }
}
