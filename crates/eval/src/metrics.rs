//! Accuracy metrics of §6.2: recall and overall ratio.

use dataset::exact::Neighbor;

/// Recall: the fraction of the exact k-NN ids that appear among the
/// returned ids. The paper's definition ("the fraction of the total amount
/// of data objects returned by a method that are appeared in the exact k
/// NNs") with the conventional k denominator.
pub fn recall(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = returned
        .iter()
        .filter(|r| truth.iter().any(|t| t.id == r.id))
        .count();
    hits as f64 / truth.len() as f64
}

/// Overall ratio: `(1/k) Σ_i Dist(o_i, q) / Dist(o*_i, q)` (§6.2), clamped
/// below by 1 per term (floating-point ties) and with zero-distance exact
/// neighbors contributing 1 when matched exactly and being skipped
/// otherwise. Missing positions (method returned fewer than k) are skipped.
pub fn overall_ratio(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for (r, t) in returned.iter().zip(truth) {
        if t.dist <= f64::EPSILON {
            if r.dist <= f64::EPSILON {
                sum += 1.0;
                cnt += 1;
            }
            continue;
        }
        sum += (r.dist / t.dist).max(1.0);
        cnt += 1;
    }
    if cnt == 0 {
        1.0
    } else {
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u32, dist: f64) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn perfect_recall_and_ratio() {
        let truth = vec![nb(1, 1.0), nb(2, 2.0), nb(3, 3.0)];
        assert_eq!(recall(&truth, &truth), 1.0);
        assert_eq!(overall_ratio(&truth, &truth), 1.0);
    }

    #[test]
    fn partial_recall() {
        let truth = vec![nb(1, 1.0), nb(2, 2.0), nb(3, 3.0), nb(4, 4.0)];
        let got = vec![nb(2, 2.0), nb(9, 2.5)];
        assert_eq!(recall(&got, &truth), 0.25);
    }

    #[test]
    fn ratio_penalizes_worse_results() {
        let truth = vec![nb(1, 1.0), nb(2, 2.0)];
        let got = vec![nb(5, 2.0), nb(6, 3.0)];
        // (2/1 + 3/2)/2 = 1.75
        assert!((overall_ratio(&got, &truth) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_never_below_one() {
        let truth = vec![nb(1, 1.0)];
        let got = vec![nb(1, 0.999_999_999)];
        assert!(overall_ratio(&got, &truth) >= 1.0);
    }

    #[test]
    fn zero_distance_truth_handled() {
        let truth = vec![nb(1, 0.0), nb(2, 2.0)];
        let got = vec![nb(1, 0.0), nb(7, 4.0)];
        // first term contributes 1, second 2.0 -> 1.5
        assert!((overall_ratio(&got, &truth) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_returned() {
        let truth = vec![nb(1, 1.0)];
        assert_eq!(recall(&[], &truth), 0.0);
        assert_eq!(overall_ratio(&[], &truth), 1.0);
    }
}
