//! Offline stand-in for the `bytes` crate: [`Bytes`] / [`BytesMut`] plus
//! the little-endian [`Buf`] / [`BufMut`] accessors the persistence layers
//! (`csa::serialize`, `lccs_lsh::persist`) use. Backed by plain `Vec<u8>`
//! with a read cursor — no zero-copy slicing, which none of the callers
//! need. See the `rand` shim for why vendored shims exist at all.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Read-side cursor over a byte payload.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for building payloads.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (shim for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { v: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Freezes into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.v), pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

/// Immutable shared byte payload with a read cursor (shim for
/// `bytes::Bytes`; cloning shares the backing allocation).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread remainder into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v), pos: 0 }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underrun");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0123_4567_89ab_cdef);
        b.put_f64_le(2.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 4 + 1 + 4 + 8 + 8);
        let mut hdr = [0u8; 4];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xdead_beef);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let v = [1u8, 0, 0, 0, 2];
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 2);
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.get_u64_le();
    }
}
