//! Offline stand-in for `memmap2`: a read-only file mapping
//! ([`Mmap`]) plus an aligned f32 view over either a mapping or an
//! owned buffer ([`FloatBlock`]). The serve layer uses it to serve
//! snapshot vector blocks straight from the page cache — restart cost
//! becomes O(page faults) instead of O(bytes copied). See the `rand`
//! shim for why vendored shims exist at all.
//!
//! This is the one workspace crate allowed to contain `unsafe`: the
//! `mmap`/`munmap` calls and the `[u8] → [f32]` casts live here behind
//! safe, invariant-checking constructors, and every unsafe block must
//! carry a `// SAFETY:` comment (`deny(clippy::undocumented_unsafe_blocks)`).
//!
//! Platform notes: mapping is implemented for `cfg(unix)` via
//! `extern "C"` declarations of `mmap`/`munmap` (no registry deps);
//! elsewhere [`map_file`] returns [`MapError::Unsupported`] and callers
//! fall back to owned reads. Mappings are `PROT_READ` + `MAP_PRIVATE`,
//! so the kernel never writes pages back. A mapping of a file another
//! process truncates can fault (SIGBUS) — snapshot files are written
//! via atomic rename and never truncated in place, which keeps that
//! hazard out of this workspace.

#![deny(clippy::undocumented_unsafe_blocks)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io;

/// Why a file could not be memory-mapped.
#[derive(Debug)]
pub enum MapError {
    /// The underlying `mmap` call (or a metadata read) failed.
    Io(io::Error),
    /// Zero-length files cannot be mapped (`mmap` rejects `len == 0`).
    Empty,
    /// Not a unix platform — no `mmap` to call; use an owned read.
    Unsupported,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "mmap failed: {e}"),
            MapError::Empty => write!(f, "cannot map a zero-length file"),
            MapError::Unsupported => write!(f, "memory mapping unsupported on this platform"),
        }
    }
}

impl std::error::Error for MapError {}

/// A read-only, private memory mapping of an entire file.
///
/// Dereferences to `&[u8]`. The mapping is released on drop.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable for its
// whole lifetime, with no interior mutability — so sharing references
// across threads or moving the owner between threads is sound.
unsafe impl Send for Mmap {}
// SAFETY: as above — the mapped bytes are never written through this
// handle, so concurrent `&Mmap` reads are data-race free.
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Maps `file` read-only in its entirety.
///
/// Fails with [`MapError::Empty`] for zero-length files and
/// [`MapError::Unsupported`] on non-unix platforms; callers are
/// expected to fall back to `fs::read`.
#[cfg(unix)]
pub fn map_file(file: &File) -> Result<Mmap, MapError> {
    use std::os::unix::io::AsRawFd;

    let len = file.metadata().map_err(MapError::Io)?.len();
    if len == 0 {
        return Err(MapError::Empty);
    }
    let len = usize::try_from(len).map_err(|_| MapError::Empty)?;
    // SAFETY: fd is a valid open file descriptor for the lifetime of
    // this call; addr = null lets the kernel pick the placement; the
    // PROT_READ/MAP_PRIVATE combination asks for a read-only private
    // mapping, so no aliasing with writable memory is created.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return Err(MapError::Io(io::Error::last_os_error()));
    }
    Ok(Mmap { ptr: ptr as *const u8, len })
}

/// Non-unix stub: always [`MapError::Unsupported`].
#[cfg(not(unix))]
pub fn map_file(_file: &File) -> Result<Mmap, MapError> {
    Err(MapError::Unsupported)
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is the non-null start of a live mapping of
        // exactly `len` readable bytes (established by `map_file`,
        // released only in `drop`), and `&self` borrows the mapping
        // for the returned slice's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: (ptr, len) is exactly what the successful mmap in
        // `map_file` returned, unmapped at most once (Drop runs once).
        unsafe {
            let _ = sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// Reinterprets `bytes` as little-endian `f32`s without copying.
///
/// Returns `None` when the cast would be unsound or wrong: misaligned
/// start, length not a multiple of 4, or a big-endian target (where
/// the on-disk little-endian encoding does not match memory layout).
pub fn cast_f32s(bytes: &[u8]) -> Option<&[f32]> {
    if cfg!(target_endian = "big") {
        return None;
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f32>())
        || !bytes.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; every bit
    // pattern is a valid f32; on little-endian targets the in-memory
    // representation matches the on-disk LE encoding; the returned
    // slice borrows `bytes`, so the backing storage outlives it.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, bytes.len() / 4) })
}

enum Backing {
    Map(Mmap),
    Bytes(Vec<u8>),
}

/// An immutable block of `count` f32s living at byte offset `off`
/// inside either a file mapping or an owned byte buffer.
///
/// Construction validates the cast once (bounds, 4-byte alignment,
/// little-endian target); [`FloatBlock::as_slice`] then serves the
/// floats zero-copy for the block's lifetime.
pub struct FloatBlock {
    backing: Backing,
    off: usize,
    count: usize,
}

impl FloatBlock {
    fn valid(bytes: &[u8], off: usize, count: usize) -> bool {
        let Some(len) = count.checked_mul(4) else { return false };
        let Some(end) = off.checked_add(len) else { return false };
        end <= bytes.len() && cast_f32s(&bytes[off..end]).is_some()
    }

    /// Wraps a mapping; gives the mapping back if the f32 region is
    /// out of bounds or not castable (caller falls back to copying).
    pub fn from_mmap(map: Mmap, off: usize, count: usize) -> Result<FloatBlock, Mmap> {
        if !FloatBlock::valid(&map, off, count) {
            return Err(map);
        }
        Ok(FloatBlock { backing: Backing::Map(map), off, count })
    }

    /// Wraps an owned buffer; gives the buffer back when not castable
    /// (heap allocations are only 1-byte aligned in general, so this
    /// legitimately fails and the caller copies instead).
    pub fn from_bytes(bytes: Vec<u8>, off: usize, count: usize) -> Result<FloatBlock, Vec<u8>> {
        if !FloatBlock::valid(&bytes, off, count) {
            return Err(bytes);
        }
        Ok(FloatBlock { backing: Backing::Bytes(bytes), off, count })
    }

    /// The floats, served without copying.
    pub fn as_slice(&self) -> &[f32] {
        let bytes = match &self.backing {
            Backing::Map(m) => &m[self.off..self.off + self.count * 4],
            Backing::Bytes(b) => &b[self.off..self.off + self.count * 4],
        };
        // The constructor validated this exact cast; alignment of an
        // existing allocation never changes.
        cast_f32s(bytes).expect("FloatBlock invariant: region validated at construction")
    }

    /// Number of f32s in the block.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block holds no floats.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the block is served from a file mapping (`true`) or an
    /// owned buffer (`false`).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Map(_))
    }
}

impl fmt::Debug for FloatBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FloatBlock")
            .field("mapped", &self.is_mapped())
            .field("off", &self.off)
            .field("count", &self.count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mm-shim-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(8192 + 3).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &payload[..], "mapped bytes equal file bytes");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_are_rejected() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let err = map_file(&std::fs::File::open(&path).unwrap()).unwrap_err();
        assert!(matches!(err, MapError::Empty));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cast_checks_alignment_and_length() {
        // A Vec<f32>'s bytes are always 4-aligned.
        let floats = vec![1.0f32, -2.5, 3.25];
        let bytes: Vec<u8> = floats.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        // Force a 4-aligned view by building from a f32 allocation.
        let aligned: Vec<f32> = floats.clone();
        let aligned_bytes =
            // SAFETY: test-only reborrow of an f32 slice as bytes —
            // alignment 4 → 1 is always sound.
            unsafe { std::slice::from_raw_parts(aligned.as_ptr() as *const u8, aligned.len() * 4) };
        assert_eq!(cast_f32s(aligned_bytes).unwrap(), &floats[..]);
        // Odd length never casts.
        assert!(cast_f32s(&bytes[..7]).is_none());
        // A deliberately misaligned view never casts.
        if (aligned_bytes.as_ptr() as usize).is_multiple_of(4) {
            assert!(cast_f32s(&aligned_bytes[1..5]).is_none());
        }
    }

    #[test]
    fn float_block_from_bytes_round_trips() {
        let floats = [0.5f32, 1.5, -2.0, 4.0];
        // Build a buffer whose f32 region starts at offset 8 — from a
        // Vec<u64> so the start (and thus offset 8) is 4-aligned.
        let mut backing = vec![0u64; 1 + floats.len().div_ceil(2)];
        let bytes = {
            let raw: &mut [u8] =
                // SAFETY: test-only reborrow of a u64 allocation as
                // bytes — alignment 8 → 1 is always sound.
                unsafe {
                    std::slice::from_raw_parts_mut(
                        backing.as_mut_ptr() as *mut u8,
                        backing.len() * 8,
                    )
                };
            for (i, v) in floats.iter().enumerate() {
                raw[8 + i * 4..8 + i * 4 + 4].copy_from_slice(&v.to_bits().to_le_bytes());
            }
            raw[..8 + floats.len() * 4].to_vec()
        };
        match FloatBlock::from_bytes(bytes.clone(), 8, floats.len()) {
            Ok(block) => {
                assert_eq!(block.as_slice(), &floats[..]);
                assert!(!block.is_mapped());
                assert_eq!(block.len(), floats.len());
            }
            // A 1-aligned heap buffer is a legitimate outcome; the
            // caller copies in that case.
            Err(returned) => assert_eq!(returned, bytes),
        }
        // Out-of-bounds regions always fail closed.
        assert!(FloatBlock::from_bytes(bytes.clone(), 8, floats.len() + 8).is_err());
        assert!(FloatBlock::from_bytes(bytes, usize::MAX, 1).is_err());
    }

    #[test]
    fn float_block_from_mmap_serves_zero_copy() {
        let path = temp_path("block");
        let floats: Vec<f32> = (0..1024).map(|i| i as f32 * 0.25).collect();
        let mut payload = vec![0u8; 16]; // 16-byte header keeps offset 4-aligned
        for v in &floats {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        // mmap returns page-aligned memory, so offset 16 is 4-aligned.
        let block = FloatBlock::from_mmap(map, 16, floats.len()).expect("page-aligned mapping");
        assert!(block.is_mapped());
        assert_eq!(block.as_slice(), &floats[..]);
        drop(block);
        std::fs::remove_file(&path).unwrap();
    }
}
