//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes through serde yet — the derives on
//! config types (`Metric`, `FamilyKind`, `SynthSpec`, …) only declare
//! intent, and the actual persistence layers (`csa::serialize`,
//! `lccs_lsh::persist`) use explicit little-endian codecs. This shim keeps
//! those derives compiling without network access by providing marker
//! traits and no-op derive macros. Swapping in real serde later requires no
//! source changes in the member crates.

#![forbid(unsafe_code)]

/// Marker for serializable types (shim; no methods).
pub trait Serialize {}

/// Marker for deserializable types (shim; no methods).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
