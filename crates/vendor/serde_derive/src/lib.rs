//! No-op `Serialize` / `Deserialize` derives for the serde shim.
//!
//! The workspace's serde traits are pure markers (see the sibling `serde`
//! shim crate), so the derives emit marker impls and nothing else. They
//! parse just enough of the item — the type name after `struct`/`enum` —
//! to name the impl; generic types fall back to emitting nothing, which is
//! still sound because no code in this workspace requires the bounds.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct`/`enum` keyword and
/// reports whether the type has a generic parameter list.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ref id) = tok {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}
