//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand`: a deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen` / `gen_range`, and
//! [`seq::index::sample`] for sampling without replacement. Every consumer
//! in this repo only needs reproducible, well-mixed streams — not
//! cryptographic quality — and the generator here is the same one the
//! reference FALCONN/ann-benchmarks harnesses use for seeding.
//!
//! If the real `rand` ever becomes available, deleting this crate and
//! pointing the workspace manifests at crates.io restores the upstream
//! implementation without source changes.

#![forbid(unsafe_code)]

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types producible uniformly from raw bits (shim for `Standard`).
pub trait Standard {
    /// Draws one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t as Standard>::from_rng(rng);
                }
                (lo..hi + 1).sample_one(rng)
            }
        }
    )*};
}
int_range!(u64, u32, u16, u8, usize, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience extension over [`RngCore`] (shim for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// True with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator, "invalid ratio");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence sampling helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{RngCore, SampleRange};

        /// Sampled index list (shim for `rand::seq::index::IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices in draw order.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly
        /// (partial Fisher–Yates shuffle).
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = (i..length).sample_one(rng);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = seq::index::sample(&mut rng, 50, 20);
        let mut v = idx.into_vec();
        assert_eq!(v.len(), 20);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 20, "indices must be distinct");
        assert!(v.iter().all(|&i| i < 50));
    }

    #[test]
    fn full_u64_range_mixes_high_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut high = 0;
        for _ in 0..64 {
            if rng.gen::<u64>() > u64::MAX / 2 {
                high += 1;
            }
        }
        assert!((16..=48).contains(&high), "top bit should be ~balanced, got {high}");
    }
}
