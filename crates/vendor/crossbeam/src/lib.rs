//! Offline stand-in for `crossbeam`'s scoped threads, implemented over
//! `std::thread::scope` (stable since 1.63, which postdates crossbeam's
//! API). Only [`scope`] is provided — the one entry point this workspace
//! uses. Behavioral difference: a panicking child panics the scope
//! immediately instead of surfacing through the returned `Result`, so the
//! `Err` arm is never taken; callers' `.expect(...)` remains correct.

#![forbid(unsafe_code)]

use std::any::Any;

/// Scope handle passed to the [`scope`] closure (shim for
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. Crossbeam hands the closure a nested scope
    /// handle for recursive spawning; no caller here uses it, so the shim
    /// passes `()`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_mutate_borrowed_chunks() {
        let mut data = vec![0u32; 64];
        super::scope(|scope| {
            for (t, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x = t as u32 + 1;
                    }
                });
            }
        })
        .expect("no panics");
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, (i / 16) as u32 + 1);
        }
    }
}
