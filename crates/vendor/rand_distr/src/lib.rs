//! Offline stand-in for the `rand_distr` crate: the [`Distribution`] trait
//! and [`StandardNormal`] (Box–Muller), which is all this workspace draws
//! from it. See the `rand` shim for why this exists.

#![forbid(unsafe_code)]

use rand::{RngCore, Standard};

/// A sampleable distribution over `T` (shim for `rand_distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: shift the [0, 1) draw away from zero so ln is finite.
    let u1 = 1.0 - f64::from_rng(rng);
    let u2 = f64::from_rng(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
        assert!(draws.iter().all(|x| x.is_finite()));
    }
}
