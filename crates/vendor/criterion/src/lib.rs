//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple calibrated-timing loop:
//! warm up, size the iteration count to a target sample duration, take
//! `sample_size` samples, report the median ns/iter (and throughput when
//! declared). No statistics beyond the median, no HTML reports.
//!
//! Passing `--test` (what `cargo test` does for benchmark targets) or
//! `--quick` runs every benchmark once, for smoke coverage.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// Benchmark identifier built from a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared per-iteration work, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Self { quick }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { c: self, name, sample_size: 10, throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&name.to_string(), self.quick, 10, None, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.c.quick, self.sample_size, self.throughput, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.c.quick, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    label: &str,
    quick: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b); // warm-up (and the only run in quick mode)
    if quick {
        eprintln!("  {label}: ok (quick mode, 1 iter)");
        return;
    }
    // Calibrate the per-sample iteration count toward TARGET_SAMPLE.
    let per_iter = (b.elapsed.as_nanos().max(1) as f64) / b.iters as f64;
    let iters = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter).ceil() as u64).clamp(1, 1_000_000);
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let spread = (samples[samples.len() - 1] - samples[0]) / median * 100.0;
    let human = if median < 1_000.0 {
        format!("{median:.1} ns")
    } else if median < 1_000_000.0 {
        format!("{:.2} µs", median / 1_000.0)
    } else {
        format!("{:.3} ms", median / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (median / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / (median / 1e9) / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    eprintln!("  {label}: {human}/iter  [{sample_size} samples, spread {spread:.0}%]{rate}");
}

/// Declares a named set of benchmark functions (shim for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary entry point (shim for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
