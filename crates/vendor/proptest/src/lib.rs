//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], [`any`], [`collection::vec`], the [`proptest!`]
//! macro (with `#![proptest_config]` and multiple `pat in strategy`
//! bindings), and the `prop_assert*` / `prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed; there is **no shrinking**
//! — a failure reports the raw failing case via the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use rand::SeedableRng as __SeedableRng;

/// Runner configuration (shim for `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy (shim for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u64, u32, u16, u8, usize, i64, i32, f32, f64);

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_incl_strategy!(u64, u32, u16, u8, usize, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));

/// Types with a canonical full-range strategy (shim for `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u64, i64, u32, i32, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy over the full value range of `T` (shim for `proptest::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive-exclusive element-count range for [`fn@vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy producing `Vec`s of `elem` values with a length drawn from
    /// `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Deterministic per-test RNG; the seed folds in the test name so sibling
/// tests explore different streams.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Property-test declaration macro (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($pat,)+) =
                    ($( $crate::Strategy::generate(&($strat), &mut __rng) ,)+);
                $body
            }
        }
        $crate::__proptest_each!{ @cfg($cfg) $($rest)* }
    };
}

/// Assertion inside a property body (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
