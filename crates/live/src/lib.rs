//! LSM-style segmented mutable ANN index.
//!
//! Every index in this reproduction of LCCS-LSH is build-once: the
//! CSA-backed structures freeze at construction. [`LiveIndex`] layers a
//! write path around that constraint the way LSM trees layer writes over
//! immutable sorted runs (and the way the HTAP designs in PAPERS.md split
//! an update-optimized write store from an analytics-optimized read
//! store):
//!
//! * a **memtable** — an append-only exact-scan buffer the writes land
//!   in, with per-row liveness tracked through the id map;
//! * N sealed **immutable segments**, each a normal spec-built index
//!   (any `eval::registry` scheme — LCCS, MP-LCCS, E2LSH, `linear`, …)
//!   over its own slice of vectors;
//! * a **seal policy**: once the memtable holds
//!   [`LiveConfig::seal_threshold`] rows it is frozen and rebuilt through
//!   the registry into one more segment;
//! * a **compaction policy**: once more than
//!   [`LiveConfig::max_segments`] segments exist, the physically smallest
//!   ones are merged (rebuilt from their concatenated live vectors,
//!   dropping tombstoned rows).
//!
//! Seal and compaction *decisions* are made synchronously at the insert
//! that crosses the threshold — the memtable is frozen and the full
//! compaction cascade is planned with its input rows materialized right
//! there — but the expensive registry *builds* can be deferred: the
//! plans queue as pending ops ([`LiveIndex::insert_deferred`]), a
//! background worker clones each build's inputs ([`LiveIndex::pending_build`]),
//! builds with no lock held, and swaps the result in under a short
//! critical section ([`LiveIndex::install_built`]). Queries keep
//! answering throughout: frozen-but-not-yet-built buffers are scanned
//! exactly like the memtable. Because every decision (segment
//! membership, merge selection by physical row count, merge inputs) is
//! fixed at the crossing, the resulting segment layout is a pure
//! function of the insert/delete sequence — replaying a write-ahead log
//! ([`wal`]) over a restored snapshot converges to the same layout the
//! live process had, which is what makes restart answers reproducible
//! (see `docs/durability.md`).
//!
//! Queries fan out across the memtable and every segment through
//! [`ann::executor`], merge the per-unit top-k by `(distance, id)` and
//! filter rows that are no longer live. With an exact segment scheme
//! (`linear`) the answer is byte-identical to an exact oracle over the
//! current live rows — the property the crate's proptests pin; with an
//! approximate scheme it is recall-equivalent to a from-scratch build of
//! the same spec over the same rows.
//!
//! External ids are stable `u32` handles: the id a row gets at insert is
//! the id every query reports for it, across seals and compactions,
//! until the row is deleted. Internally a per-index id → (segment, slot)
//! map tracks where the one live copy of each id currently lives; stale
//! copies left behind in sealed segments by DELETE are filtered at query
//! time and physically dropped at the next compaction touching their
//! segment.
//!
//! Concurrency: [`LiveIndex`] itself is single-writer (`&mut self`
//! mutation, `&self` query) — the serving layer wraps live catalog
//! entries in an `RwLock` so readers share and writers exclude, while
//! static entries keep their lock-free path.
//!
//! Where this crate sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wal;

use ann::executor;
use ann::{
    AnnIndex, IdFilter, IndexSpec, MutableAnn, MutateError, ResponseFields, Scratch, SearchParams,
    SearchRequest, SearchResponse, SearchStats,
};
use dataset::exact::Neighbor;
use dataset::sq8::{Sq8, Sq8Pruner};
use dataset::{Dataset, Metric};
use eval::registry::{self, BuildCtx};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Method name [`LiveIndex`] reports through [`AnnIndex::name`] (and the
/// serving layer stores in snapshot containers and LIST responses).
pub const LIVE_METHOD: &str = "Live";

/// Memtable rows below which SQ8 codes are not worth training: the
/// exact scan over a few hundred rows is already cheap, and training
/// on a tiny sample would produce poor per-dimension ranges for the
/// rows appended after it.
const MEM_SQ8_MIN_ROWS: usize = 256;

/// Seal/compaction policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Memtable rows (live + tombstoned) that trigger an automatic seal.
    pub seal_threshold: usize,
    /// Segment count above which the smallest segments are merged.
    pub max_segments: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig { seal_threshold: 256, max_segments: 8 }
    }
}

impl LiveConfig {
    fn validated(self) -> Result<LiveConfig, MutateError> {
        if self.seal_threshold == 0 || self.max_segments == 0 {
            return Err(MutateError::State(format!(
                "seal_threshold ({}) and max_segments ({}) must be at least 1",
                self.seal_threshold, self.max_segments
            )));
        }
        Ok(self)
    }
}

/// Where the live copy of an external id currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Memtable slot.
    Mem(u32),
    /// Slot inside a frozen memtable buffer whose segment build is still
    /// pending. `seg` is the segment id the build was assigned at freeze
    /// time; `slot` is the *raw* buffer slot (the built segment compacts
    /// away slots that were already dead at the freeze).
    Frozen {
        /// Reserved segment id of the pending build.
        seg: u32,
        /// Raw slot in the frozen buffer.
        slot: u32,
    },
    /// Slot inside the segment with this stable segment id.
    Seg {
        /// Stable segment id (not the position in the segment vector —
        /// compactions remove segments without renumbering survivors).
        seg: u32,
        /// Row slot inside that segment.
        slot: u32,
    },
}

/// One sealed, immutable segment: its vectors, the external id of every
/// slot, and the spec-built index answering over it.
struct Segment {
    seg_id: u32,
    data: Arc<Dataset>,
    /// `ids[slot]` is the external id of the row at `slot`.
    ids: Vec<u32>,
    /// Rows whose external id no longer maps here (DELETE tombstones and
    /// copies superseded by re-insert). Queries over-fetch by this count
    /// so filtering stale hits cannot starve the merged top-k.
    dead: usize,
    index: Box<dyn AnnIndex>,
}

impl Segment {
    fn live_rows(&self) -> usize {
        self.ids.len() - self.dead
    }
}

/// A memtable frozen at a threshold crossing, waiting for its segment
/// build. The whole buffer is kept (including slots already dead at the
/// freeze) so a failed synchronous build can restore the memtable
/// exactly; queries scan it like the memtable until the build installs.
struct FrozenMem {
    /// Monotone op token: [`LiveIndex::install_built`] matches it
    /// against the front of the queue to reject stale builds.
    token: u64,
    /// Segment id reserved at freeze time.
    seg_id: u32,
    /// The full memtable row buffer at the freeze.
    rows: Vec<f32>,
    /// External id per raw slot.
    ids: Vec<u32>,
    /// Liveness *at the freeze* — the fixed membership of the future
    /// segment (its slots are this vector's `true` entries, compacted).
    built_live: Vec<bool>,
    /// Current liveness: deletes arriving while the build is pending
    /// flip entries here (always a subset of `built_live`).
    live: Vec<bool>,
    /// Count of `!live` slots.
    dead: usize,
    /// SQ8 codes inherited from the memtable, if they were trained.
    sq8: Option<Sq8>,
}

/// A compaction merge planned at a threshold crossing: its input rows
/// were materialized (live rows only) right at the crossing, so the
/// merged segment's contents do not depend on when the build runs.
struct PlannedMerge {
    token: u64,
    /// Segment id reserved for the merged segment (unused when `ids` is
    /// empty — a merge of two fully-tombstoned segments just drops them).
    seg_id: u32,
    /// The two segment ids this merge replaces.
    drop_a: u32,
    drop_b: u32,
    /// Live-at-plan rows of both inputs, `drop_a`'s first.
    flat: Vec<f32>,
    /// External id per planned slot.
    ids: Vec<u32>,
    /// Transitive *root* segment ids (real segments or frozen buffers)
    /// the rows came from. A planned row is still live exactly while the
    /// id map points at one of these roots — the check a later crossing
    /// uses to materialize this not-yet-built segment into a further
    /// merge.
    sources: Vec<u32>,
}

enum PendingOp {
    Seal(FrozenMem),
    Merge(PlannedMerge),
}

impl PendingOp {
    fn token(&self) -> u64 {
        match self {
            PendingOp::Seal(f) => f.token,
            PendingOp::Merge(m) => m.token,
        }
    }
}

enum BuildKind {
    Seal { seg_id: u32 },
    Merge { seg_id: u32 },
}

/// The cloned inputs of the front pending op: everything a worker needs
/// to run the registry build with **no reference to the index** (and so
/// no lock held). Obtain with [`LiveIndex::pending_build`], build off to
/// the side, hand the result back to [`LiveIndex::install_built`].
pub struct PendingBuild {
    token: u64,
    kind: BuildKind,
    spec: IndexSpec,
    metric: Metric,
    dim: usize,
    flat: Vec<f32>,
    ids: Vec<u32>,
}

impl PendingBuild {
    /// Runs the registry build. Deterministic from the cloned inputs;
    /// the index is untouched until the result is installed.
    pub fn build(self) -> Result<BuiltUnit, MutateError> {
        let segment = if self.ids.is_empty() {
            // A merge of fully-tombstoned inputs: nothing to build, the
            // install just drops them.
            None
        } else {
            let kind = match self.kind {
                BuildKind::Seal { .. } => "seal",
                BuildKind::Merge { .. } => "merge",
            };
            let seg_id = match self.kind {
                BuildKind::Seal { seg_id } => seg_id,
                BuildKind::Merge { seg_id, .. } => seg_id,
            };
            let t0 = Instant::now();
            let seg =
                build_segment_parts(&self.spec, self.metric, self.dim, self.flat, self.ids, seg_id)?;
            obs::global()
                .histogram(
                    "ann_live_build_micros",
                    &[("kind", kind)],
                    "seal/compaction segment build duration, in microseconds",
                )
                .observe(t0.elapsed().as_micros() as u64);
            Some(seg)
        };
        Ok(BuiltUnit { token: self.token, kind: self.kind, segment })
    }
}

/// A finished off-thread build, ready for [`LiveIndex::install_built`].
pub struct BuiltUnit {
    token: u64,
    kind: BuildKind,
    segment: Option<Segment>,
}

/// Builds a registry index over `(flat, ids)` — the free-function core
/// of segment construction, shared by the in-place and deferred paths.
fn build_segment_parts(
    spec: &IndexSpec,
    metric: Metric,
    dim: usize,
    flat: Vec<f32>,
    ids: Vec<u32>,
    seg_id: u32,
) -> Result<Segment, MutateError> {
    let data = Arc::new(Dataset::from_flat("live-seg", dim, flat));
    let index = registry::build_index(spec, &BuildCtx { data: &data, metric })
        .map_err(|e| MutateError::Build(e.to_string()))?;
    Ok(Segment { seg_id, data, ids, dead: 0, index })
}

/// The serializable state of a [`LiveIndex`]: everything needed to
/// reassemble an identically-answering index after a restart.
///
/// Segment *indexes* are deliberately absent — every segment build is
/// bit-reproducible from `(spec, rows, metric)` (the spec carries the
/// RNG seed), so [`LiveIndex::from_state`] rebuilds them through the
/// registry instead of shipping payload bytes. Dead rows are kept: a
/// sealed segment's approximate answers depend on every row it was built
/// over, so dropping tombstoned rows at save time would change answers
/// across a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveState {
    /// Spec every sealed segment is built with.
    pub spec: IndexSpec,
    /// Verification metric.
    pub metric: Metric,
    /// Row dimensionality.
    pub dim: usize,
    /// Seal/compaction policy.
    pub config: LiveConfig,
    /// Next auto-assigned external id.
    pub next_id: u32,
    /// Sealed segments, oldest first.
    pub segments: Vec<UnitState>,
    /// The memtable. When the index had pending (frozen but not yet
    /// built) buffers at save time they are folded in here — both are
    /// exact-scanned, so answers are unchanged, and the next threshold
    /// crossings after a restore re-seal them.
    pub memtable: UnitState,
    /// Write-ahead-log generation this state was saved under. A WAL
    /// whose header carries a different generation predates (or
    /// postdates) this snapshot and must not be replayed over it — the
    /// guard that makes a crash *between* the snapshot rename and the
    /// WAL truncation safe. See `docs/durability.md`.
    pub wal_gen: u64,
}

/// One unit (segment or memtable) of a [`LiveState`]: its rows, the
/// external id of every slot, and which slots are tombstoned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitState {
    /// Row-major `ids.len() × dim` vectors.
    pub rows: Vec<f32>,
    /// External id per slot.
    pub ids: Vec<u32>,
    /// Slots whose row is no longer live (deleted, or superseded by a
    /// re-insert of the same id elsewhere).
    pub dead: Vec<u32>,
}

impl LiveState {
    /// Total physical rows across segments and memtable (live + dead).
    pub fn total_rows(&self) -> usize {
        self.segments.iter().map(|u| u.ids.len()).sum::<usize>() + self.memtable.ids.len()
    }

    /// Live rows (inserted and not deleted).
    pub fn live_rows(&self) -> usize {
        let dead: usize =
            self.segments.iter().map(|u| u.dead.len()).sum::<usize>() + self.memtable.dead.len();
        self.total_rows() - dead
    }
}

/// The segmented mutable index. See the crate docs for the design.
pub struct LiveIndex {
    spec: IndexSpec,
    metric: Metric,
    dim: usize,
    config: LiveConfig,
    next_id: u32,
    next_seg_id: u32,
    segments: Vec<Segment>,
    /// Flat row-major memtable rows (append-only until seal).
    mem_rows: Vec<f32>,
    /// External id per memtable slot.
    mem_ids: Vec<u32>,
    /// Per-slot liveness, kept in lockstep with `mem_ids`: `true` iff
    /// the id map points exactly at this slot. A dense mirror of the
    /// map so the memtable scan's per-row liveness check is an indexed
    /// load instead of a hash lookup — at memtable scale the lookup
    /// costs as much as the distance computation it guards.
    mem_live: Vec<bool>,
    /// Tombstoned memtable slots (counted; liveness itself is the map).
    mem_dead: usize,
    /// SQ8 code rows mirroring `mem_rows`, trained once the memtable
    /// grows past [`MEM_SQ8_MIN_ROWS`] and appended to on every insert.
    /// The scan consults its certified skip bound to avoid full-width
    /// distances; the bound is sound, so answers never change. Reset at
    /// seal (the memtable empties; sealed segments get their own codes
    /// through the registry build).
    mem_sq8: Option<Sq8>,
    /// Operator toggle for the memtable skip bound (`true` by default;
    /// the bench harness flips it to measure the f32-only baseline).
    sq8_enabled: bool,
    /// External id → current live location. The single source of truth
    /// for liveness: a row copy is live iff the map points exactly at it.
    id_map: HashMap<u32, Loc>,
    /// FIFO queue of planned-but-not-built work: frozen memtables and
    /// compaction merges, in the exact order a synchronous replay of the
    /// op sequence would perform them.
    pending: VecDeque<PendingOp>,
    /// Projection of the segment set *after* every pending op installs:
    /// `(seg_id, physical_rows)` in the position order a synchronous
    /// execution would leave. Compaction planning selects against this
    /// view, so a crossing decides the same merges whether earlier
    /// builds already installed or not.
    sim: Vec<(u32, usize)>,
    /// Monotone counter stamping pending ops (stale-build rejection).
    op_seq: u64,
    /// Generation of the write-ahead log this index is paired with (see
    /// [`LiveState::wal_gen`]). Plumbed, not interpreted, by the index.
    wal_gen: u64,
}

impl LiveIndex {
    /// An empty live index for `dim`-dimensional rows whose sealed
    /// segments are built from `spec` under `metric`.
    ///
    /// The spec is *not* validated against the registry here — the first
    /// seal does that; [`LiveIndex::build_from`] is the constructor that
    /// proves a spec builds before anything is served.
    pub fn new(
        spec: IndexSpec,
        metric: Metric,
        dim: usize,
        config: LiveConfig,
    ) -> Result<LiveIndex, MutateError> {
        if dim == 0 {
            return Err(MutateError::State("dimension must be positive".into()));
        }
        Ok(LiveIndex {
            spec,
            metric,
            dim,
            config: config.validated()?,
            next_id: 0,
            next_seg_id: 0,
            segments: Vec::new(),
            mem_rows: Vec::new(),
            mem_ids: Vec::new(),
            mem_live: Vec::new(),
            mem_dead: 0,
            mem_sq8: None,
            sq8_enabled: true,
            id_map: HashMap::new(),
            pending: VecDeque::new(),
            sim: Vec::new(),
            op_seq: 0,
            wal_gen: 0,
        })
    }

    /// Builds a live index over an initial dataset: bulk-inserts every
    /// row (auto-assigning ids `0..n`) and seals them into the first
    /// segment, so a bad spec fails here instead of at the first
    /// threshold-triggered seal mid-serving.
    pub fn build_from(
        spec: IndexSpec,
        metric: Metric,
        data: &Dataset,
        config: LiveConfig,
    ) -> Result<LiveIndex, MutateError> {
        let mut live = LiveIndex::new(spec, metric, data.dim(), config)?;
        live.insert_rows(data, None)?;
        live.seal()?;
        Ok(live)
    }

    /// Like [`LiveIndex::build_from`], but row `i` gets the explicit
    /// external id `ids[i]` instead of the dense `0..n` assignment. A
    /// sharded cluster uses this to give shard *s* of *m* the strided
    /// ids `s, s+m, s+2m, …`, so shard-local results carry global ids
    /// and a router can merge per-shard top-k lists by `(distance, id)`
    /// exactly as a single node merges segments. The usual id rules
    /// apply (no duplicates, no `u32::MAX`); auto-assignment for later
    /// inserts continues above the largest id given here.
    pub fn build_from_ids(
        spec: IndexSpec,
        metric: Metric,
        data: &Dataset,
        config: LiveConfig,
        ids: &[u32],
    ) -> Result<LiveIndex, MutateError> {
        let mut live = LiveIndex::new(spec, metric, data.dim(), config)?;
        live.insert_rows(data, Some(ids))?;
        live.seal()?;
        Ok(live)
    }

    /// The spec sealed segments are built from.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The verification metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The seal/compaction policy.
    pub fn config(&self) -> LiveConfig {
        self.config
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Physical memtable rows (live + tombstoned).
    pub fn memtable_rows(&self) -> usize {
        self.mem_ids.len()
    }

    /// `(physical_rows, live_rows)` per sealed segment, oldest first —
    /// the layout `ann-cli describe` and FLUSH report.
    pub fn segment_layout(&self) -> Vec<(usize, usize)> {
        self.segments.iter().map(|s| (s.ids.len(), s.live_rows())).collect()
    }

    /// A copy of the live row stored under `id`, if any.
    pub fn vector(&self, id: u32) -> Option<Vec<f32>> {
        match *self.id_map.get(&id)? {
            Loc::Mem(slot) => Some(self.mem_row(slot as usize).to_vec()),
            Loc::Frozen { seg, slot } => {
                let f = self.frozen_buf(seg)?;
                let slot = slot as usize;
                Some(f.rows[slot * self.dim..(slot + 1) * self.dim].to_vec())
            }
            Loc::Seg { seg, slot } => {
                let s = self.segments.iter().find(|s| s.seg_id == seg)?;
                Some(s.data.get(slot as usize).to_vec())
            }
        }
    }

    fn frozen_buf(&self, seg_id: u32) -> Option<&FrozenMem> {
        self.pending.iter().find_map(|op| match op {
            PendingOp::Seal(f) if f.seg_id == seg_id => Some(f),
            _ => None,
        })
    }

    /// Planned-but-not-built ops (pending seals + merges) queued for the
    /// background worker (or the next synchronous [`MutableAnn::seal`]).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Whether any build work is queued.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Rows sitting in frozen (pending-seal) buffers, live + tombstoned.
    pub fn frozen_rows(&self) -> usize {
        self.pending
            .iter()
            .map(|op| match op {
                PendingOp::Seal(f) => f.ids.len(),
                PendingOp::Merge(_) => 0,
            })
            .sum()
    }

    /// The write-ahead-log generation this index was restored under (or
    /// last flushed at). See [`LiveState::wal_gen`].
    pub fn wal_gen(&self) -> u64 {
        self.wal_gen
    }

    /// Records the WAL generation after a flush bumps it.
    pub fn set_wal_gen(&mut self, gen: u64) {
        self.wal_gen = gen;
    }

    fn mem_row(&self, slot: usize) -> &[f32] {
        &self.mem_rows[slot * self.dim..(slot + 1) * self.dim]
    }

    /// Trains the memtable SQ8 table once the buffer is large enough
    /// for the skip bound to pay for itself (idempotent; appends keep
    /// it in sync afterwards).
    fn train_mem_sq8_if_due(&mut self) {
        if self.mem_sq8.is_none() && self.mem_ids.len() >= MEM_SQ8_MIN_ROWS {
            self.mem_sq8 = Some(Sq8::train(&self.mem_rows, self.dim));
        }
    }

    /// Enables or disables the memtable SQ8 skip bound. Answers are
    /// bit-identical either way (the bound is sound); the toggle exists
    /// so benchmarks can measure the f32-only baseline.
    pub fn set_sq8_enabled(&mut self, on: bool) {
        self.sq8_enabled = on;
    }

    /// Whether the memtable scan is currently consulting a trained SQ8
    /// code table (surfaced per index through STATS/`ann-cli describe`).
    pub fn sq8_active(&self) -> bool {
        self.sq8_enabled && self.mem_sq8.as_ref().is_some_and(|sq| sq.rows() == self.mem_ids.len())
    }

    /// The skip-bound pruner for a memtable scan, when active for `q`.
    fn mem_pruner(&self, q: &[f32]) -> Option<Sq8Pruner<'_>> {
        if !self.sq8_active() {
            return None;
        }
        self.mem_sq8.as_ref().and_then(|sq| sq.pruner(q, self.metric))
    }

    fn insert_rows(&mut self, rows: &Dataset, ids: Option<&[u32]>) -> Result<Vec<u32>, MutateError> {
        self.insert_rows_inner(rows, ids, false)
    }

    /// Like [`MutableAnn::insert`], except a threshold crossing only
    /// *plans* the seal (and any compaction cascade it triggers) instead
    /// of building inline: the memtable freezes into a pending buffer
    /// that queries keep scanning exactly, and the registry builds are
    /// left for a worker driving [`LiveIndex::pending_build`] /
    /// [`LiveIndex::install_built`] (or for the next synchronous
    /// [`MutableAnn::seal`]). Because all layout decisions are made here
    /// at the crossing, the eventual segment layout is identical to the
    /// one plain [`MutableAnn::insert`] produces for the same op
    /// sequence — the property WAL replay relies on.
    ///
    /// Returns the assigned ids and whether build work is now pending.
    pub fn insert_deferred(
        &mut self,
        rows: &Dataset,
        ids: Option<&[u32]>,
    ) -> Result<(Vec<u32>, bool), MutateError> {
        let assigned = self.insert_rows_inner(rows, ids, true)?;
        Ok((assigned, self.has_pending()))
    }

    fn insert_rows_inner(
        &mut self,
        rows: &Dataset,
        ids: Option<&[u32]>,
        defer: bool,
    ) -> Result<Vec<u32>, MutateError> {
        if rows.dim() != self.dim {
            return Err(MutateError::DimMismatch { expected: self.dim, got: rows.dim() });
        }
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let assigned: Vec<u32> = match ids {
            Some(ids) => {
                if ids.len() != rows.len() {
                    return Err(MutateError::BadIds(format!(
                        "{} ids for {} rows",
                        ids.len(),
                        rows.len()
                    )));
                }
                let mut seen = std::collections::HashSet::with_capacity(ids.len());
                for &id in ids {
                    // u32::MAX is reserved so the auto counter can always
                    // sit one past every assigned id without wrapping into
                    // a live one.
                    if id == u32::MAX {
                        return Err(MutateError::BadIds(format!("id {id} is reserved")));
                    }
                    if !seen.insert(id) {
                        return Err(MutateError::BadIds(format!("id {id} appears twice")));
                    }
                    if self.id_map.contains_key(&id) {
                        return Err(MutateError::IdInUse(id));
                    }
                }
                ids.to_vec()
            }
            None => {
                // Auto ids stay strictly below the reserved u32::MAX.
                let n = rows.len() as u64;
                if u64::from(self.next_id) + n > u64::from(u32::MAX) {
                    return Err(MutateError::IdExhausted);
                }
                (self.next_id..).take(rows.len()).collect()
            }
        };
        // Angular-metric rows live on the unit sphere, like every angular
        // dataset in the workspace; normalize on the way in so wire
        // inserts and bulk builds agree.
        let normalized;
        let rows = if self.metric.is_angular() {
            normalized = rows.clone().normalized();
            &normalized
        } else {
            rows
        };
        // All checks passed: commit. Every assigned id is < u32::MAX, so
        // `id + 1` cannot wrap and the counter lands past all of them.
        let rollback_next_id = self.next_id;
        let rollback_rows = self.mem_ids.len();
        for (row, &id) in rows.iter().zip(&assigned) {
            let slot = self.mem_ids.len() as u32;
            self.mem_rows.extend_from_slice(row);
            self.mem_ids.push(id);
            self.mem_live.push(true);
            if let Some(sq) = &mut self.mem_sq8 {
                sq.append(row);
            }
            self.id_map.insert(id, Loc::Mem(slot));
            self.next_id = self.next_id.max(id + 1);
        }
        if self.mem_ids.len() >= self.config.seal_threshold {
            if defer {
                self.freeze_and_plan();
            } else {
                let checkpoint = (self.sim.clone(), self.next_seg_id);
                let seal_token = self.freeze_and_plan();
                if let Err(e) = self.drain_pending() {
                    // If the drain failed before our freshly frozen buffer
                    // was built (our seal op is still queued), nothing of
                    // this crossing installed: unwind the freeze and the
                    // insert so the call keeps its all-or-nothing
                    // contract. If our seal installed and a *merge* build
                    // after it failed, the rows are already live in a
                    // segment — the state is valid (just over the segment
                    // cap), so the error propagates without touching them.
                    if let Some(token) = seal_token {
                        if self.pending.iter().any(|op| op.token() == token) {
                            while self.pending.back().is_some_and(|op| op.token() >= token) {
                                let op = self.pending.pop_back().expect("just checked");
                                if let PendingOp::Seal(f) = op {
                                    self.unfreeze(f);
                                }
                            }
                            (self.sim, self.next_seg_id) = checkpoint;
                            debug_assert_eq!(self.mem_ids.len(), rollback_rows + assigned.len());
                            for &id in &assigned {
                                self.id_map.remove(&id);
                            }
                            self.mem_ids.truncate(rollback_rows);
                            self.mem_live.truncate(rollback_rows);
                            self.mem_rows.truncate(rollback_rows * self.dim);
                            if let Some(sq) = &mut self.mem_sq8 {
                                sq.truncate(rollback_rows);
                            }
                            self.next_id = rollback_next_id;
                        }
                    }
                    return Err(e);
                }
            }
        }
        self.train_mem_sq8_if_due();
        Ok(assigned)
    }

    /// Restores the memtable from a frozen buffer (the failed-build
    /// unwind; the memtable must be empty, i.e. nothing ran since the
    /// freeze being undone).
    fn unfreeze(&mut self, f: FrozenMem) {
        debug_assert!(self.mem_ids.is_empty(), "unfreeze only undoes the latest freeze");
        for (slot, &id) in f.ids.iter().enumerate() {
            if f.live[slot] {
                self.id_map.insert(id, Loc::Mem(slot as u32));
            }
        }
        self.mem_rows = f.rows;
        self.mem_ids = f.ids;
        self.mem_live = f.live;
        self.mem_dead = f.dead;
        self.mem_sq8 = f.sq8;
    }

    fn delete_ids(&mut self, ids: &[u32]) -> usize {
        let mut removed = 0;
        for id in ids {
            let Some(loc) = self.id_map.remove(id) else { continue };
            removed += 1;
            match loc {
                Loc::Mem(slot) => {
                    self.mem_live[slot as usize] = false;
                    self.mem_dead += 1;
                }
                Loc::Frozen { seg, slot } => {
                    let f = self
                        .pending
                        .iter_mut()
                        .find_map(|op| match op {
                            PendingOp::Seal(f) if f.seg_id == seg => Some(f),
                            _ => None,
                        })
                        .expect("id map points at a queued frozen buffer");
                    f.live[slot as usize] = false;
                    f.dead += 1;
                }
                Loc::Seg { seg, .. } => {
                    let s = self
                        .segments
                        .iter_mut()
                        .find(|s| s.seg_id == seg)
                        .expect("id map points at a present segment");
                    s.dead += 1;
                }
            }
        }
        removed
    }

    /// Builds a registry index over `(flat, ids)` and returns the new
    /// segment. Pure with respect to `self` (commit happens at the call
    /// site) so a builder failure leaves the index untouched.
    fn build_segment(&self, flat: Vec<f32>, ids: Vec<u32>, seg_id: u32) -> Result<Segment, MutateError> {
        build_segment_parts(&self.spec, self.metric, self.dim, flat, ids, seg_id)
    }

    /// Freezes a non-empty memtable into a pending seal and plans the
    /// compaction cascade the eventual install will trigger, all at this
    /// instant — every layout decision (segment membership, merge
    /// selection, merge inputs) is fixed here, which is what keeps the
    /// layout a pure function of the op sequence however late the
    /// builds run. Infallible (no building happens); returns the seal
    /// op's token, or `None` when there was nothing live to seal (a
    /// memtable of pure tombstones is discarded, as a synchronous seal
    /// always did).
    fn freeze_and_plan(&mut self) -> Option<u64> {
        if self.mem_ids.is_empty() {
            return None;
        }
        let live_count = self.mem_ids.len() - self.mem_dead;
        if live_count == 0 {
            // Only tombstoned rows buffered: discard them, nothing to seal.
            self.mem_rows.clear();
            self.mem_ids.clear();
            self.mem_live.clear();
            self.mem_dead = 0;
            self.mem_sq8 = None;
            return None;
        }
        let seg_id = self.next_seg_id;
        self.next_seg_id += 1;
        let token = self.op_seq;
        self.op_seq += 1;
        let live = std::mem::take(&mut self.mem_live);
        let f = FrozenMem {
            token,
            seg_id,
            rows: std::mem::take(&mut self.mem_rows),
            ids: std::mem::take(&mut self.mem_ids),
            built_live: live.clone(),
            live,
            dead: self.mem_dead,
            sq8: self.mem_sq8.take(),
        };
        self.mem_dead = 0;
        for (slot, &id) in f.ids.iter().enumerate() {
            if f.live[slot] {
                self.id_map.insert(id, Loc::Frozen { seg: seg_id, slot: slot as u32 });
            }
        }
        self.pending.push_back(PendingOp::Seal(f));
        self.sim.push((seg_id, live_count));
        self.plan_compaction_cascade();
        Some(token)
    }

    /// Plans merges against the projected segment set until it fits
    /// under [`LiveConfig::max_segments`]: repeatedly the two physically
    /// smallest (ties: older position first) are replaced by one planned
    /// segment whose input rows are materialized *now* — live rows only,
    /// so tombstones present at this crossing are physically dropped,
    /// while rows deleted between now and the install stay in the built
    /// segment as tombstones (exactly as a synchronous merge followed by
    /// those deletes would leave them).
    fn plan_compaction_cascade(&mut self) {
        while self.sim.len() > self.config.max_segments && self.sim.len() >= 2 {
            let mut order: Vec<usize> = (0..self.sim.len()).collect();
            order.sort_by_key(|&i| (self.sim[i].1, i));
            let (a, b) = (order[0].min(order[1]), order[0].max(order[1]));
            let (sa, sb) = (self.sim[a].0, self.sim[b].0);
            let mut flat = Vec::new();
            let mut ids = Vec::new();
            let mut sources = Vec::new();
            self.materialize_live(sa, &mut flat, &mut ids, &mut sources);
            self.materialize_live(sb, &mut flat, &mut ids, &mut sources);
            self.sim.remove(b);
            self.sim.remove(a);
            let token = self.op_seq;
            self.op_seq += 1;
            let seg_id = if ids.is_empty() {
                // Both inputs fully tombstoned: the install just drops
                // them; no segment id is spent.
                u32::MAX
            } else {
                let s = self.next_seg_id;
                self.next_seg_id += 1;
                self.sim.push((s, ids.len()));
                s
            };
            self.pending.push_back(PendingOp::Merge(PlannedMerge {
                token,
                seg_id,
                drop_a: sa,
                drop_b: sb,
                flat,
                ids,
                sources,
            }));
        }
    }

    /// Appends the currently-live rows of projected segment `sid` —
    /// which may be a real segment, a frozen buffer, or an earlier
    /// planned merge — to `flat`/`ids`, and its root segment ids to
    /// `sources`.
    fn materialize_live(
        &self,
        sid: u32,
        flat: &mut Vec<f32>,
        ids: &mut Vec<u32>,
        sources: &mut Vec<u32>,
    ) {
        if let Some(seg) = self.segments.iter().find(|s| s.seg_id == sid) {
            sources.push(sid);
            for (slot, &id) in seg.ids.iter().enumerate() {
                let here = Loc::Seg { seg: sid, slot: slot as u32 };
                if self.id_map.get(&id) == Some(&here) {
                    flat.extend_from_slice(seg.data.get(slot));
                    ids.push(id);
                }
            }
            return;
        }
        for op in &self.pending {
            match op {
                PendingOp::Seal(f) if f.seg_id == sid => {
                    sources.push(sid);
                    for (slot, &id) in f.ids.iter().enumerate() {
                        if f.live[slot] {
                            flat.extend_from_slice(&f.rows[slot * self.dim..(slot + 1) * self.dim]);
                            ids.push(id);
                        }
                    }
                    return;
                }
                PendingOp::Merge(m) if m.seg_id == sid => {
                    sources.extend_from_slice(&m.sources);
                    for (i, &id) in m.ids.iter().enumerate() {
                        // A planned row is live while the id map still
                        // points at one of the plan's root copies (a
                        // re-insert after a delete lands elsewhere, so a
                        // root hit is always *this* copy).
                        let live = match self.id_map.get(&id) {
                            Some(&Loc::Seg { seg, .. }) => m.sources.contains(&seg),
                            Some(&Loc::Frozen { seg, .. }) => m.sources.contains(&seg),
                            _ => false,
                        };
                        if live {
                            flat.extend_from_slice(&m.flat[i * self.dim..(i + 1) * self.dim]);
                            ids.push(id);
                        }
                    }
                    return;
                }
                _ => {}
            }
        }
        debug_assert!(false, "projected segment {sid} not found");
    }

    /// Clones the build inputs of the front pending op, for building
    /// with no reference to (and in the serving layer, no lock on) the
    /// index. `None` when nothing is pending.
    pub fn pending_build(&self) -> Option<PendingBuild> {
        let op = self.pending.front()?;
        Some(match op {
            PendingOp::Seal(f) => {
                let live_count = f.built_live.iter().filter(|&&l| l).count();
                let mut flat = Vec::with_capacity(live_count * self.dim);
                let mut ids = Vec::with_capacity(live_count);
                for (slot, &id) in f.ids.iter().enumerate() {
                    // Membership was fixed at the freeze: rows deleted
                    // since then are built anyway and counted dead at
                    // install, exactly as a synchronous seal followed by
                    // those deletes would have left them.
                    if f.built_live[slot] {
                        flat.extend_from_slice(&f.rows[slot * self.dim..(slot + 1) * self.dim]);
                        ids.push(id);
                    }
                }
                PendingBuild {
                    token: f.token,
                    kind: BuildKind::Seal { seg_id: f.seg_id },
                    spec: self.spec,
                    metric: self.metric,
                    dim: self.dim,
                    flat,
                    ids,
                }
            }
            PendingOp::Merge(m) => PendingBuild {
                token: m.token,
                kind: BuildKind::Merge { seg_id: m.seg_id },
                spec: self.spec,
                metric: self.metric,
                dim: self.dim,
                flat: m.flat.clone(),
                ids: m.ids.clone(),
            },
        })
    }

    /// Installs a finished build under the caller's short critical
    /// section: the id map is repointed (rows deleted while the build
    /// ran become segment tombstones) and the op leaves the queue.
    /// Returns `false` — leaving the index untouched — when the build is
    /// stale, i.e. its op is no longer at the front of the queue because
    /// a synchronous [`MutableAnn::seal`] (FLUSH) already absorbed it.
    pub fn install_built(&mut self, built: BuiltUnit) -> bool {
        let Some(front) = self.pending.front() else { return false };
        if front.token() != built.token {
            return false;
        }
        let op = self.pending.pop_front().expect("front exists");
        match (op, built.kind) {
            (PendingOp::Seal(f), BuildKind::Seal { seg_id }) => {
                debug_assert_eq!(f.seg_id, seg_id);
                let mut seg = built.segment.expect("a seal always has live rows to build");
                let mut built_slot = 0u32;
                for (slot, &id) in f.ids.iter().enumerate() {
                    if !f.built_live[slot] {
                        continue;
                    }
                    let here = Loc::Frozen { seg: f.seg_id, slot: slot as u32 };
                    if self.id_map.get(&id) == Some(&here) {
                        self.id_map.insert(id, Loc::Seg { seg: f.seg_id, slot: built_slot });
                    } else {
                        seg.dead += 1;
                    }
                    built_slot += 1;
                }
                self.segments.push(seg);
            }
            (PendingOp::Merge(m), BuildKind::Merge { .. }) => {
                if let Some(mut seg) = built.segment {
                    for (slot, &id) in m.ids.iter().enumerate() {
                        // FIFO installs guarantee both inputs are real
                        // segments by now: a planned row is live iff the
                        // id map still points into one of them.
                        let in_inputs = matches!(
                            self.id_map.get(&id),
                            Some(&Loc::Seg { seg: s, .. }) if s == m.drop_a || s == m.drop_b
                        );
                        if in_inputs {
                            self.id_map.insert(id, Loc::Seg { seg: m.seg_id, slot: slot as u32 });
                        } else {
                            seg.dead += 1;
                        }
                    }
                    self.remove_segment(m.drop_b);
                    self.remove_segment(m.drop_a);
                    self.segments.push(seg);
                } else {
                    self.remove_segment(m.drop_b);
                    self.remove_segment(m.drop_a);
                }
            }
            _ => unreachable!("op kind and build kind always agree on the same token"),
        }
        true
    }

    fn remove_segment(&mut self, seg_id: u32) {
        let pos = self
            .segments
            .iter()
            .position(|s| s.seg_id == seg_id)
            .expect("merge inputs are installed before the merge");
        self.segments.remove(pos);
    }

    /// Builds and installs every pending op, front to back — the
    /// synchronous path (plain inserts, [`MutableAnn::seal`], FLUSH).
    /// On a build failure the op stays at the front of the queue and the
    /// error propagates.
    fn drain_pending(&mut self) -> Result<(), MutateError> {
        while let Some(pb) = self.pending_build() {
            let built = pb.build()?;
            let installed = self.install_built(built);
            debug_assert!(installed, "the front op cannot change under &mut self");
        }
        Ok(())
    }

    /// Exact scan of the live memtable rows honoring the request's id
    /// filter and distance threshold inside the loop: top-`k` by true
    /// distance, ties by external id — the same surrogate-then-finalize
    /// flow the exact oracle ([`dataset::ExactKnn`]) and `verify_topk`
    /// use, so the exact path stays byte-identical to a from-scratch
    /// oracle (the threshold compares the *converted* distance, exactly
    /// like the oracle does, never a surrogate-space approximation).
    fn scan_memtable_request(
        &self,
        q: &[f32],
        req: &SearchRequest,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.scan_buffer_request(
            &self.mem_rows,
            &self.mem_ids,
            &self.mem_live,
            self.mem_pruner(q),
            Loc::Mem,
            q,
            req,
        )
    }

    /// Exact scan of a frozen (pending-seal) buffer: identical to the
    /// memtable scan — rows the background build has not yet sealed keep
    /// answering, with deletes honored through the buffer's live flags.
    fn scan_frozen_request(
        &self,
        f: &FrozenMem,
        q: &[f32],
        req: &SearchRequest,
    ) -> (Vec<Neighbor>, SearchStats) {
        let pruner = if self.sq8_enabled {
            f.sq8.as_ref().and_then(|sq| sq.pruner(q, self.metric))
        } else {
            None
        };
        self.scan_buffer_request(
            &f.rows,
            &f.ids,
            &f.live,
            pruner,
            |slot| Loc::Frozen { seg: f.seg_id, slot },
            q,
            req,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_buffer_request(
        &self,
        rows: &[f32],
        row_ids: &[u32],
        live: &[bool],
        mut pruner: Option<Sq8Pruner<'_>>,
        mk_loc: impl Fn(u32) -> Loc,
        q: &[f32],
        req: &SearchRequest,
    ) -> (Vec<Neighbor>, SearchStats) {
        let k = req.k;
        let mut stats = SearchStats::default();
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        debug_assert_eq!(live.len(), row_ids.len());
        for (slot, &id) in row_ids.iter().enumerate() {
            debug_assert_eq!(
                live[slot],
                self.id_map.get(&id) == Some(&mk_loc(slot as u32)),
                "buffer liveness must mirror the id map"
            );
            if !live[slot] {
                continue;
            }
            stats.candidates_scanned += 1;
            if let Some(f) = &req.filter {
                if !f.accepts(id) {
                    continue;
                }
            }
            // SQ8 skip bound (after the liveness/filter checks, before
            // the full-width distance): sound, so hits and counters are
            // unchanged — a skipped row was counted as scanned and could
            // never have pushed into the heap.
            if heap.len() == k {
                if let Some(p) = pruner.as_mut() {
                    if p.skips(slot, heap.peek().expect("non-empty").dist) {
                        stats.sq8_pruned += 1;
                        continue;
                    }
                }
            }
            let s = self
                .metric
                .surrogate_unchecked(&rows[slot * self.dim..(slot + 1) * self.dim], q);
            if let Some(d) = req.max_dist {
                if self.metric.from_surrogate(s) > d {
                    continue;
                }
            }
            let cand = Neighbor { id, dist: s };
            if heap.len() < k {
                heap.push(cand);
                stats.heap_pushes += 1;
            } else if cand < *heap.peek().expect("non-empty") {
                heap.pop();
                heap.push(cand);
                stats.heap_pushes += 1;
            }
        }
        let mut out = heap.into_sorted_vec();
        for n in &mut out {
            n.dist = self.metric.from_surrogate(n.dist);
        }
        (out, stats)
    }

    /// Queries one segment under a request, applying the external-id
    /// filter **before** the tombstone over-fetch so filters and deletes
    /// compose:
    ///
    /// * The filter is projected into segment-slot space through the id
    ///   map — only the *live* copy of an id can match, so an allowlist
    ///   projects to the exact live slots (stale copies and tombstones
    ///   are excluded up front and no over-fetch is needed at all), and a
    ///   denylist projects to the live denied slots (stale copies of any
    ///   id still need the usual `k + dead` over-fetch).
    /// * The inner spec-built index then honors the slot filter inside
    ///   its own candidate loop (LCCS schemes) or via bounded post-hoc
    ///   filtering (default implementation).
    ///
    /// Hits come back as slot ids; they are mapped to external ids with
    /// stale copies dropped, exactly as before the request redesign.
    fn scan_segment_request(
        &self,
        seg: &Segment,
        q: &[f32],
        req: &SearchRequest,
        scratch: &mut Scratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        let slot_filter = match &req.filter {
            None => None,
            Some(f) => {
                let slots: Vec<u32> = f
                    .ids()
                    .iter()
                    .filter_map(|ext| match self.id_map.get(ext) {
                        Some(&Loc::Seg { seg: sid, slot }) if sid == seg.seg_id => Some(slot),
                        _ => None,
                    })
                    .collect();
                if f.is_allow() {
                    if slots.is_empty() {
                        // No allowed id lives in this segment: skip it.
                        return (Vec::new(), SearchStats::default());
                    }
                    Some(IdFilter::allow(slots))
                } else if slots.is_empty() {
                    None
                } else {
                    Some(IdFilter::deny(slots))
                }
            }
        };
        // An allowlist pins the exact live slots, so stale hits are
        // impossible and the tombstone over-fetch would only waste work.
        let over = match &slot_filter {
            Some(f) if f.is_allow() => 0,
            _ => seg.dead,
        };
        let want = (req.k + over).min(seg.data.len());
        let inner = SearchRequest {
            k: want,
            budget: req.budget,
            probes: req.probes,
            filter: slot_filter,
            max_dist: req.max_dist,
            fields: ResponseFields::default(),
            // Planning resolves to concrete knobs before the index is
            // consulted, so segment-level requests never carry a target.
            target_recall: None,
            knobs_set: req.knobs_set,
        };
        let resp = seg.index.search_with(q, &inner, scratch);
        let hits = resp
            .hits
            .into_iter()
            .filter_map(|n| {
                let id = seg.ids[n.id as usize];
                let here = Loc::Seg { seg: seg.seg_id, slot: n.id };
                (self.id_map.get(&id) == Some(&here)).then_some(Neighbor { id, dist: n.dist })
            })
            .collect();
        (hits, resp.stats)
    }

    /// Extracts the serializable state (see [`LiveState`]). Rows are
    /// copied; the index itself is untouched.
    ///
    /// Pending work folds away: frozen buffers are serialized as
    /// memtable rows (both are exact-scanned, so answers are identical)
    /// and planned merges are dropped (their input segments serialize
    /// as-is; a restored index re-plans compaction at its next
    /// crossing). FLUSH drains pending work first, so daemon snapshots
    /// never hit this fold.
    pub fn state(&self) -> LiveState {
        let unit = |rows: Vec<f32>, ids: &[u32], is_live: &dyn Fn(usize, u32) -> bool| UnitState {
            rows,
            ids: ids.to_vec(),
            dead: ids
                .iter()
                .enumerate()
                .filter(|&(slot, &id)| !is_live(slot, id))
                .map(|(slot, _)| slot as u32)
                .collect(),
        };
        let segments = self
            .segments
            .iter()
            .map(|s| {
                unit(s.data.as_flat().to_vec(), &s.ids, &|slot, id| {
                    self.id_map.get(&id) == Some(&Loc::Seg { seg: s.seg_id, slot: slot as u32 })
                })
            })
            .collect();
        let mut mem = UnitState::default();
        for op in &self.pending {
            if let PendingOp::Seal(f) = op {
                let base = mem.ids.len() as u32;
                mem.rows.extend_from_slice(&f.rows);
                mem.ids.extend_from_slice(&f.ids);
                mem.dead.extend(
                    f.live.iter().enumerate().filter(|&(_, &l)| !l).map(|(s, _)| base + s as u32),
                );
            }
        }
        let base = mem.ids.len() as u32;
        mem.rows.extend_from_slice(&self.mem_rows);
        mem.ids.extend_from_slice(&self.mem_ids);
        mem.dead.extend(
            self.mem_live.iter().enumerate().filter(|&(_, &l)| !l).map(|(s, _)| base + s as u32),
        );
        LiveState {
            spec: self.spec,
            metric: self.metric,
            dim: self.dim,
            config: self.config,
            next_id: self.next_id,
            segments,
            memtable: mem,
            wal_gen: self.wal_gen,
        }
    }

    /// Reassembles a live index from persisted state, rebuilding every
    /// segment index through the registry. Builds are seeded and
    /// deterministic, so the reassembled index answers queries
    /// identically to the one [`LiveIndex::state`] was called on — the
    /// serve e2e test pins this across a daemon restart.
    pub fn from_state(state: LiveState) -> Result<LiveIndex, MutateError> {
        let mut live = LiveIndex::new(state.spec, state.metric, state.dim, state.config)?;
        let mut max_id: Option<u32> = None;
        let mut install =
            |map: &mut HashMap<u32, Loc>, unit: &UnitState, mk: &dyn Fn(u32) -> Loc| {
                if unit.rows.len() != unit.ids.len() * state.dim {
                    return Err(MutateError::State(format!(
                        "{} row floats for {} ids at dim {}",
                        unit.rows.len(),
                        unit.ids.len(),
                        state.dim
                    )));
                }
                let mut dead = vec![false; unit.ids.len()];
                for &slot in &unit.dead {
                    let d = dead.get_mut(slot as usize).ok_or_else(|| {
                        MutateError::State(format!(
                            "dead slot {slot} out of range ({} rows)",
                            unit.ids.len()
                        ))
                    })?;
                    *d = true;
                }
                for (slot, &id) in unit.ids.iter().enumerate() {
                    max_id = Some(max_id.map_or(id, |m| m.max(id)));
                    if dead[slot] {
                        continue;
                    }
                    if map.insert(id, mk(slot as u32)).is_some() {
                        return Err(MutateError::State(format!("id {id} is live twice")));
                    }
                }
                Ok(dead.iter().filter(|&&d| d).count())
            };
        for (pos, unit) in state.segments.iter().enumerate() {
            if unit.ids.is_empty() {
                return Err(MutateError::State(format!("segment {pos} is empty")));
            }
            let seg_id = pos as u32;
            let dead =
                install(&mut live.id_map, unit, &|slot| Loc::Seg { seg: seg_id, slot })?;
            let mut seg = live.build_segment(unit.rows.clone(), unit.ids.clone(), seg_id)?;
            seg.dead = dead;
            live.segments.push(seg);
        }
        let mem_dead = install(&mut live.id_map, &state.memtable, &Loc::Mem)?;
        live.mem_rows = state.memtable.rows;
        live.mem_ids = state.memtable.ids;
        live.mem_live = live
            .mem_ids
            .iter()
            .enumerate()
            .map(|(slot, id)| live.id_map.get(id) == Some(&Loc::Mem(slot as u32)))
            .collect();
        live.mem_dead = mem_dead;
        // Codes are derived, not persisted for the memtable: retrain.
        // The skip bound is sound, so answers match the saved index.
        live.train_mem_sq8_if_due();
        live.next_seg_id = live.segments.len() as u32;
        live.next_id = state.next_id.max(max_id.map_or(0, |m| m.saturating_add(1)));
        live.sim = live.segments.iter().map(|s| (s.seg_id, s.ids.len())).collect();
        live.wal_gen = state.wal_gen;
        Ok(live)
    }

    /// Replays write-ahead-log records through the ordinary mutation
    /// path (explicit ids, synchronous seals at the same threshold
    /// crossings), so a snapshot plus its WAL converges to the same
    /// layout the live process reached — the recovery half of the
    /// durability contract in `docs/durability.md`. Torn-tail handling
    /// is the log's job ([`wal::Wal::load`]); records handed here are
    /// intact and were all acknowledged, so a failure to apply one is a
    /// real error, not a crash artifact.
    pub fn apply_wal_records(&mut self, records: &[wal::WalRecord]) -> Result<(), MutateError> {
        for rec in records {
            match rec {
                wal::WalRecord::Insert { dim, rows, ids } => {
                    if *dim as usize != self.dim {
                        return Err(MutateError::DimMismatch {
                            expected: self.dim,
                            got: *dim as usize,
                        });
                    }
                    if rows.len() != ids.len() * self.dim {
                        return Err(MutateError::State(format!(
                            "WAL insert carries {} floats for {} ids at dim {}",
                            rows.len(),
                            ids.len(),
                            self.dim
                        )));
                    }
                    let data = Dataset::from_flat("wal", self.dim, rows.clone());
                    self.insert_rows(&data, Some(ids))?;
                }
                wal::WalRecord::Delete { ids } => {
                    self.delete_ids(ids);
                }
            }
        }
        Ok(())
    }
}

impl MutableAnn for LiveIndex {
    fn insert(&mut self, rows: &Dataset, ids: Option<&[u32]>) -> Result<Vec<u32>, MutateError> {
        self.insert_rows(rows, ids)
    }

    fn delete(&mut self, ids: &[u32]) -> usize {
        self.delete_ids(ids)
    }

    /// Synchronously absorbs all pending background work (building and
    /// installing queued seals and merges in order), then seals whatever
    /// the memtable holds — after this returns there are no frozen
    /// buffers and no queued builds, which is what lets FLUSH snapshot a
    /// fully-sealed layout and truncate the WAL against it.
    fn seal(&mut self) -> Result<bool, MutateError> {
        self.drain_pending()?;
        let had_rows = self.freeze_and_plan().is_some();
        self.drain_pending()?;
        Ok(had_rows)
    }

    fn live_len(&self) -> usize {
        self.id_map.len()
    }
}

impl AnnIndex for LiveIndex {
    fn name(&self) -> &'static str {
        LIVE_METHOD
    }

    fn len(&self) -> usize {
        self.live_len()
    }

    fn index_bytes(&self) -> usize {
        let seg_bytes: usize = self
            .segments
            .iter()
            .map(|s| s.index.index_bytes() + s.ids.len() * 4)
            .sum();
        // The id map is ~(key + value + bucket) per live id; 16 bytes is
        // the close-enough accounting the size axes use elsewhere.
        seg_bytes + (self.mem_ids.len() + self.frozen_rows()) * 4 + self.id_map.len() * 16
    }

    /// [`LiveIndex::search_with`] with the request derived from the bare
    /// triple — kept byte-identical to the pre-redesign query path (no
    /// filter, no threshold ⇒ same per-unit scans, same merge).
    fn query_with(&self, q: &[f32], params: &SearchParams, scratch: &mut Scratch) -> Vec<Neighbor> {
        self.search_with(q, &SearchRequest::from(*params), scratch).hits
    }

    /// Fans the request out across the memtable and every sealed segment
    /// through [`ann::executor`], then merges the per-unit top-k by
    /// `(distance, id)` — deterministic regardless of how the executor
    /// schedules the units (scratch never influences results; it is an
    /// allocation cache only). The request's id filter is applied before
    /// each segment's tombstone over-fetch (see
    /// `LiveIndex::scan_segment_request`) and its threshold inside
    /// every scan loop, so with exact segments (`linear`) the answer is
    /// byte-identical to a filtered brute-force oracle over the live
    /// rows — the property the crate's proptests pin.
    ///
    /// On a single executor worker the fan-out degenerates to a
    /// sequential loop that reuses per-segment scratches cached in the
    /// caller's `scratch` — the hot serving path keeps the
    /// allocation-amortization the scratch system exists for. With
    /// multiple workers each unit task builds throwaway scratch (a
    /// shared cache cannot be handed to concurrent tasks).
    fn search_with(&self, q: &[f32], req: &SearchRequest, scratch: &mut Scratch) -> SearchResponse {
        assert!(req.k > 0, "k must be positive");
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let t0 = Instant::now();
        // Frozen (pending-seal) buffers are query units exactly like the
        // memtable: rows keep answering while their segment build runs.
        let frozen: Vec<&FrozenMem> = self
            .pending
            .iter()
            .filter_map(|op| match op {
                PendingOp::Seal(f) => Some(f),
                PendingOp::Merge(_) => None,
            })
            .collect();
        let units = 1 + frozen.len() + self.segments.len();
        let mut stats = SearchStats::default();
        let mut merged: Vec<Neighbor> = if executor::worker_threads(units) <= 1 {
            let cache: &mut Vec<(u32, Scratch)> = scratch.get_or_insert_with(Vec::new);
            // Drop cache entries for compacted-away segments.
            cache.retain(|(sid, _)| self.segments.iter().any(|s| s.seg_id == *sid));
            let (mut out, mem_stats) = self.scan_memtable_request(q, req);
            stats.absorb(&mem_stats);
            for f in &frozen {
                let (hits, f_stats) = self.scan_frozen_request(f, q, req);
                stats.absorb(&f_stats);
                out.extend(hits);
            }
            for seg in &self.segments {
                if !cache.iter().any(|(sid, _)| *sid == seg.seg_id) {
                    cache.push((seg.seg_id, seg.index.make_scratch()));
                }
                let (_, seg_scratch) = cache
                    .iter_mut()
                    .find(|(sid, _)| *sid == seg.seg_id)
                    .expect("just ensured");
                let (hits, seg_stats) = self.scan_segment_request(seg, q, req, seg_scratch);
                stats.absorb(&seg_stats);
                out.extend(hits);
            }
            out
        } else {
            let per_unit = executor::par_map_scratch(units, Scratch::empty, |u, scratch| {
                if u == 0 {
                    self.scan_memtable_request(q, req)
                } else if u <= frozen.len() {
                    self.scan_frozen_request(frozen[u - 1], q, req)
                } else {
                    self.scan_segment_request(&self.segments[u - 1 - frozen.len()], q, req, scratch)
                }
            });
            let mut out = Vec::new();
            for (hits, unit_stats) in per_unit {
                stats.absorb(&unit_stats);
                out.extend(hits);
            }
            out
        };
        merged.sort_unstable();
        merged.truncate(req.k);
        stats.wall_micros = t0.elapsed().as_micros() as u64;
        SearchResponse { hits: merged, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn cfg(seal: usize, max_seg: usize) -> LiveConfig {
        LiveConfig { seal_threshold: seal, max_segments: max_seg }
    }

    fn rows(n: usize, dim: usize, seed: u64) -> Dataset {
        SynthSpec::new("live", n, dim).with_clusters(4).generate(seed)
    }

    fn exact_spec() -> IndexSpec {
        IndexSpec::linear()
    }

    #[test]
    fn insert_assigns_ascending_ids_and_queries_see_them() {
        let data = rows(10, 4, 1);
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, 4, cfg(100, 4)).unwrap();
        let ids = live.insert(&data, None).unwrap();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(live.live_len(), 10);
        assert_eq!(live.segment_count(), 0, "below the seal threshold");
        let hits = live.query(data.get(3), &SearchParams::new(1, 16));
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn build_from_ids_gives_rows_strided_global_ids() {
        let data = rows(9, 4, 7);
        // Shard 1 of a 3-shard cluster: ids 1, 4, 7, …
        let ids: Vec<u32> = (0..9u32).map(|i| 1 + 3 * i).collect();
        let live =
            LiveIndex::build_from_ids(exact_spec(), Metric::Euclidean, &data, cfg(100, 4), &ids)
                .unwrap();
        assert_eq!(live.live_len(), 9);
        for (row, &id) in ids.iter().enumerate() {
            let hits = live.query(data.get(row), &SearchParams::new(1, 16));
            assert_eq!(hits[0].id, id, "row {row} answers under its explicit id");
            assert_eq!(hits[0].dist, 0.0);
        }
        // Auto-assignment continues above the largest explicit id.
        let mut live = live;
        let extra = live.insert(&rows(1, 4, 8), None).unwrap();
        assert_eq!(extra, vec![26], "next_id = max explicit id + 1");
        // Duplicate explicit ids are rejected up front.
        let err = LiveIndex::build_from_ids(
            exact_spec(),
            Metric::Euclidean,
            &rows(2, 4, 9),
            cfg(100, 4),
            &[5, 5],
        );
        assert!(err.is_err(), "duplicate ids must not build");
    }

    #[test]
    fn seal_moves_rows_into_a_segment_with_stable_ids() {
        let data = rows(12, 6, 2);
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, 6, cfg(100, 4)).unwrap();
        live.insert(&data, None).unwrap();
        assert!(live.seal().unwrap());
        assert_eq!(live.segment_count(), 1);
        assert_eq!(live.memtable_rows(), 0);
        assert_eq!(live.live_len(), 12);
        for i in [0u32, 5, 11] {
            let hits = live.query(data.get(i as usize), &SearchParams::new(1, 16));
            assert_eq!(hits[0].id, i, "ids survive the seal");
            assert_eq!(live.vector(i).as_deref(), Some(data.get(i as usize)));
        }
        assert!(!live.seal().unwrap(), "empty memtable seals to nothing");
    }

    #[test]
    fn threshold_triggers_auto_seal_and_compaction_caps_segments() {
        let dim = 5;
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, dim, cfg(4, 2)).unwrap();
        let data = rows(40, dim, 3);
        for i in 0..10 {
            let chunk = Dataset::from_flat("chunk", dim, data.as_flat()[i * 4 * dim..(i + 1) * 4 * dim].to_vec());
            live.insert(&chunk, None).unwrap();
        }
        assert_eq!(live.live_len(), 40);
        assert_eq!(live.memtable_rows(), 0, "every insert batch hit the threshold");
        assert!(live.segment_count() <= 2, "compaction merges the smallest segments");
        // Everything still answers exactly.
        for i in [0u32, 17, 39] {
            let hits = live.query(data.get(i as usize), &SearchParams::new(1, 16));
            assert_eq!(hits[0].id, i);
        }
    }

    #[test]
    fn delete_tombstones_everywhere_and_compaction_drops_them() {
        let dim = 4;
        let data = rows(20, dim, 4);
        let mut live =
            LiveIndex::build_from(exact_spec(), Metric::Euclidean, &data, cfg(100, 1)).unwrap();
        assert_eq!(live.segment_count(), 1);
        // Delete a sealed row and a fresh memtable row.
        let extra = rows(2, dim, 99);
        let new_ids = live.insert(&extra, None).unwrap();
        assert_eq!(new_ids, vec![20, 21]);
        assert_eq!(live.delete(&[3, 21, 777]), 2, "absent ids do not count");
        assert_eq!(live.live_len(), 20);
        let p = SearchParams::new(1, 32);
        assert_ne!(live.query(data.get(3), &p)[0].id, 3, "deleted sealed row is filtered");
        assert_ne!(live.query(extra.get(1), &p)[0].id, 21, "deleted memtable row is filtered");
        assert!(live.vector(3).is_none());
        // Seal + compact to one segment: the tombstoned rows are dropped.
        live.seal().unwrap();
        let layout = live.segment_layout();
        assert_eq!(layout.len(), 1, "max_segments=1 compacts to a single segment");
        assert_eq!(layout[0], (20, 20), "compaction dropped the dead rows");
    }

    #[test]
    fn deleted_id_can_be_reinserted_with_new_data() {
        let dim = 3;
        let data = rows(8, dim, 5);
        let mut live =
            LiveIndex::build_from(exact_spec(), Metric::Euclidean, &data, cfg(100, 4)).unwrap();
        live.delete(&[2]);
        let replacement = Dataset::from_rows("r", &[vec![100.0, 100.0, 100.0]]);
        let ids = live.insert(&replacement, Some(&[2])).unwrap();
        assert_eq!(ids, vec![2]);
        assert_eq!(live.live_len(), 8);
        let hits = live.query(&[100.0, 100.0, 100.0], &SearchParams::new(1, 16));
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[0].dist, 0.0);
        // The stale copy in the segment never resurfaces.
        let hits = live.query(data.get(2), &SearchParams::new(8, 16));
        assert!(hits.iter().all(|n| n.id != 2 || n.dist > 0.0), "stale copy filtered");
    }

    #[test]
    fn insert_errors_are_typed_and_leave_the_index_unchanged() {
        let dim = 4;
        let data = rows(5, dim, 6);
        let mut live =
            LiveIndex::build_from(exact_spec(), Metric::Euclidean, &data, cfg(100, 4)).unwrap();
        let wrong_dim = rows(2, 7, 1);
        assert_eq!(
            live.insert(&wrong_dim, None),
            Err(MutateError::DimMismatch { expected: 4, got: 7 })
        );
        let two = rows(2, dim, 7);
        assert_eq!(
            live.insert(&two, Some(&[9])).unwrap_err(),
            MutateError::BadIds("1 ids for 2 rows".into())
        );
        assert!(matches!(live.insert(&two, Some(&[9, 9])).unwrap_err(), MutateError::BadIds(_)));
        assert_eq!(live.insert(&two, Some(&[9, 3])).unwrap_err(), MutateError::IdInUse(3));
        assert_eq!(live.live_len(), 5, "failed inserts commit nothing");
        // Explicit ids steer the auto counter past themselves.
        live.insert(&two, Some(&[100, 40])).unwrap();
        let auto = live.insert(&rows(1, dim, 8), None).unwrap();
        assert_eq!(auto, vec![101]);
    }

    #[test]
    fn id_space_boundary_cannot_collide() {
        let dim = 3;
        let one = rows(1, dim, 20);
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, dim, cfg(100, 4)).unwrap();
        // u32::MAX is reserved: an explicit insert of it is rejected, so
        // the auto counter can never wrap onto a live id.
        assert!(matches!(
            live.insert(&one, Some(&[u32::MAX])).unwrap_err(),
            MutateError::BadIds(_)
        ));
        // The largest assignable id works, and afterwards the auto path
        // reports exhaustion instead of silently re-assigning it.
        live.insert(&one, Some(&[u32::MAX - 1])).unwrap();
        assert_eq!(live.insert(&one, None).unwrap_err(), MutateError::IdExhausted);
        assert_eq!(live.live_len(), 1);
    }

    #[test]
    fn threshold_seal_failure_rolls_the_insert_back() {
        let dim = 4;
        // `new` does not validate the spec, so the first threshold-crossing
        // insert is where this bad spec (falconn under Euclidean) fails.
        let mut live = LiveIndex::new(
            IndexSpec::falconn(1, 2),
            Metric::Euclidean,
            dim,
            cfg(4, 4),
        )
        .unwrap();
        let three = rows(3, dim, 21);
        live.insert(&three, None).unwrap();
        let crossing = rows(2, dim, 22);
        let err = live.insert(&crossing, None).unwrap_err();
        assert!(matches!(err, MutateError::Build(_)), "{err}");
        // All-or-nothing: the failing insert committed nothing.
        assert_eq!(live.live_len(), 3);
        assert_eq!(live.memtable_rows(), 3);
        assert!(live.vector(3).is_none() && live.vector(4).is_none());
        // The freed ids are assigned again once the insert can succeed.
        let mut retry =
            LiveIndex::new(exact_spec(), Metric::Euclidean, dim, cfg(4, 4)).unwrap();
        retry.insert(&three, None).unwrap();
        assert_eq!(retry.insert(&crossing, None).unwrap(), vec![3, 4]);
    }

    #[test]
    fn state_round_trip_preserves_answers_and_layout() {
        let dim = 6;
        let data = rows(30, dim, 9);
        let mut live =
            LiveIndex::build_from(IndexSpec::lccs(8).with_w(8.0).with_seed(7), Metric::Euclidean, &data, cfg(100, 4))
                .unwrap();
        live.insert(&rows(10, dim, 10), None).unwrap();
        live.delete(&[1, 35]);
        let state = live.state();
        assert_eq!(state.total_rows(), 40);
        assert_eq!(state.live_rows(), 38);
        let back = LiveIndex::from_state(state.clone()).unwrap();
        assert_eq!(back.live_len(), 38);
        assert_eq!(back.segment_layout(), live.segment_layout());
        assert_eq!(back.memtable_rows(), live.memtable_rows());
        let p = SearchParams::new(5, 64);
        for i in [0usize, 7, 29] {
            let a = live.query(data.get(i), &p);
            let b = back.query(data.get(i), &p);
            assert_eq!(a, b, "rebuilt index answers identically (query {i})");
        }
        // Fresh inserts in the rebuilt index do not collide with old ids.
        let mut back = back;
        let ids = back.insert(&rows(1, dim, 11), None).unwrap();
        assert_eq!(ids, vec![40]);
        // Corrupt states are rejected, not mis-assembled.
        let mut bad = state.clone();
        bad.memtable.ids.push(999);
        assert!(matches!(LiveIndex::from_state(bad), Err(MutateError::State(_))));
        let mut bad = state.clone();
        bad.segments[0].dead.push(u32::MAX);
        assert!(matches!(LiveIndex::from_state(bad), Err(MutateError::State(_))));
        let mut bad = state;
        let dup = bad.segments[0].ids[0];
        bad.memtable.ids.push(dup);
        bad.memtable.rows.extend_from_slice(&vec![0.0; dim]);
        assert!(matches!(LiveIndex::from_state(bad), Err(MutateError::State(_))));
    }

    #[test]
    fn bad_segment_spec_fails_at_build_from_not_mid_serving() {
        let data = rows(10, 4, 12);
        // falconn is Angular-only: the first seal inside build_from must
        // surface the registry's typed rejection.
        // `unwrap_err` needs `T: Debug`, which `Box<dyn AnnIndex>` lacks —
        // unwrap by hand.
        let err = match LiveIndex::build_from(
            IndexSpec::falconn(1, 2),
            Metric::Euclidean,
            &data,
            cfg(100, 4),
        ) {
            Ok(_) => panic!("falconn must not build under Euclidean"),
            Err(e) => e,
        };
        assert!(matches!(err, MutateError::Build(m) if m.contains("Angular-only")));
    }

    /// Brute-force oracle over the live rows: filter + threshold + exact
    /// top-k by (distance, id) — what `search_with` must equal with
    /// `linear` segments.
    fn oracle(
        live: &LiveIndex,
        q: &[f32],
        req: &SearchRequest,
        universe: impl Iterator<Item = u32>,
    ) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = universe
            .filter_map(|id| {
                let v = live.vector(id)?;
                if let Some(f) = &req.filter {
                    if !f.accepts(id) {
                        return None;
                    }
                }
                let dist = live.metric().from_surrogate(live.metric().surrogate(&v, q));
                if let Some(d) = req.max_dist {
                    if dist > d {
                        return None;
                    }
                }
                Some(Neighbor { id, dist })
            })
            .collect();
        all.sort_unstable();
        all.truncate(req.k);
        all
    }

    #[test]
    fn filtered_search_composes_with_deletes_across_units() {
        let dim = 4;
        let data = rows(30, dim, 31);
        // Small seal threshold: rows spread over segments + memtable.
        let mut live =
            LiveIndex::build_from(exact_spec(), Metric::Euclidean, &data, cfg(8, 3)).unwrap();
        live.insert(&rows(5, dim, 32), None).unwrap();
        live.delete(&[2, 9, 17, 31]);
        let q = data.get(9); // its exact row is deleted
        for req in [
            SearchRequest::top_k(6).budget(64),
            SearchRequest::top_k(6).budget(64).filter(IdFilter::allow(
                (0..35).filter(|i| i % 2 == 1).collect::<Vec<u32>>(),
            )),
            SearchRequest::top_k(6).budget(64).filter(IdFilter::deny(vec![0, 1, 3, 5, 9])),
            SearchRequest::top_k(35).budget(64).max_dist(2.5),
            SearchRequest::top_k(35)
                .budget(64)
                .max_dist(3.5)
                .filter(IdFilter::allow((0..20).collect::<Vec<u32>>())),
        ] {
            let got = live.search(q, &req);
            let want = oracle(&live, q, &req, 0..40);
            assert_eq!(got.hits, want, "req {req:?}");
            if req.filter.is_none() && req.max_dist.is_none() {
                assert_eq!(got.hits, live.query(q, &req.params()), "query path unchanged");
            }
            if let Some(f) = &req.filter {
                assert!(got.hits.iter().all(|h| f.accepts(h.id)));
            }
            assert!(got.stats.candidates_scanned > 0);
        }
        // A deleted id in an allowlist never resurfaces.
        let req = SearchRequest::top_k(1).budget(64).filter(IdFilter::allow(vec![9]));
        assert!(live.search(q, &req).hits.is_empty(), "deleted id filtered even when allowed");
    }

    #[test]
    fn memtable_sq8_pruning_is_bit_identical() {
        let dim = 8;
        for metric in [Metric::Euclidean, Metric::Angular] {
            let data = rows(400, dim, 77);
            // Seal threshold above the row count: everything stays in the
            // memtable, which is the unit the SQ8 skip bound covers.
            let mut live = LiveIndex::new(exact_spec(), metric, dim, cfg(10_000, 4)).unwrap();
            live.insert(&data, None).unwrap();
            live.delete(&[3, 250, 399]);
            assert!(
                live.sq8_active(),
                "{metric:?}: ≥{MEM_SQ8_MIN_ROWS} rows must train the memtable codes"
            );
            let queries = rows(16, dim, 78);
            for qi in 0..queries.len() {
                let mut q: Vec<f32> = queries.get(qi).to_vec();
                if metric == Metric::Angular {
                    // Unit queries are what turns the angular bound on.
                    let n = dataset::metric::norm(&q) as f32;
                    q.iter_mut().for_each(|x| *x /= n);
                }
                for req in [
                    SearchRequest::top_k(10).budget(64),
                    SearchRequest::top_k(10)
                        .budget(64)
                        .filter(IdFilter::deny(vec![0, 7, 42, 311])),
                ] {
                    let fast = live.search(&q, &req).hits;
                    live.set_sq8_enabled(false);
                    assert!(!live.sq8_active());
                    let slow = live.search(&q, &req).hits;
                    live.set_sq8_enabled(true);
                    assert_eq!(fast.len(), slow.len(), "{metric:?} query {qi}");
                    for (a, b) in fast.iter().zip(&slow) {
                        assert_eq!(a.id, b.id, "{metric:?} query {qi}");
                        assert_eq!(
                            a.dist.to_bits(),
                            b.dist.to_bits(),
                            "{metric:?} query {qi}: pruned path must be bit-identical"
                        );
                    }
                }
            }
        }
    }

    /// Drives the same op sequence through the inline path and through
    /// the deferred path (with the build/install loop run at `cadence` —
    /// simulating a background worker that lags behind) and requires the
    /// final layouts and answers to be bit-identical.
    fn deferred_matches_inline(spec: IndexSpec, metric: Metric, cadence: usize) {
        let dim = 6;
        let data = rows(64, dim, 50);
        let queries = rows(8, dim, 51);
        let mut inline = LiveIndex::new(spec, metric, dim, cfg(6, 2)).unwrap();
        let mut deferred = LiveIndex::new(spec, metric, dim, cfg(6, 2)).unwrap();
        let mut ops = 0usize;
        for step in 0..16 {
            let chunk =
                Dataset::from_flat("c", dim, data.as_flat()[step * 4 * dim..(step + 1) * 4 * dim].to_vec());
            let a = inline.insert(&chunk, None).unwrap();
            let (b, _) = deferred.insert_deferred(&chunk, None).unwrap();
            assert_eq!(a, b, "id assignment is path-independent");
            if step % 3 == 1 {
                let victims = [step as u32, (step * 3) as u32];
                assert_eq!(inline.delete(&victims), deferred.delete(&victims));
            }
            // Queries keep answering while builds are pending, scanning
            // frozen buffers exactly.
            let q = queries.get(step % queries.len());
            let req = SearchRequest::top_k(5).budget(64);
            assert_eq!(inline.search(q, &req).hits, deferred.search(q, &req).hits, "step {step}");
            ops += 1;
            if ops.is_multiple_of(cadence) {
                while let Some(pb) = deferred.pending_build() {
                    let built = pb.build().unwrap();
                    assert!(deferred.install_built(built));
                }
            }
        }
        // Let the "worker" finish everything, then compare layouts.
        while let Some(pb) = deferred.pending_build() {
            assert!(deferred.install_built(pb.build().unwrap()));
        }
        assert_eq!(inline.segment_layout(), deferred.segment_layout());
        assert_eq!(inline.memtable_rows(), deferred.memtable_rows());
        assert_eq!(inline.live_len(), deferred.live_len());
        for qi in 0..queries.len() {
            let req = SearchRequest::top_k(7).budget(64);
            let a = inline.search(queries.get(qi), &req).hits;
            let b = deferred.search(queries.get(qi), &req).hits;
            assert_eq!(a.len(), b.len(), "query {qi}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.id, x.dist.to_bits()), (y.id, y.dist.to_bits()), "query {qi}");
            }
        }
    }

    #[test]
    fn deferred_inserts_converge_to_the_inline_layout() {
        // Exact segments: answers must match at every step.
        deferred_matches_inline(IndexSpec::linear(), Metric::Euclidean, 5);
        // An aggressive lag: many crossings queue up before any build runs,
        // exercising frozen-buffer merges inside planned cascades.
        deferred_matches_inline(IndexSpec::linear(), Metric::Euclidean, 1000);
    }

    #[test]
    fn deferred_layout_is_identical_for_approximate_specs() {
        // With an approximate scheme the *layout* equality is the whole
        // guarantee (answers follow from it because builds are seeded).
        let spec = IndexSpec::lccs(4).with_w(8.0).with_seed(11);
        let dim = 6;
        let data = rows(64, dim, 52);
        let mut inline = LiveIndex::new(spec, Metric::Euclidean, dim, cfg(8, 2)).unwrap();
        let mut deferred = LiveIndex::new(spec, Metric::Euclidean, dim, cfg(8, 2)).unwrap();
        inline.insert(&data, None).unwrap();
        deferred.insert_deferred(&data, None).unwrap();
        deferred.delete(&[2]);
        inline.delete(&[2]);
        while let Some(pb) = deferred.pending_build() {
            assert!(deferred.install_built(pb.build().unwrap()));
        }
        assert_eq!(inline.segment_layout(), deferred.segment_layout());
        let q = data.get(9);
        let req = SearchRequest::top_k(5).budget(64);
        let (a, b) = (inline.search(q, &req).hits, deferred.search(q, &req).hits);
        assert_eq!(a, b, "seeded builds over identical layouts answer identically");
    }

    #[test]
    fn stale_background_build_is_discarded_after_a_synchronous_seal() {
        let dim = 4;
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, dim, cfg(4, 4)).unwrap();
        let (_, pending) = live.insert_deferred(&rows(4, dim, 60), None).unwrap();
        assert!(pending, "threshold crossing queues a build");
        assert_eq!(live.pending_ops(), 1);
        let pb = live.pending_build().unwrap();
        let built = pb.build().unwrap();
        // FLUSH-style synchronous seal absorbs the queue first…
        live.seal().unwrap();
        assert!(!live.has_pending());
        // …so the out-of-band build is now stale and must be rejected.
        assert!(!live.install_built(built), "stale build installs nothing");
        assert_eq!(live.segment_count(), 1);
        assert_eq!(live.live_len(), 4);
    }

    #[test]
    fn state_with_pending_work_folds_into_the_memtable_and_round_trips() {
        let dim = 5;
        let data = rows(12, dim, 61);
        let mut live = LiveIndex::new(exact_spec(), Metric::Euclidean, dim, cfg(4, 8)).unwrap();
        live.insert_deferred(&data, None).unwrap();
        live.delete(&[1, 7]);
        live.set_wal_gen(3);
        assert!(live.has_pending(), "crossings queued builds");
        assert!(live.frozen_rows() > 0);
        let state = live.state();
        assert_eq!(state.wal_gen, 3);
        assert_eq!(state.total_rows(), 12, "frozen rows fold into the memtable unit");
        assert_eq!(state.live_rows(), 10);
        let back = LiveIndex::from_state(state).unwrap();
        assert_eq!(back.wal_gen(), 3);
        assert_eq!(back.live_len(), 10);
        let req = SearchRequest::top_k(6).budget(64);
        for qi in [0usize, 5, 11] {
            let q = data.get(qi);
            assert_eq!(live.search(q, &req).hits, back.search(q, &req).hits, "query {qi}");
        }
    }

    #[test]
    fn angular_inserts_are_normalized() {
        let mut live =
            LiveIndex::new(exact_spec(), Metric::Angular, 2, cfg(100, 4)).unwrap();
        let raw = Dataset::from_rows("a", &[vec![3.0, 4.0]]);
        live.insert(&raw, None).unwrap();
        let stored = live.vector(0).unwrap();
        assert!((stored[0] - 0.6).abs() < 1e-6 && (stored[1] - 0.8).abs() < 1e-6);
    }
}
