//! Per-index write-ahead log for the durable write path.
//!
//! The serving layer appends one record here for every acknowledged
//! INSERT/DELETE against a live index, *before* the acknowledgement
//! leaves the daemon, and replays the log over the last flushed snapshot
//! at startup — see `docs/durability.md` for the full crash-consistency
//! contract this module implements. The record codec follows the same
//! discipline as the serve crate's wire reader: length-prefixed frames,
//! explicit little-endian fields, and a bounds-checked cursor that can
//! never read past the buffer.
//!
//! # File layout
//!
//! ```text
//! ANNWAL01 | generation u64            16-byte header
//! [ len u32 | crc32 u32 | payload ]*   one frame per acknowledged op
//! ```
//!
//! `generation` ties the log to a snapshot: FLUSH writes the snapshot
//! with generation `g+1` and then truncates the log to an empty file
//! with the same `g+1` header. Replay applies the log only when the two
//! generations agree, so a crash *between* the snapshot rename and the
//! WAL truncation leaves a stale log that is detected and discarded
//! instead of double-applied.
//!
//! Each frame's CRC32 (IEEE 802.3, computed over the payload) guards
//! against torn writes: a crash mid-append leaves a final frame whose
//! length or checksum cannot validate, and [`Wal::load`] discards
//! exactly that tail (reporting it) rather than failing the whole load —
//! by the fsync-before-ack rule a torn record was never acknowledged.
//!
//! # Record payloads
//!
//! ```text
//! INSERT  op=1 | dim u32 | n u32 | n×dim f32 rows | n u32 ids
//! DELETE  op=2 | n u32 | n u32 ids
//! ```
//!
//! Inserts always log the *assigned* ids (even when the client let the
//! server auto-assign), so replay reproduces id assignment exactly, and
//! they log the rows as received (replay re-applies the same
//! normalization the original insert did).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"ANNWAL01";

/// File extension WAL files use next to their `.snap` snapshot.
pub const WAL_EXT: &str = "wal";

/// Header bytes: magic + generation.
const HEADER_LEN: usize = 16;

/// Frame prefix bytes: payload length + CRC.
const FRAME_PREFIX: usize = 8;

/// Cap on a single record payload (matches the serving layer's 64 MiB
/// frame cap with slack); a declared length beyond it is treated as a
/// torn/corrupt tail, never allocated.
const MAX_RECORD_BYTES: u32 = 1 << 27;

/// How many records the `batch` sync mode lets accumulate before it
/// issues the group fsync.
const GROUP_COMMIT_RECORDS: u32 = 32;

/// When the daemon forces a record to disk relative to acknowledging it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// fsync every record before the acknowledgement: an acked write
    /// survives both a process kill and a machine crash.
    #[default]
    Always,
    /// Group commit: the record is written to the OS before the ack but
    /// fsynced once per `GROUP_COMMIT_RECORDS` appends. A process kill
    /// loses nothing (the OS holds the pages); a machine/power crash can
    /// lose up to the last unsynced group.
    Batch,
}

impl std::str::FromStr for WalSync {
    type Err = String;
    fn from_str(s: &str) -> Result<WalSync, String> {
        match s {
            "always" => Ok(WalSync::Always),
            "batch" => Ok(WalSync::Batch),
            other => Err(format!("unknown WAL sync mode {other:?} (always, batch)")),
        }
    }
}

impl WalSync {
    /// The flag spelling (`always` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::Batch => "batch",
        }
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An acknowledged INSERT: the rows exactly as received and the ids
    /// the index assigned (explicit even for auto-assigned inserts, so
    /// replay never re-runs id assignment).
    Insert {
        /// Row dimensionality.
        dim: u32,
        /// `ids.len() × dim` row-major vectors, pre-normalization.
        rows: Vec<f32>,
        /// Assigned external id per row.
        ids: Vec<u32>,
    },
    /// An acknowledged DELETE: the requested ids (absent ids no-op on
    /// replay exactly as they did live).
    Delete {
        /// The ids the client asked to delete.
        ids: Vec<u32>,
    },
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        match self {
            WalRecord::Insert { dim, rows, ids } => {
                let mut out = Vec::with_capacity(9 + rows.len() * 4 + ids.len() * 4);
                out.push(OP_INSERT);
                out.extend_from_slice(&dim.to_le_bytes());
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for v in rows {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                for id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out
            }
            WalRecord::Delete { ids } => {
                let mut out = Vec::with_capacity(5 + ids.len() * 4);
                out.push(OP_DELETE);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out
            }
        }
    }

    /// Decodes one payload; `None` for anything malformed (unknown op,
    /// short buffer, trailing bytes, shape mismatch).
    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut r = Rd { buf: payload, pos: 0 };
        let rec = match r.u8()? {
            OP_INSERT => {
                let dim = r.u32()?;
                let n = r.u32()?;
                let floats = (n as usize).checked_mul(dim as usize)?;
                let rows = r.f32s(floats)?;
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                WalRecord::Insert { dim, rows, ids }
            }
            OP_DELETE => {
                let n = r.u32()?;
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                WalRecord::Delete { ids }
            }
            _ => return None,
        };
        (r.pos == payload.len()).then_some(rec)
    }
}

/// Bounds-checked little-endian cursor (the same discipline as the
/// serving layer's wire reader, which is private to that crate).
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn f32s(&mut self, n: usize) -> Option<Vec<f32>> {
        // Guard the allocation before taking: a hostile count must not
        // reserve gigabytes.
        let bytes = n.checked_mul(4)?;
        if bytes > self.buf.len() - self.pos {
            return None;
        }
        let raw = self.take(bytes)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
                .collect(),
        )
    }
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3 reflected polynomial) over `bytes`. Hand-rolled:
/// the offline build environment vendors no checksum crate, and 30 lines
/// of table-driven CRC beat a dependency anyway.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What [`Wal::load`] found on disk.
#[derive(Debug)]
pub struct WalReplay {
    /// Every frame that validated, in append order.
    pub records: Vec<WalRecord>,
    /// The generation in the file header ([`u64::MAX`] when the header
    /// itself was torn — which can only happen if the process died
    /// during the very first create, before any record was acked).
    pub generation: u64,
    /// Whether a torn/corrupt tail was discarded (and physically
    /// truncated away so new appends start from a clean frame boundary).
    pub torn: bool,
}

/// An open write-ahead log, positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    generation: u64,
    /// Appends since the last fsync (the `batch` group-commit counter).
    pending: u32,
    /// Per-index fsync latency, fed to the METRICS exposition — the
    /// write-path number the durability contract pays for per ack.
    fsync_micros: obs::Histogram,
}

/// The conventional WAL path next to an index's snapshot: `dir/name.wal`.
pub fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.{WAL_EXT}"))
}

/// The global fsync-latency histogram for the index this WAL backs
/// (labelled by the file stem, which is the catalog name).
fn fsync_histogram(path: &Path) -> obs::Histogram {
    let index = path.file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
    obs::global().histogram(
        "ann_wal_fsync_micros",
        &[("index", index)],
        "WAL fsync latency per synced group, in microseconds",
    )
}

impl Wal {
    /// Creates (or truncates) the log at `path` with a fresh header for
    /// `generation`, fsynced before returning.
    pub fn create(path: &Path, generation: u64) -> io::Result<Wal> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let fsync_micros = fsync_histogram(path);
        let mut wal = Wal { file, path: path.to_path_buf(), generation, pending: 0, fsync_micros };
        wal.write_header(generation)?;
        Ok(wal)
    }

    /// Opens the log at `path` (creating an empty generation-0 log if the
    /// file is missing), validates every frame, truncates any torn tail,
    /// and returns the log positioned for appends plus everything it
    /// held. The caller decides whether the records apply by comparing
    /// [`WalReplay::generation`] against the snapshot it restored.
    pub fn load(path: &Path) -> io::Result<(Wal, WalReplay)> {
        let mut file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let fsync_micros = fsync_histogram(path);
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            let mut wal =
                Wal { file, path: path.to_path_buf(), generation: 0, pending: 0, fsync_micros };
            wal.write_header(0)?;
            return Ok((wal, WalReplay { records: Vec::new(), generation: 0, torn: false }));
        }
        if bytes.len() < HEADER_LEN {
            // Torn header: the process died during the initial create,
            // before any append could have been acknowledged. Surface it
            // as a generation that can never match, so the caller resets.
            let wal = Wal {
                file,
                path: path.to_path_buf(),
                generation: u64::MAX,
                pending: 0,
                fsync_micros,
            };
            return Ok((wal, WalReplay { records: Vec::new(), generation: u64::MAX, torn: true }));
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not an {} write-ahead log", path.display(), "ANNWAL01"),
            ));
        }
        let generation =
            u64::from_le_bytes(bytes[WAL_MAGIC.len()..HEADER_LEN].try_into().expect("8 bytes"));
        let mut records = Vec::new();
        let mut off = HEADER_LEN;
        let mut torn = false;
        while off < bytes.len() {
            match parse_frame(&bytes[off..]) {
                Some((rec, used)) => {
                    records.push(rec);
                    off += used;
                }
                None => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            // Truncate to the last clean frame boundary so future appends
            // never interleave with the garbage tail.
            file.set_len(off as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let wal = Wal { file, path: path.to_path_buf(), generation, pending: 0, fsync_micros };
        Ok((wal, WalReplay { records, generation, torn }))
    }

    fn write_header(&mut self, generation: u64) -> io::Result<()> {
        let mut header = [0u8; HEADER_LEN];
        header[..WAL_MAGIC.len()].copy_from_slice(WAL_MAGIC);
        header[WAL_MAGIC.len()..].copy_from_slice(&generation.to_le_bytes());
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_all()?;
        self.generation = generation;
        self.pending = 0;
        Ok(())
    }

    /// The generation in this log's header.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and applies the sync policy; returns the frame
    /// bytes written. Under [`WalSync::Always`] the record is on disk
    /// when this returns; under [`WalSync::Batch`] it is in the OS, with
    /// the fsync amortized over the group.
    pub fn append(&mut self, rec: &WalRecord, sync: WalSync) -> io::Result<u64> {
        let payload = rec.encode_payload();
        let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.pending += 1;
        match sync {
            WalSync::Always => self.sync()?,
            WalSync::Batch => {
                if self.pending >= GROUP_COMMIT_RECORDS {
                    self.sync()?;
                }
            }
        }
        Ok(frame.len() as u64)
    }

    /// Forces every appended record to disk now (the group-commit flush).
    pub fn sync(&mut self) -> io::Result<()> {
        let t0 = std::time::Instant::now();
        self.file.sync_data()?;
        self.fsync_micros.observe(t0.elapsed().as_micros() as u64);
        self.pending = 0;
        Ok(())
    }

    /// Empties the log under a new generation (the FLUSH truncation: the
    /// snapshot just renamed into place carries the same generation, so
    /// replay of anything older can never double-apply). fsynced before
    /// returning.
    pub fn reset(&mut self, generation: u64) -> io::Result<()> {
        self.write_header(generation)
    }
}

/// Parses one `len | crc | payload` frame from the front of `bytes`.
/// `None` for anything that does not validate — the caller treats that
/// position as the torn tail.
fn parse_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < FRAME_PREFIX {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let end = FRAME_PREFIX.checked_add(len as usize)?;
    if bytes.len() < end {
        return None;
    }
    let payload = &bytes[FRAME_PREFIX..end];
    if crc32(payload) != crc {
        return None;
    }
    let rec = WalRecord::decode_payload(payload)?;
    Some((rec, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ann-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        wal_path(&dir, "t")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert { dim: 3, rows: vec![1.0, -2.5, 0.0, 7.0, 8.0, 9.0], ids: vec![4, 9] },
            WalRecord::Delete { ids: vec![4, 77] },
            WalRecord::Insert { dim: 3, rows: vec![0.25, 0.5, 0.75], ids: vec![10] },
            WalRecord::Delete { ids: vec![] },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector, plus the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_load_round_trips_records_and_generation() {
        let path = tmp("rt");
        let mut wal = Wal::create(&path, 7).unwrap();
        for rec in sample_records() {
            wal.append(&rec, WalSync::Always).unwrap();
        }
        drop(wal);
        let (wal, replay) = Wal::load(&path).unwrap();
        assert_eq!(replay.generation, 7);
        assert_eq!(wal.generation(), 7);
        assert!(!replay.torn);
        assert_eq!(replay.records, sample_records());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_file_loads_empty_at_generation_zero() {
        let path = tmp("fresh");
        std::fs::remove_file(&path).ok();
        let (wal, replay) = Wal::load(&path).unwrap();
        assert_eq!((replay.generation, replay.records.len(), replay.torn), (0, 0, false));
        assert_eq!(wal.generation(), 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_final_record_is_discarded_not_fatal() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 1).unwrap();
        for rec in sample_records() {
            wal.append(&rec, WalSync::Always).unwrap();
        }
        drop(wal);
        let full = std::fs::metadata(&path).unwrap().len();
        // Surgically truncate mid-way through the final frame: the crash
        // the fsync-before-ack rule makes survivable.
        for cut in [full - 1, full - 3] {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let (_wal, replay) = Wal::load(&path).unwrap();
            assert!(replay.torn, "cut at {cut} of {full} must report a torn tail");
            assert_eq!(
                replay.records,
                sample_records()[..3],
                "the first three intact records survive"
            );
            // The torn tail is physically gone: a second load is clean.
            let (_wal, replay) = Wal::load(&path).unwrap();
            assert!(!replay.torn);
            assert_eq!(replay.records.len(), 3);
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_crc_discards_from_the_bad_frame_on() {
        let path = tmp("crc");
        let mut wal = Wal::create(&path, 1).unwrap();
        let mut offsets = vec![HEADER_LEN as u64];
        for rec in sample_records() {
            let n = wal.append(&rec, WalSync::Always).unwrap();
            offsets.push(offsets.last().unwrap() + n);
        }
        drop(wal);
        // Flip one payload byte of the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = offsets[2] as usize + FRAME_PREFIX;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_wal, replay) = Wal::load(&path).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.records, sample_records()[..2], "everything after the bad CRC goes");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn reset_empties_the_log_under_the_new_generation() {
        let path = tmp("reset");
        let mut wal = Wal::create(&path, 3).unwrap();
        wal.append(&sample_records()[0], WalSync::Always).unwrap();
        wal.reset(4).unwrap();
        assert_eq!(wal.generation(), 4);
        wal.append(&sample_records()[1], WalSync::Always).unwrap();
        drop(wal);
        let (_wal, replay) = Wal::load(&path).unwrap();
        assert_eq!(replay.generation, 4);
        assert_eq!(replay.records, sample_records()[1..2]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn batch_mode_group_commits_and_explicit_sync_flushes() {
        let path = tmp("batch");
        let mut wal = Wal::create(&path, 0).unwrap();
        // Batch appends do not fsync per record (observable only as the
        // pending counter here; durability is the OS's business).
        for _ in 0..5 {
            wal.append(&sample_records()[1], WalSync::Batch).unwrap();
        }
        assert_eq!(wal.pending, 5);
        wal.sync().unwrap();
        assert_eq!(wal.pending, 0);
        // The group boundary fsyncs by itself.
        for _ in 0..GROUP_COMMIT_RECORDS {
            wal.append(&sample_records()[1], WalSync::Batch).unwrap();
        }
        assert_eq!(wal.pending, 0, "group-commit boundary flushed");
        // And always-mode keeps the counter at zero.
        wal.append(&sample_records()[0], WalSync::Always).unwrap();
        assert_eq!(wal.pending, 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn foreign_file_is_rejected_not_wiped() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a wal file, but 16+ bytes long").unwrap();
        let err = Wal::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(std::fs::metadata(&path).unwrap().len() > 0, "the file is left untouched");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn sync_mode_parses_both_spellings() {
        assert_eq!("always".parse::<WalSync>().unwrap(), WalSync::Always);
        assert_eq!("batch".parse::<WalSync>().unwrap(), WalSync::Batch);
        assert!("fsync".parse::<WalSync>().is_err());
        assert_eq!(WalSync::Batch.name(), "batch");
    }
}
