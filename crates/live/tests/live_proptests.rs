//! Property tests: random interleavings of insert / delete / query /
//! seal (and the compactions they trigger) against a naive `Vec`-backed
//! oracle.
//!
//! The configuration under test is the **exact** one — Euclidean metric
//! with `linear` (exact-scan) segments — where the live index's merged
//! top-k must be *byte-identical* to brute force over the current live
//! rows: same ids, same distance bits, same (distance, id) order. On top
//! of the oracle equivalence, every case checks id stability: whatever
//! external id a row got at insert still retrieves exactly that row after
//! any number of seals and compactions.

use ann::{AnnIndex, IdFilter, IndexSpec, MutableAnn, SearchParams, SearchRequest};
use ann_live::{LiveConfig, LiveIndex};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric, SynthSpec};
use proptest::collection::vec;
use proptest::prelude::*;

/// Shared row pool the interleavings draw inserts and queries from.
/// Gaussian synthetic data: distance ties across distinct rows are
/// (measure-)zero, so (distance, id) ordering is unambiguous.
fn pool() -> Dataset {
    SynthSpec::new("pool", 600, 8).with_clusters(6).generate(42)
}

/// The oracle: live rows as plain (id, row) pairs, queried by brute
/// force with the same surrogate-then-finalize arithmetic the exact
/// scans use, so equality can be asserted on raw f64 bits.
struct Oracle {
    rows: Vec<(u32, Vec<f32>)>,
}

impl Oracle {
    fn top_k(&self, q: &[f32], k: usize) -> Vec<(u32, u64)> {
        let mut all: Vec<Neighbor> = self
            .rows
            .iter()
            .map(|(id, row)| Neighbor {
                id: *id,
                dist: Metric::Euclidean.surrogate_unchecked(row, q),
            })
            .collect();
        all.sort_unstable();
        all.truncate(k);
        all.iter()
            .map(|n| (n.id, Metric::Euclidean.from_surrogate(n.dist).to_bits()))
            .collect()
    }

    fn delete(&mut self, id: u32) -> bool {
        let before = self.rows.len();
        self.rows.retain(|(i, _)| *i != id);
        self.rows.len() != before
    }

    /// Filtered range top-k: the same brute force restricted to ids the
    /// filter accepts and rows within `max_dist` — what
    /// `LiveIndex::search` must match bit for bit with exact segments.
    fn filtered_top_k(&self, q: &[f32], req: &SearchRequest) -> Vec<(u32, u64)> {
        let mut all: Vec<Neighbor> = self
            .rows
            .iter()
            .filter(|(id, _)| req.filter.as_ref().is_none_or(|f| f.accepts(*id)))
            .map(|(id, row)| Neighbor {
                id: *id,
                dist: Metric::Euclidean.surrogate_unchecked(row, q),
            })
            .filter(|n| {
                req.max_dist
                    .is_none_or(|d| Metric::Euclidean.from_surrogate(n.dist) <= d)
            })
            .collect();
        all.sort_unstable();
        all.truncate(req.k);
        all.iter()
            .map(|n| (n.id, Metric::Euclidean.from_surrogate(n.dist).to_bits()))
            .collect()
    }
}

fn bits(ns: &[Neighbor]) -> Vec<(u32, u64)> {
    ns.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One random interleaving per case: ops drive the live index and the
    /// oracle in lockstep; every query op (and a final sweep) must agree
    /// bit for bit.
    #[test]
    fn interleavings_match_the_exact_oracle(
        ops in vec((0u32..=3, any::<u32>()), 1..=40),
        seal_threshold in 2usize..=12,
        max_segments in 1usize..=3,
    ) {
        let pool = pool();
        let cfg = LiveConfig { seal_threshold, max_segments };
        let mut live =
            LiveIndex::new(IndexSpec::linear(), Metric::Euclidean, pool.dim(), cfg).unwrap();
        let mut oracle = Oracle { rows: Vec::new() };
        let mut next_pool = 0usize;

        for (op, arg) in ops {
            match op {
                // Insert a batch of 1–4 fresh pool rows.
                0 => {
                    let n = 1 + (arg as usize) % 4;
                    let flat: Vec<f32> = pool.as_flat()
                        [next_pool * pool.dim()..(next_pool + n) * pool.dim()]
                        .to_vec();
                    let batch = Dataset::from_flat("batch", pool.dim(), flat);
                    let ids = live.insert(&batch, None).expect("insert");
                    prop_assert_eq!(ids.len(), n);
                    for (i, id) in ids.iter().enumerate() {
                        oracle.rows.push((*id, pool.get(next_pool + i).to_vec()));
                    }
                    next_pool += n;
                }
                // Delete one id — usually a live one, sometimes absent.
                1 => {
                    let id = if oracle.rows.is_empty() || arg % 5 == 0 {
                        1_000_000 + arg % 7 // never assigned
                    } else {
                        oracle.rows[arg as usize % oracle.rows.len()].0
                    };
                    let removed = live.delete(&[id]);
                    prop_assert_eq!(removed == 1, oracle.delete(id), "delete {}", id);
                }
                // Explicit seal (threshold-triggered ones happen inside
                // insert; both paths may cascade into compaction).
                2 => {
                    live.seal().expect("seal");
                }
                // Query: top-k over a pool row must equal the oracle.
                _ => {
                    if live.live_len() == 0 {
                        continue;
                    }
                    let k = 1 + (arg as usize) % 12;
                    let q = pool.get(arg as usize % pool.len());
                    let got = bits(&live.query(q, &SearchParams::new(k, 1)));
                    let want = oracle.top_k(q, k.min(oracle.rows.len()));
                    prop_assert_eq!(got, want, "query k={}", k);
                }
            }
            prop_assert_eq!(live.live_len(), oracle.rows.len());
        }

        // Final sweep: a handful of fixed queries, deeper k.
        for qi in [0usize, 99, 251, 402] {
            if oracle.rows.is_empty() {
                break;
            }
            let k = 10.min(oracle.rows.len());
            let got = bits(&live.query(pool.get(qi), &SearchParams::new(k, 1)));
            prop_assert_eq!(got, oracle.top_k(pool.get(qi), k), "final sweep query {}", qi);
        }

        // Id stability: every live id still retrieves exactly the row it
        // was assigned at insert, wherever seals/compactions moved it.
        for (id, row) in &oracle.rows {
            prop_assert_eq!(
                live.vector(*id).as_deref(),
                Some(row.as_slice()),
                "id {} must keep its row",
                id
            );
        }
        prop_assert!(
            live.segment_count() <= max_segments.max(1),
            "compaction must cap segments at {} (got {})",
            max_segments,
            live.segment_count()
        );
    }

    /// Filtered + range search under random insert/delete interleavings:
    /// after every mutation burst, allowlist / denylist / threshold
    /// requests over the live index must equal the brute-force oracle
    /// restricted the same way — bit for bit, including the interaction
    /// with tombstones (a deleted id never resurfaces even when a filter
    /// explicitly allows it).
    #[test]
    fn filtered_search_matches_the_oracle_under_mutation(
        ops in vec((0u32..=1, any::<u32>()), 1..=24),
        seal_threshold in 2usize..=10,
        max_segments in 1usize..=3,
        probe in any::<u32>(),
    ) {
        let pool = pool();
        let cfg = LiveConfig { seal_threshold, max_segments };
        let mut live =
            LiveIndex::new(IndexSpec::linear(), Metric::Euclidean, pool.dim(), cfg).unwrap();
        let mut oracle = Oracle { rows: Vec::new() };
        let mut next_pool = 0usize;

        for (op, arg) in ops {
            match op {
                0 => {
                    let n = 1 + (arg as usize) % 4;
                    let flat: Vec<f32> = pool.as_flat()
                        [next_pool * pool.dim()..(next_pool + n) * pool.dim()]
                        .to_vec();
                    let batch = Dataset::from_flat("batch", pool.dim(), flat);
                    let ids = live.insert(&batch, None).expect("insert");
                    for (i, id) in ids.iter().enumerate() {
                        oracle.rows.push((*id, pool.get(next_pool + i).to_vec()));
                    }
                    next_pool += n;
                }
                _ => {
                    if oracle.rows.is_empty() {
                        continue;
                    }
                    let id = oracle.rows[arg as usize % oracle.rows.len()].0;
                    live.delete(&[id]);
                    oracle.delete(id);
                }
            }
            if oracle.rows.is_empty() {
                continue;
            }
            let q = pool.get(probe as usize % pool.len());
            let k = 1 + (probe as usize) % 8;
            // The id universe seen so far, split into thirds for filters;
            // the threshold is a mid-range distance so both sides occur.
            let universe: Vec<u32> = (0..next_pool as u32).collect();
            let allow: Vec<u32> = universe.iter().copied().filter(|i| i % 3 == 0).collect();
            let deny: Vec<u32> = universe.iter().copied().filter(|i| i % 3 == 1).collect();
            let mid = {
                let exact = oracle.top_k(q, oracle.rows.len());
                f64::from_bits(exact[exact.len() / 2].1)
            };
            for req in [
                SearchRequest::top_k(k).budget(1).filter(IdFilter::allow(allow.clone())),
                SearchRequest::top_k(k).budget(1).filter(IdFilter::deny(deny.clone())),
                SearchRequest::top_k(k).budget(1).max_dist(mid),
                SearchRequest::top_k(k)
                    .budget(1)
                    .filter(IdFilter::deny(deny.clone()))
                    .max_dist(mid),
            ] {
                let got = bits(&live.search(q, &req).hits);
                let want = oracle.filtered_top_k(q, &req);
                prop_assert_eq!(got, want, "k={} req={:?}", k, &req);
            }
        }
    }

    /// Memtable-scale SQ8 pruning: once the memtable is big enough to
    /// train a code table, the pruned scan must stay bit-identical to
    /// the same index with the skip bound disabled — across random
    /// tombstones, filters, range thresholds, and k. (The tests above
    /// use small memtables, which never train codes; this one pins the
    /// fast path itself.)
    #[test]
    fn memtable_sq8_pruning_matches_the_unpruned_scan(
        deletes in vec(any::<u32>(), 0..=24),
        probe in any::<u32>(),
        k in 1usize..=12,
        modulus in 2u32..=4,
    ) {
        let pool = pool();
        // Seal threshold above the pool size: every row stays in the
        // memtable, the unit the SQ8 skip bound covers.
        let cfg = LiveConfig { seal_threshold: 1 << 20, max_segments: 2 };
        let mut live =
            LiveIndex::new(IndexSpec::linear(), Metric::Euclidean, pool.dim(), cfg).unwrap();
        live.insert(&pool, None).expect("insert");
        let doomed: Vec<u32> = deletes.iter().map(|d| d % pool.len() as u32).collect();
        live.delete(&doomed);
        prop_assert!(live.sq8_active(), "pool is large enough to train memtable codes");

        let q = pool.get(probe as usize % pool.len());
        let deny: Vec<u32> =
            (0..pool.len() as u32).filter(|i| i % modulus == 0).collect();
        for req in [
            SearchRequest::top_k(k).budget(1),
            SearchRequest::top_k(k).budget(1).filter(IdFilter::deny(deny.clone())),
            SearchRequest::top_k(k).budget(1).max_dist(2.5),
        ] {
            let fast = bits(&live.search(q, &req).hits);
            live.set_sq8_enabled(false);
            prop_assert!(!live.sq8_active());
            let slow = bits(&live.search(q, &req).hits);
            live.set_sq8_enabled(true);
            prop_assert_eq!(fast, slow, "req={:?}", &req);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The durability contract end to end, in-process: random
    /// insert/delete/flush interleavings run through the deferred write
    /// path with a lagging background worker, every acknowledged op
    /// appended to a real WAL file, every FLUSH snapshotting under a
    /// bumped generation and truncating the log. Then the index is
    /// dropped mid-flight (the in-process `kill -9`) and recovery —
    /// the last flushed snapshot plus a WAL replay — must answer
    /// bit-identically to the uncrashed index, and converge to the
    /// byte-identical segment layout once the uncrashed side quiesces.
    #[test]
    fn crash_replay_of_snapshot_plus_wal_matches_the_uncrashed_index(
        ops in vec((0u32..=2, any::<u32>()), 1..=30),
        seal_threshold in 2usize..=10,
        max_segments in 1usize..=3,
        lag in 1usize..=6,
    ) {
        use ann_live::wal::{Wal, WalRecord, WalSync};
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("ann-crash-{}-{case}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_file = ann_live::wal::wal_path(&dir, "t");

        let pool = pool();
        let cfg = LiveConfig { seal_threshold, max_segments };
        let mut live =
            LiveIndex::new(IndexSpec::linear(), Metric::Euclidean, pool.dim(), cfg).unwrap();
        let mut wal = Wal::create(&wal_file, 0).unwrap();
        let mut flushed = live.state(); // the "snapshot on disk", generation 0
        let mut next_pool = 0usize;
        let mut ticks = 0usize;

        for (op, arg) in ops {
            match op {
                // Acknowledged insert: mutate first, then log the rows as
                // received with the ids actually assigned — the exact
                // discipline the daemon follows before acking.
                0 => {
                    let n = 1 + (arg as usize) % 4;
                    let flat: Vec<f32> = pool.as_flat()
                        [next_pool * pool.dim()..(next_pool + n) * pool.dim()]
                        .to_vec();
                    let batch = Dataset::from_flat("batch", pool.dim(), flat.clone());
                    let (ids, _) = live.insert_deferred(&batch, None).expect("insert");
                    wal.append(
                        &WalRecord::Insert { dim: pool.dim() as u32, rows: flat, ids },
                        WalSync::Batch,
                    )
                    .unwrap();
                    next_pool += n;
                }
                // Acknowledged delete (possibly of an absent id — logged
                // either way; replay no-ops identically).
                1 => {
                    let id = arg % (next_pool.max(1) as u32);
                    live.delete(&[id]);
                    wal.append(&WalRecord::Delete { ids: vec![id] }, WalSync::Batch).unwrap();
                }
                // FLUSH: drain every pending build, snapshot under a
                // bumped generation, truncate the WAL to that generation.
                _ => {
                    live.seal().expect("seal");
                    let gen = live.wal_gen() + 1;
                    live.set_wal_gen(gen);
                    flushed = live.state();
                    wal.reset(gen).unwrap();
                }
            }
            // A lagging background worker: builds land every `lag` ops.
            ticks += 1;
            if ticks.is_multiple_of(lag) {
                if let Some(pb) = live.pending_build() {
                    let built = pb.build().expect("build");
                    prop_assert!(live.install_built(built));
                }
            }
        }

        // Crash. Recovery reads the snapshot and replays the log over it.
        drop(wal);
        let (_wal2, replay) = Wal::load(&wal_file).unwrap();
        prop_assert!(!replay.torn);
        prop_assert_eq!(replay.generation, flushed.wal_gen, "log and snapshot pair up");
        let mut recovered = LiveIndex::from_state(flushed).unwrap();
        recovered.apply_wal_records(&replay.records).expect("replay");

        prop_assert_eq!(recovered.live_len(), live.live_len());
        for qi in [0usize, 123, 321, 517] {
            if live.live_len() == 0 {
                break;
            }
            let q = pool.get(qi);
            let k = 1 + qi % 9;
            let got = bits(&recovered.query(q, &SearchParams::new(k, 1)));
            let want = bits(&live.query(q, &SearchParams::new(k, 1)));
            prop_assert_eq!(got, want, "recovered answers must match pre-crash (query {})", qi);
        }
        // Once the uncrashed side finishes its queued builds, the layouts
        // are byte-identical — replay reached the same seal/merge plan.
        while let Some(pb) = live.pending_build() {
            prop_assert!(live.install_built(pb.build().expect("build")));
        }
        prop_assert_eq!(live.segment_layout(), recovered.segment_layout());
        prop_assert_eq!(live.memtable_rows(), recovered.memtable_rows());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// After one seal and no deletes, a live index with an approximate spec
/// answers exactly like a from-scratch registry build of the same spec
/// over the same rows — the "recall-equivalent to a full rebuild"
/// guarantee, pinned bit-for-bit in the no-tombstone case.
#[test]
fn sealed_live_index_matches_from_scratch_build_of_same_spec() {
    let data = SynthSpec::new("fresh", 400, 16).with_clusters(8).generate(9);
    let spec = IndexSpec::lccs(8).with_w(8.0).with_seed(21);
    let live = LiveIndex::build_from(
        spec,
        Metric::Euclidean,
        &data,
        LiveConfig { seal_threshold: 1 << 20, max_segments: 4 },
    )
    .unwrap();
    assert_eq!(live.segment_count(), 1);
    let scratch_built = eval::registry::build_index(
        &spec,
        &eval::registry::BuildCtx {
            data: &std::sync::Arc::new(data.clone()),
            metric: Metric::Euclidean,
        },
    )
    .unwrap();
    let params = SearchParams::new(10, 64);
    for i in [0usize, 57, 200, 399] {
        // External ids are 0..n in insertion order, so they coincide with
        // the from-scratch build's slot ids.
        assert_eq!(
            bits(&live.query(data.get(i), &params)),
            bits(&scratch_built.query(data.get(i), &params)),
            "query {i}"
        );
    }
}
