//! Property tests for the calibration-table codec and the planner.

use plan::{CalPoint, CalibrationTable, CAL_MAGIC};
use proptest::collection::vec;
use proptest::prelude::*;

fn any_point() -> impl Strategy<Value = CalPoint> {
    (1u32..100_000, 0u32..64, 0.0f64..1.0, 0u64..1_000_000).prop_map(
        |(budget, probes, recall, micros)| CalPoint { budget, probes, recall, micros },
    )
}

fn any_table() -> impl Strategy<Value = CalibrationTable> {
    (
        vec(any_point(), 1..24),
        0u32..10_000,
        1u32..200,
        0u64..u32::MAX as u64,
        0u64..2_000_000_000,
        any::<bool>(),
    )
        .prop_map(|(points, sample_queries, k, rows, built_unix, stale)| {
            CalibrationTable { sample_queries, k, rows, built_unix, stale, points }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips(t in any_table()) {
        let back = CalibrationTable::decode(&t.encode()).expect("own encoding decodes");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn every_truncation_is_rejected(t in any_table(), frac in 0.0f64..1.0) {
        let body = t.encode();
        let cut = ((body.len() as f64) * frac) as usize;
        prop_assume!(cut < body.len());
        prop_assert!(CalibrationTable::decode(&body[..cut]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(t in any_table(), tail in vec(0u8..=255, 1..16)) {
        let mut body = t.encode();
        body.extend_from_slice(&tail);
        prop_assert!(CalibrationTable::decode(&body).is_err());
    }

    #[test]
    fn random_bytes_do_not_decode_unless_well_formed(raw in vec(0u8..=255, 0..256)) {
        // Decoding arbitrary bytes must never panic; if it does succeed,
        // re-encoding must reproduce the input exactly (no silent
        // normalization of a malformed body).
        if let Ok(t) = CalibrationTable::decode(&raw) {
            prop_assert_eq!(t.encode(), raw);
            prop_assert_eq!(&raw[..4], &CAL_MAGIC[..]);
        }
    }

    #[test]
    fn planner_is_monotone_in_the_target(
        mut t in any_table(),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        prop_assume!(lo <= hi);
        t.regularize();
        let cheap = t.plan(lo).expect("non-empty table plans");
        let dear = t.plan(hi).expect("non-empty table plans");
        // Higher target ⇒ never-cheaper params (budget-major cost order)
        // and never-lower predicted recall.
        prop_assert!(
            (cheap.budget, cheap.probes) <= (dear.budget, dear.probes),
            "target {} chose ({}, {}), target {} chose ({}, {})",
            lo, cheap.budget, cheap.probes, hi, dear.budget, dear.probes
        );
        prop_assert!(cheap.predicted_recall <= dear.predicted_recall);
    }

    #[test]
    fn regularized_tables_predict_monotonically_in_budget(
        mut t in any_table(),
        b1 in 1u32..100_000,
        b2 in 1u32..100_000,
        probes in 0u32..64,
    ) {
        prop_assume!(b1 <= b2);
        t.regularize();
        prop_assert!(t.predict(b1, probes) <= t.predict(b2, probes) + 1e-12);
    }
}
