//! Recall-targeted query planning (the PR-10 subsystem).
//!
//! Users of an ANN service ask for a *recall target*, not for the
//! paper's raw `(budget, probes)` knobs. This crate holds the data
//! structure and decision logic that turn `target_recall(0.9)` into the
//! cheapest satisfying parameter pair:
//!
//! * [`CalibrationTable`] — a compact per-index table of measured
//!   `(budget, probes) → (recall, latency)` grid points, produced by the
//!   eval harness's fig9/fig10-style sweep (`eval::calibrate`), made
//!   monotone by [`CalibrationTable::regularize`], and persisted as a
//!   back-compatible `CALB` section in the `.snap` container.
//! * [`CalibrationTable::plan`] — the planner: the cheapest grid point
//!   (budget first, probes as tiebreak) whose measured recall meets the
//!   target. Between grid anchors, [`CalibrationTable::predict`]
//!   interpolates recall **log-linearly in budget** — the shape the
//!   paper's §5 model implies (the budget needed for a recall level
//!   scales like `m^(1-1/ρ)`, so recall is closer to linear in
//!   `log budget` than in budget); the grid itself is seeded from
//!   `theory::lambda` by the sweep driver.
//! * [`Degrader`] — the load-shedding dial: when the serving p99 runs
//!   past its bound, requested targets are stepped down toward
//!   `--recall-floor` instead of letting the daemon time out, and the
//!   effective target is reported honestly in `SearchStats` / METRICS.
//!
//! The crate is dependency-free on purpose: `eval` measures into it,
//! `serve` persists and plans out of it, and neither pulls the other in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Magic prefix of the encoded table (also the `.snap` section marker).
pub const CAL_MAGIC: [u8; 4] = *b"CALT";

/// Encoding version; bump when the point layout changes.
pub const CAL_VERSION: u8 = 1;

/// Fixed encoded size of one [`CalPoint`]: budget + probes (u32 each),
/// recall (f64 bits), micros (u64).
pub const POINT_BYTES: usize = 4 + 4 + 8 + 8;

/// Encoded size of the header before the point array: magic, version,
/// sample_queries u32, k u32, rows u64, built_unix u64, stale u8,
/// count u32.
pub const HEADER_BYTES: usize = 4 + 1 + 4 + 4 + 8 + 8 + 1 + 4;

/// One measured grid point of the calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalPoint {
    /// Verification budget the point was measured at.
    pub budget: u32,
    /// Probe count the point was measured at (0 = scheme default).
    pub probes: u32,
    /// Measured recall at `(budget, probes)`, in `[0, 1]`.
    pub recall: f64,
    /// Median per-query latency at this point, microseconds.
    pub micros: u64,
}

/// The per-index calibration asset: measured recall + latency over a
/// `(budget, probes)` grid, plus the provenance needed to judge
/// staleness. Persisted in the snapshot container (`CALB` section) and
/// carried in the serving catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationTable {
    /// How many sampled queries the sweep measured against.
    pub sample_queries: u32,
    /// The `k` the sweep measured recall at.
    pub k: u32,
    /// Row count of the index when calibrated (drift indicator).
    pub rows: u64,
    /// Unix seconds when the sweep ran (0 = unknown).
    pub built_unix: u64,
    /// Set when the index mutated after calibration: the table still
    /// plans, but its numbers describe a previous state of the index.
    pub stale: bool,
    /// The measured grid, sorted by `(probes, budget)`.
    pub points: Vec<CalPoint>,
}

/// Why a table failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad calibration table: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Why planning failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The index has no calibration table (or an empty one): the server
    /// cannot honor `target_recall` and answers with this typed error.
    Uncalibrated,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Uncalibrated => write!(
                f,
                "not calibrated for target_recall; run `ann-cli calibrate` \
                 or pass explicit budget/probes"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The planner's answer: the cheapest grid point meeting the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Chosen verification budget.
    pub budget: u32,
    /// Chosen probe count.
    pub probes: u32,
    /// The measured (monotone-regularized) recall at the chosen point.
    /// Below the target only when the target exceeds everything the
    /// table can reach — the planner then returns its best point and
    /// reports the shortfall honestly rather than failing the query.
    pub predicted_recall: f64,
}

/// Cost order the planner minimizes: budget dominates (it is the number
/// of candidates verified with full f32 distances — the dominant cost
/// in the paper's model), probes break ties.
fn cost(p: &CalPoint) -> (u32, u32) {
    (p.budget, p.probes)
}

impl CalibrationTable {
    /// Serializes the table: `CALT` magic, version, header fields, then
    /// the fixed-size point array. Everything little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.points.len() * POINT_BYTES);
        out.extend_from_slice(&CAL_MAGIC);
        out.push(CAL_VERSION);
        out.extend_from_slice(&self.sample_queries.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.built_unix.to_le_bytes());
        out.push(u8::from(self.stale));
        out.extend_from_slice(&(self.points.len() as u32).to_le_bytes());
        for p in &self.points {
            out.extend_from_slice(&p.budget.to_le_bytes());
            out.extend_from_slice(&p.probes.to_le_bytes());
            out.extend_from_slice(&p.recall.to_bits().to_le_bytes());
            out.extend_from_slice(&p.micros.to_le_bytes());
        }
        out
    }

    /// Decodes an encoded table, rejecting bad magic, unknown versions,
    /// truncation, trailing bytes, non-finite or out-of-range recalls,
    /// and empty grids (a table with no points cannot plan; absence is
    /// spelled "no CALB section", never an empty one).
    pub fn decode(raw: &[u8]) -> Result<CalibrationTable, DecodeError> {
        let mut r = Cursor { raw, at: 0 };
        let magic = r.take(4)?;
        if magic != CAL_MAGIC {
            return Err(DecodeError(format!("magic {magic:02x?}")));
        }
        let version = r.u8()?;
        if version != CAL_VERSION {
            return Err(DecodeError(format!("unknown version {version}")));
        }
        let sample_queries = r.u32()?;
        let k = r.u32()?;
        let rows = r.u64()?;
        let built_unix = r.u64()?;
        let stale = match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(DecodeError(format!("stale byte {b}"))),
        };
        let count = r.u32()? as usize;
        if count == 0 {
            return Err(DecodeError("empty grid".into()));
        }
        if count > raw.len() / POINT_BYTES + 1 {
            return Err(DecodeError(format!("count {count} exceeds the body")));
        }
        let mut points = Vec::with_capacity(count);
        for i in 0..count {
            let budget = r.u32()?;
            let probes = r.u32()?;
            let recall = f64::from_bits(r.u64()?);
            let micros = r.u64()?;
            if !recall.is_finite() || !(0.0..=1.0).contains(&recall) {
                return Err(DecodeError(format!("point {i} recall {recall}")));
            }
            points.push(CalPoint { budget, probes, recall, micros });
        }
        if r.at != raw.len() {
            return Err(DecodeError(format!("{} trailing bytes", raw.len() - r.at)));
        }
        Ok(CalibrationTable { sample_queries, k, rows, built_unix, stale, points })
    }

    /// Monotone regularization: measured recall must never *decrease*
    /// as budget grows (within a probe level) or as probes grow (at a
    /// fixed budget) — sampling noise can dent that, and a dented table
    /// would make the planner non-monotone. Each pass takes the running
    /// max along one axis; the result is sorted by `(probes, budget)`.
    pub fn regularize(&mut self) {
        self.points.sort_by_key(|p| (p.probes, p.budget));
        // Running max along budget within each probe level.
        let mut i = 0;
        while i < self.points.len() {
            let probes = self.points[i].probes;
            let mut best = 0.0f64;
            while i < self.points.len() && self.points[i].probes == probes {
                best = best.max(self.points[i].recall);
                self.points[i].recall = best;
                i += 1;
            }
        }
        // Running max along probes at each budget (probe groups are
        // already sorted ascending).
        let budgets: Vec<u32> = {
            let mut b: Vec<u32> = self.points.iter().map(|p| p.budget).collect();
            b.sort_unstable();
            b.dedup();
            b
        };
        for budget in budgets {
            let mut best = 0.0f64;
            for p in self.points.iter_mut().filter(|p| p.budget == budget) {
                best = best.max(p.recall);
                p.recall = best;
            }
        }
    }

    /// The highest recall any grid point reaches.
    pub fn max_recall(&self) -> f64 {
        self.points.iter().map(|p| p.recall).fold(0.0, f64::max)
    }

    /// Picks the cheapest grid point whose measured recall meets
    /// `target` (cost order: budget, then probes). When the target is
    /// beyond everything measured, returns the highest-recall point
    /// (most expensive among ties) with `predicted_recall < target` —
    /// the caller reports the shortfall instead of failing the query.
    ///
    /// Monotone by construction: raising the target shrinks the set the
    /// minimum is taken over, so the chosen cost can only rise.
    pub fn plan(&self, target: f64) -> Result<Plan, PlanError> {
        let satisfying = self
            .points
            .iter()
            .filter(|p| p.recall >= target)
            .min_by_key(|p| cost(p));
        let chosen = match satisfying {
            Some(p) => p,
            None => self
                .points
                .iter()
                .max_by(|a, b| {
                    a.recall.total_cmp(&b.recall).then_with(|| cost(a).cmp(&cost(b)))
                })
                .ok_or(PlanError::Uncalibrated)?,
        };
        Ok(Plan {
            budget: chosen.budget,
            probes: chosen.probes,
            predicted_recall: chosen.recall,
        })
    }

    /// Predicted recall at an arbitrary `(budget, probes)`: within the
    /// nearest measured probe level (largest level ≤ `probes`, else the
    /// smallest), recall is interpolated **log-linearly in budget**
    /// between the bracketing grid anchors and clamped to the endpoint
    /// values outside them. The log-linear shape follows the §5 model:
    /// required budget grows like `m^(1-1/ρ)` per recall level, so
    /// equal recall steps correspond to equal *ratios* of budget.
    pub fn predict(&self, budget: u32, probes: u32) -> f64 {
        let level = self
            .points
            .iter()
            .map(|p| p.probes)
            .filter(|&p| p <= probes)
            .max()
            .or_else(|| self.points.iter().map(|p| p.probes).min());
        let Some(level) = level else { return 0.0 };
        let group: Vec<&CalPoint> =
            self.points.iter().filter(|p| p.probes == level).collect();
        // (sorted by budget: regularize() and the sweep both order it.)
        let first = match group.first() {
            Some(p) => **p,
            None => return 0.0,
        };
        let last = **group.last().expect("non-empty group");
        if budget <= first.budget {
            return first.recall;
        }
        if budget >= last.budget {
            return last.recall;
        }
        for w in group.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if (lo.budget..=hi.budget).contains(&budget) {
                if hi.budget == lo.budget {
                    return hi.recall;
                }
                let t = ((budget as f64).ln() - (lo.budget as f64).ln())
                    / ((hi.budget as f64).ln() - (lo.budget as f64).ln());
                return lo.recall + t * (hi.recall - lo.recall);
            }
        }
        last.recall
    }

    /// Seconds elapsed since the sweep ran, given the current unix time
    /// (0 when the table carries no timestamp).
    pub fn age_secs(&self, now_unix: u64) -> u64 {
        if self.built_unix == 0 {
            0
        } else {
            now_unix.saturating_sub(self.built_unix)
        }
    }
}

/// The load-shedding dial: steps a requested recall target down toward
/// a floor when the serving p99 runs past its bound, instead of letting
/// the daemon breach its latency promise. Disabled (passes targets
/// through) when the floor or the bound is unset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degrader {
    /// The lowest effective target degradation may reach; `0.0`
    /// disables degradation entirely.
    pub floor: f64,
    /// The p99 latency bound in microseconds; `0` disables degradation.
    pub p99_bound_micros: u64,
}

/// How much one overload step lowers the target.
pub const DEGRADE_STEP: f64 = 0.05;

impl Degrader {
    /// A disabled dial (targets pass through unchanged).
    pub fn off() -> Degrader {
        Degrader { floor: 0.0, p99_bound_micros: 0 }
    }

    /// Whether degradation is armed at all.
    pub fn enabled(&self) -> bool {
        self.floor > 0.0 && self.p99_bound_micros > 0
    }

    /// The effective target for a request asking for `requested` while
    /// the serving p99 is `p99_micros`: each doubling of the p99 over
    /// its bound sheds one [`DEGRADE_STEP`], clamped at the floor (and
    /// never *raised* — a request below the floor passes through).
    pub fn effective(&self, requested: f64, p99_micros: u64) -> f64 {
        if !self.enabled() || p99_micros <= self.p99_bound_micros {
            return requested;
        }
        let over = p99_micros as f64 / self.p99_bound_micros as f64;
        let steps = over.log2().ceil().max(1.0);
        (requested - DEGRADE_STEP * steps).max(self.floor).min(requested)
    }
}

struct Cursor<'a> {
    raw: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.raw.len() {
            return Err(DecodeError("truncated".into()));
        }
        let s = &self.raw[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CalibrationTable {
        CalibrationTable {
            sample_queries: 64,
            k: 10,
            rows: 1000,
            built_unix: 1_700_000_000,
            stale: false,
            points: vec![
                CalPoint { budget: 16, probes: 0, recall: 0.42, micros: 30 },
                CalPoint { budget: 64, probes: 0, recall: 0.80, micros: 90 },
                CalPoint { budget: 256, probes: 0, recall: 0.97, micros: 300 },
                CalPoint { budget: 16, probes: 8, recall: 0.55, micros: 45 },
                CalPoint { budget: 64, probes: 8, recall: 0.91, micros: 120 },
                CalPoint { budget: 256, probes: 8, recall: 1.0, micros: 400 },
            ],
        }
    }

    #[test]
    fn codec_round_trips() {
        for stale in [false, true] {
            let mut t = table();
            t.stale = stale;
            let back = CalibrationTable::decode(&t.encode()).expect("own encoding decodes");
            assert_eq!(back, t);
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let body = table().encode();
        for cut in 0..body.len() {
            assert!(
                CalibrationTable::decode(&body[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut trailing = body.clone();
        trailing.push(0);
        assert!(CalibrationTable::decode(&trailing).is_err(), "trailing byte");
        let mut bad_magic = body.clone();
        bad_magic[0] = b'X';
        assert!(CalibrationTable::decode(&bad_magic).is_err(), "magic");
        let mut bad_version = body.clone();
        bad_version[4] = CAL_VERSION + 1;
        assert!(CalibrationTable::decode(&bad_version).is_err(), "version");
        // Non-finite recall in the first point.
        let mut bad_recall = body;
        let off = HEADER_BYTES + 8;
        bad_recall[off..off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(CalibrationTable::decode(&bad_recall).is_err(), "NaN recall");
    }

    #[test]
    fn empty_grids_do_not_decode() {
        let t = CalibrationTable {
            sample_queries: 1,
            k: 1,
            rows: 1,
            built_unix: 0,
            stale: false,
            points: vec![],
        };
        assert!(CalibrationTable::decode(&t.encode()).is_err());
    }

    #[test]
    fn regularize_makes_recall_monotone_along_both_axes() {
        let mut t = table();
        // Dent the measurements: recall dips at a higher budget and at a
        // higher probe level.
        t.points[1].recall = 0.30; // (64, 0) below (16, 0)
        t.points[3].recall = 0.10; // (16, 8) below (16, 0)
        t.regularize();
        let at = |budget, probes| {
            t.points.iter().find(|p| p.budget == budget && p.probes == probes).unwrap().recall
        };
        assert_eq!(at(64, 0), 0.42, "budget axis: running max");
        assert_eq!(at(16, 8), 0.42, "probe axis: running max");
        assert!(at(256, 8) >= at(64, 8));
    }

    #[test]
    fn planner_picks_the_cheapest_satisfying_point() {
        let t = table();
        let p = t.plan(0.75).unwrap();
        assert_eq!((p.budget, p.probes), (64, 0), "cheapest ≥0.75 is (64, 0)");
        assert_eq!(p.predicted_recall, 0.80);
        let p = t.plan(0.9).unwrap();
        assert_eq!((p.budget, p.probes), (64, 8), "probes beat a 4x budget");
        let p = t.plan(0.99).unwrap();
        assert_eq!((p.budget, p.probes), (256, 8));
    }

    #[test]
    fn unreachable_targets_fall_back_to_the_best_point_honestly() {
        let mut t = table();
        t.points.retain(|p| p.probes == 0);
        let p = t.plan(0.999).unwrap();
        assert_eq!((p.budget, p.probes), (256, 0));
        assert!(p.predicted_recall < 0.999, "shortfall is reported, not hidden");
    }

    #[test]
    fn planning_over_no_points_is_uncalibrated() {
        let t = CalibrationTable {
            sample_queries: 0,
            k: 0,
            rows: 0,
            built_unix: 0,
            stale: false,
            points: vec![],
        };
        assert_eq!(t.plan(0.5), Err(PlanError::Uncalibrated));
    }

    #[test]
    fn predict_interpolates_between_anchors_and_clamps_outside() {
        let t = table();
        assert_eq!(t.predict(8, 0), 0.42, "below the grid clamps low");
        assert_eq!(t.predict(1024, 0), 0.97, "above the grid clamps high");
        let mid = t.predict(128, 0);
        assert!(mid > 0.80 && mid < 0.97, "between anchors, got {mid}");
        // Log-linear: halfway in log space between 64 and 256 is 128.
        let expected = 0.80 + 0.5 * (0.97 - 0.80);
        assert!((mid - expected).abs() < 1e-9, "log-linear midpoint, got {mid}");
        assert!(t.predict(128, 8) > t.predict(128, 0), "higher probe level");
        assert!(t.predict(128, 3) == t.predict(128, 0), "probe level rounds down");
    }

    #[test]
    fn degrader_steps_down_toward_the_floor() {
        let d = Degrader { floor: 0.7, p99_bound_micros: 1000 };
        assert_eq!(d.effective(0.9, 500), 0.9, "under the bound: untouched");
        assert_eq!(d.effective(0.9, 1000), 0.9, "at the bound: untouched");
        let one = d.effective(0.9, 1500);
        assert!((one - 0.85).abs() < 1e-12, "one step over, got {one}");
        assert_eq!(d.effective(0.9, 1_000_000), 0.7, "deep overload clamps at the floor");
        assert_eq!(d.effective(0.5, 1_000_000), 0.5, "requests below the floor pass through");
        assert_eq!(Degrader::off().effective(0.9, u64::MAX), 0.9, "disabled dial is inert");
        let unarmed = Degrader { floor: 0.0, p99_bound_micros: 1000 };
        assert_eq!(unarmed.effective(0.9, u64::MAX), 0.9, "no floor = no degradation");
    }

    #[test]
    fn age_is_relative_to_build_time() {
        let t = table();
        assert_eq!(t.age_secs(1_700_000_050), 50);
        assert_eq!(t.age_secs(0), 0, "clock behind the build never underflows");
        let mut t0 = t;
        t0.built_unix = 0;
        assert_eq!(t0.age_secs(123), 0, "no timestamp, no age");
    }
}
