//! Exact-scan throughput (`dataset::exact`) — the brute-force inner loop
//! every verification phase and ground-truth pass is built on. Guards the
//! `Metric::surrogate_unchecked` hot path: the per-candidate length
//! check is a `debug_assert!` there, so release-mode exact scans must
//! stay at memory-bandwidth speed. Compare this bench before/after any
//! change to `crates/dataset/src/metric.rs`.

use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{ExactKnn, Metric};

fn bench_exact_scan(c: &mut Criterion) {
    let n = 20_000;
    let mut g = c.benchmark_group("exact_scan");
    g.sample_size(10);
    for &dim in &[24usize, 128] {
        let data = bench_data(n, dim);
        let queries = data.sample_queries(4, 0x5eed);
        g.throughput(Throughput::Elements((n * queries.len()) as u64));
        for metric in [Metric::Euclidean, Metric::Angular] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}-d{dim}", metric.name()), n),
                &(),
                |b, ()| {
                    b.iter(|| {
                        (0..queries.len())
                            .map(|i| {
                                ExactKnn::single_query(
                                    black_box(&data),
                                    black_box(queries.get(i)),
                                    10,
                                    metric,
                                )
                            })
                            .collect::<Vec<_>>()
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_exact_scan);
criterion_main!(benches);
