//! Live-index query latency: memtable-heavy vs fully compacted.
//!
//! The LSM-style `LiveIndex` pays for write absorption at read time — a
//! memtable row costs an exact-distance scan per query, while a sealed
//! segment answers through its spec-built (sublinear) index. This bench
//! pins the two extremes of the same logical index:
//!
//! * **memtable-heavy** — every row still in the write buffer (seal
//!   threshold above n): each query brute-force scans all n rows;
//! * **compacted** — one seal + compaction moved everything into a
//!   single LCCS segment: each query runs one CSA search + verification.
//!
//! The gap between the two series is the latency cost of unflushed write
//! traffic, i.e. what FLUSH (or the automatic seal policy) buys back.

use ann::{AnnIndex, IndexSpec, MutableAnn, SearchParams};
use ann_live::{LiveConfig, LiveIndex};
use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::Metric;

fn bench_live(c: &mut Criterion) {
    let n = 8_000;
    let dim = 32;
    let data = bench_data(n, dim);
    let spec = IndexSpec::lccs(16).with_w(8.0).with_seed(7);

    // Memtable-heavy: the threshold is never reached, every row stays in
    // the exact-scan buffer.
    let mut hot =
        LiveIndex::new(spec, Metric::Euclidean, dim, LiveConfig { seal_threshold: usize::MAX >> 1, max_segments: 4 })
            .unwrap();
    hot.insert(&data, None).unwrap();
    assert_eq!(hot.segment_count(), 0);
    assert_eq!(hot.memtable_rows(), n);

    // Compacted: same rows, sealed into a single LCCS segment.
    let cold = LiveIndex::build_from(
        spec,
        Metric::Euclidean,
        &data,
        LiveConfig { seal_threshold: usize::MAX >> 1, max_segments: 1 },
    )
    .unwrap();
    assert_eq!(cold.segment_count(), 1);
    assert_eq!(cold.memtable_rows(), 0);

    let queries = data.sample_queries(64, 0x11fe);
    let params = SearchParams::new(10, 128);
    let mut g = c.benchmark_group("live_query");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    for (label, index) in [("memtable-heavy", &hot), ("compacted", &cold)] {
        g.bench_with_input(BenchmarkId::new(label, n), &(), |b, ()| {
            let mut scratch = index.make_scratch();
            b.iter(|| {
                (0..queries.len())
                    .map(|i| index.query_with(black_box(queries.get(i)), &params, &mut scratch))
                    .collect::<Vec<_>>()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_live);
criterion_main!(benches);
