//! Criterion micro-benches of the end-to-end query paths of every scheme at
//! a fixed workload — the per-method costs behind Figures 4–5.

use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dataset::Metric;
use eval::harness::IndexSpec;
use std::sync::Arc;

fn bench_queries(c: &mut Criterion) {
    let n = 20_000;
    let data = Arc::new(bench_data(n, 64));
    let q = data.get(17).to_vec();
    let w = 8.0;
    let mut g = c.benchmark_group("query_top10");
    g.sample_size(20);
    for (label, spec, budget, probes) in [
        ("lccs_m64", IndexSpec::Lccs { m: 64 }, 128usize, 0usize),
        ("mp_lccs_m64_p65", IndexSpec::MpLccs { m: 64 }, 128, 65),
        ("e2lsh_k4_l16", IndexSpec::E2lsh { k_funcs: 4, l_tables: 16 }, 128, 0),
        ("mplsh_k4_l4_p32", IndexSpec::MultiProbeLsh { k_funcs: 4, l_tables: 4 }, 128, 32),
        ("c2lsh_m32_l4", IndexSpec::C2lsh { m: 32, l: 4 }, 128, 0),
        ("qalsh_m32_l8", IndexSpec::Qalsh { m: 32, l: 8 }, 128, 0),
        ("srs_d6", IndexSpec::Srs { d_proj: 6 }, 128, 0),
        ("linear", IndexSpec::Linear, 0, 0),
    ] {
        let built = spec.build(&data, Metric::Euclidean, w, 7);
        g.bench_function(label, |b| {
            b.iter(|| built.query(black_box(&q), 10, budget, probes))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
