//! Criterion micro-benches of the end-to-end query paths of every scheme at
//! a fixed workload — the per-method costs behind Figures 4–5.

use ann::SearchParams;
use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dataset::Metric;
use eval::harness::{build_spec, IndexSpec};
use std::sync::Arc;

fn bench_queries(c: &mut Criterion) {
    let n = 20_000;
    let data = Arc::new(bench_data(n, 64));
    let q = data.get(17).to_vec();
    let w = 8.0;
    let mut g = c.benchmark_group("query_top10");
    g.sample_size(20);
    for (label, spec, budget, probes) in [
        ("lccs_m64", IndexSpec::lccs(64), 128usize, 0usize),
        ("mp_lccs_m64_p65", IndexSpec::mp_lccs(64), 128, 65),
        ("e2lsh_k4_l16", IndexSpec::e2lsh(4, 16), 128, 0),
        ("mplsh_k4_l4_p32", IndexSpec::multi_probe(4, 4), 128, 32),
        ("c2lsh_m32_l4", IndexSpec::c2lsh(32, 4), 128, 0),
        ("qalsh_m32_l8", IndexSpec::qalsh(32, 8), 128, 0),
        ("srs_d6", IndexSpec::srs(6), 128, 0),
        ("kdtree", IndexSpec::kd_tree(), 0, 0),
        ("linear", IndexSpec::linear(), 0, 0),
    ] {
        let spec = spec.with_w(w).with_seed(7);
        let built = build_spec(&spec, &data, Metric::Euclidean)
            .unwrap_or_else(|e| panic!("building {spec}: {e}"));
        let params = SearchParams { k: 10, budget, probes };
        g.bench_function(label, |b| b.iter(|| built.query(black_box(&q), &params)));
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
