//! Sequential vs parallel batch-query throughput through the `AnnIndex`
//! batch executor, at batch sizes {1, 64, 1024} — the serving-path
//! speedup the executor exists for. Throughput is reported as queries/s;
//! on a single-core host the parallel path degenerates to the sequential
//! loop (the executor short-circuits), so the two series should match
//! there and diverge by ~#cores on multi-core hosts.

use ann::{executor, AnnIndex, SearchParams};
use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::Metric;
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;

fn bench_batch(c: &mut Criterion) {
    let n = 20_000;
    let data = Arc::new(bench_data(n, 64));
    let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(64));
    let params = SearchParams::new(10, 128);
    let mut g = c.benchmark_group("batch_query");
    g.sample_size(10);
    for &batch in &[1usize, 64, 1024] {
        let queries = data.sample_queries(batch, 0x5eed);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("sequential", batch), &(), |b, ()| {
            // Disambiguate from the inherent LccsLsh::query_with.
            let mut scratch = AnnIndex::make_scratch(&idx);
            b.iter(|| {
                (0..queries.len())
                    .map(|i| AnnIndex::query_with(&idx, black_box(queries.get(i)), &params, &mut scratch))
                    .collect::<Vec<_>>()
            });
        });
        g.bench_with_input(BenchmarkId::new("parallel", batch), &(), |b, ()| {
            b.iter(|| executor::batch_query(&idx, black_box(&queries), &params));
        });
    }
    g.finish();
    eprintln!(
        "note: executor sees {} worker thread(s) at batch 1024 on this host",
        executor::worker_threads(1024)
    );
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
