//! Criterion micro-benches of the per-family hashing cost η(d) (§5.2):
//! random projection is O(d), dense cross-polytope is O(d²), the fast
//! pseudo-rotation is O(d log d), bit sampling is O(1).

use bench::bench_data;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsh::{sample_family, FamilyKind, FamilyParams};

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("family_hash");
    for &dim in &[128usize, 960] {
        let data = bench_data(64, dim);
        let v = data.get(0);
        for kind in [
            FamilyKind::RandomProjection,
            FamilyKind::CrossPolytope,
            FamilyKind::CrossPolytopeFast,
            FamilyKind::BitSampling,
            FamilyKind::MinHash,
        ] {
            let funcs = sample_family(kind, dim, 1, &FamilyParams::default(), 3);
            g.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), format!("d{dim}")),
                &(),
                |b, ()| b.iter(|| funcs[0].hash(black_box(v))),
            );
        }
    }
    g.finish();
}

fn bench_hash_string(c: &mut Criterion) {
    // The indexing-phase cost of one object: m hash values (m = 128).
    let mut g = c.benchmark_group("hash_string_m128");
    let dim = 128;
    let data = bench_data(64, dim);
    let v = data.get(0);
    for kind in [FamilyKind::RandomProjection, FamilyKind::CrossPolytopeFast] {
        let funcs = sample_family(kind, dim, 128, &FamilyParams::default(), 5);
        g.bench_with_input(BenchmarkId::new(format!("{kind:?}"), "d128"), &(), |b, ()| {
            b.iter(|| lsh::hash_query(&funcs, black_box(v)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hashing, bench_hash_string);
criterion_main!(benches);
