//! Criterion micro-benches of the CSA kernels: Algorithm 1 (build) and
//! Algorithm 2 (k-LCCS search), across n and m — the `O(m n log n)` /
//! `O(log n + (m + k) log m)` costs of Theorem 3.1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use csa::{Csa, SearchScratch, StringSet};

fn random_strings(n: usize, m: usize, alphabet: u64, seed: u64) -> StringSet {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) % alphabet
    };
    let data: Vec<u64> = (0..n * m).map(|_| next()).collect();
    StringSet::from_flat(n, m, data)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("csa_build");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        for &m in &[32usize, 128] {
            g.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("m{m}")),
                &(n, m),
                |b, &(n, m)| {
                    let set = random_strings(n, m, 16, 7);
                    b.iter(|| Csa::build(black_box(set.clone())));
                },
            );
        }
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("csa_search");
    g.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        for &m in &[64usize, 256] {
            let set = random_strings(n, m, 16, 11);
            let csa = Csa::build(set);
            let query = random_strings(1, m, 16, 99).row(0).to_vec();
            let mut scratch = SearchScratch::for_csa(&csa);
            g.bench_with_input(
                BenchmarkId::new(format!("n{n}_m{m}"), "k100"),
                &(),
                |b, ()| {
                    b.iter(|| csa.search_with(black_box(&query), 100, &mut scratch));
                },
            );
        }
    }
    g.finish();
}

/// Ablation: the Lemma 3.1 next-link narrowing vs the §3.2 "simple method"
/// (m independent full binary searches). The paper's claimed win is
/// `O(log n + m)` vs `O(m (m + log n))` for the anchoring phase.
fn bench_anchor_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("anchor_ablation");
    g.sample_size(30);
    let (n, m) = (50_000usize, 128usize);
    let set = random_strings(n, m, 16, 21);
    let csa = Csa::build(set);
    let query = random_strings(1, m, 16, 77).row(0).to_vec();
    g.bench_function("narrowed_lemma_3_1", |b| b.iter(|| csa.anchor(black_box(&query))));
    g.bench_function("simple_full_searches", |b| {
        b.iter(|| csa.anchor_simple(black_box(&query)))
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_search, bench_anchor_ablation);
criterion_main!(benches);
