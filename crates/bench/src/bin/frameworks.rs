//! Framework ablation: LCCS-LSH vs its §7 sorted-key ancestors (LSH-Forest,
//! SK-LSH) and E2LSH at matched hash budgets. See
//! `eval::experiments::frameworks`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::frameworks::run(&opts).expect("experiment failed");
}
