//! Regenerates the paper's table1. See `eval::experiments::table1`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::table1::run(&opts).expect("experiment failed");
}
