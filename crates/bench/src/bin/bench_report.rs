//! `bench_report` — the tracked serving-performance trajectory.
//!
//! ```text
//! bench_report [--out BENCH_serve.json] [--quick] [--min-speedup X]
//! ```
//!
//! Measures the serving paths the perf PRs optimized and writes one
//! JSON object per bench to `--out` (committed at the repo root as
//! `BENCH_serve.json`, so the trajectory is tracked commit over commit):
//!
//! * `snapshot_open_mapped` / `snapshot_open_owned` — cold-start: open a
//!   v3 `.snap` container zero-copy via `mmap` vs. reading + copying it.
//! * `live_scan_sq8` / `live_scan_f32` — a memtable-heavy `LiveIndex`
//!   query sweep with the SQ8 skip bound on vs. off.
//! * `exact_batch_sq8` / `exact_batch_f32` — an `ExactKnn` batch over a
//!   dataset with a primed SQ8 code table vs. a plain f32 scan.
//! * `search_direct` / `search_router` — the same wire sweep against one
//!   `annd` directly vs through a one-shard router (the scatter-gather
//!   hop's overhead; no speedup floor applies to this pair).
//! * `search_plain` / `search_instrumented` — the same wire sweep with
//!   legacy frames vs TRACE-carrying frames and the slow-query check
//!   armed; the run fails if instrumentation costs more than 5%.
//! * `search_manual` / `search_planned` — the same wire sweep with the
//!   knobs passed explicitly vs re-derived per request by the recall
//!   planner from a calibration table; the run fails if planning costs
//!   more than 5%.
//!
//! Every entry is `{"median_us": …, "rows": …, "k": …, "commit": …}`.
//! Both SQ8 sweeps assert the pruned top-k is bit-identical to the
//! unpruned one before any timing is reported — a fast wrong answer
//! must never enter the trajectory. `--quick` shrinks sizes and repeat
//! counts for CI smoke; `--min-speedup X` fails the run when either SQ8
//! sweep comes in below `X`× the f32 baseline.

use ann::{AnnIndex, IndexSpec, MutableAnn, SearchRequest};
use ann_live::{LiveConfig, LiveIndex};
use bench::bench_data;
use dataset::exact::ExactKnn;
use dataset::Metric;
use serve::snapshot::Snapshot;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    out: PathBuf,
    quick: bool,
    min_speedup: f64,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts =
        Opts { out: PathBuf::from("BENCH_serve.json"), quick: false, min_speedup: 0.0 };
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        let mut take =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match a.as_str() {
            "--out" => opts.out = PathBuf::from(take("--out")),
            "--quick" => opts.quick = true,
            "--min-speedup" => {
                opts.min_speedup =
                    take("--min-speedup").parse().expect("--min-speedup wants a number")
            }
            other => panic!("unknown flag {other}; known: --out --quick --min-speedup"),
        }
    }
    opts
}

/// One row of the report: the JSON schema every entry follows.
struct Entry {
    name: &'static str,
    median_us: u64,
    rows: usize,
    k: usize,
}

/// Runs `f` once for warmup, then `repeats` timed times; returns the
/// median in microseconds.
fn median_us<R>(repeats: usize, mut f: impl FnMut() -> R) -> u64 {
    std::hint::black_box(f());
    let mut samples: Vec<u64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Asserts two hit lists carry the same ids and the same f64 distance
/// bits — the bit-identity contract both SQ8 paths are sold under.
fn assert_bit_identical(
    what: &str,
    fast: &[dataset::exact::Neighbor],
    slow: &[dataset::exact::Neighbor],
) {
    assert_eq!(fast.len(), slow.len(), "{what}: result lengths differ");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(a.id, b.id, "{what}: hit {i} id differs");
        assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "{what}: hit {i} dist bits differ");
    }
}

/// Cold-start: time `open_mapped` (zero-copy) vs `read_from` (owned)
/// over the same freshly written v3 container with SQ8 codes.
fn bench_cold_start(entries: &mut Vec<Entry>, n: usize, repeats: usize) {
    let dim = 32;
    let data = bench_data(n, dim);
    data.sq8(); // primed: the container carries an SQ8C section
    let snap = Snapshot {
        name: "bench".into(),
        method: "Linear".into(),
        data,
        payload: Vec::new(),
        meta: None,
        live: None,
        calibration: None,
    };
    let path = std::env::temp_dir().join(format!("bench-report-{}.snap", std::process::id()));
    snap.write_to(&path).expect("write bench snapshot");

    let mapped_us = median_us(repeats, || {
        let s = Snapshot::open_mapped(&path).expect("open_mapped");
        // Touch both ends so a lazily faulted mapping cannot cheat.
        (s.data.as_flat()[0], s.data.as_flat()[n * dim - 1])
    });
    let owned_us = median_us(repeats, || {
        let s = Snapshot::read_from(&path).expect("read_from");
        (s.data.as_flat()[0], s.data.as_flat()[n * dim - 1])
    });
    let _ = std::fs::remove_file(&path);

    println!(
        "bench_report: cold start over {n}×{dim}: mapped {mapped_us}us vs owned {owned_us}us \
         ({:.2}x)",
        owned_us as f64 / mapped_us.max(1) as f64
    );
    entries.push(Entry { name: "snapshot_open_mapped", median_us: mapped_us, rows: n, k: 0 });
    entries.push(Entry { name: "snapshot_open_owned", median_us: owned_us, rows: n, k: 0 });
}

/// Memtable-heavy live sweep: every row stays in the memtable (seal
/// threshold above `n`), so the whole query cost is the scan the SQ8
/// skip bound accelerates.
fn bench_live_scan(entries: &mut Vec<Entry>, n: usize, nq: usize, repeats: usize) -> f64 {
    let dim = 32;
    let k = 10;
    let data = bench_data(n, dim);
    let queries = data.sample_queries(nq, 0x9e37);
    let cfg = LiveConfig { seal_threshold: n + 1, max_segments: 4 };
    let mut live =
        LiveIndex::new(IndexSpec::linear(), Metric::Euclidean, dim, cfg).expect("live index");
    live.insert(&data, None).expect("bulk insert");
    assert!(live.sq8_active(), "memtable of {n} rows must train SQ8 codes");
    let req = SearchRequest::top_k(k).budget(64);

    let sweep = |live: &LiveIndex| -> Vec<dataset::exact::Neighbor> {
        let mut all = Vec::with_capacity(nq * k);
        for qi in 0..nq {
            all.extend(live.search(queries.get(qi), &req).hits);
        }
        all
    };
    let fast_hits = sweep(&live);
    live.set_sq8_enabled(false);
    assert_bit_identical("live sweep", &fast_hits, &sweep(&live));

    let slow_us = median_us(repeats, || sweep(&live));
    live.set_sq8_enabled(true);
    let fast_us = median_us(repeats, || sweep(&live));

    let speedup = slow_us as f64 / fast_us.max(1) as f64;
    println!(
        "bench_report: live sweep ({nq} queries over {n}×{dim} memtable): sq8 {fast_us}us vs \
         f32 {slow_us}us ({speedup:.2}x, top-k bit-identical)"
    );
    entries.push(Entry { name: "live_scan_sq8", median_us: fast_us, rows: n, k });
    entries.push(Entry { name: "live_scan_f32", median_us: slow_us, rows: n, k });
    speedup
}

/// `ExactKnn` batch: the same dataset with and without a primed SQ8
/// code table (the pruner engages automatically when one is cached).
fn bench_exact_batch(entries: &mut Vec<Entry>, n: usize, nq: usize, repeats: usize) -> f64 {
    let dim = 32;
    let k = 10;
    let plain = bench_data(n, dim);
    let queries = plain.sample_queries(nq, 0x51f5);
    let primed = plain.clone();
    primed.sq8();

    let fast_gt = ExactKnn::compute(&primed, &queries, k, Metric::Euclidean);
    let slow_gt = ExactKnn::compute(&plain, &queries, k, Metric::Euclidean);
    for q in 0..nq {
        assert_bit_identical("exact batch", fast_gt.neighbors(q), slow_gt.neighbors(q));
    }

    let slow_us =
        median_us(repeats, || ExactKnn::compute(&plain, &queries, k, Metric::Euclidean));
    let fast_us =
        median_us(repeats, || ExactKnn::compute(&primed, &queries, k, Metric::Euclidean));

    let speedup = slow_us as f64 / fast_us.max(1) as f64;
    println!(
        "bench_report: exact batch ({nq} queries over {n}×{dim}): sq8 {fast_us}us vs f32 \
         {slow_us}us ({speedup:.2}x, top-k bit-identical)"
    );
    entries.push(Entry { name: "exact_batch_sq8", median_us: fast_us, rows: n, k });
    entries.push(Entry { name: "exact_batch_f32", median_us: slow_us, rows: n, k });
    speedup
}

/// Router overhead: the same query sweep against one `annd` server
/// directly vs through a one-shard router in front of it. The delta is
/// the price of the extra hop + merge (no speedup expected — this pair
/// tracks that the scatter-gather layer stays thin).
fn bench_router_overhead(entries: &mut Vec<Entry>, n: usize, nq: usize, repeats: usize) {
    use serve::client::Client;
    use serve::router::{Router, RouterConfig, ShardSpec};
    use serve::server::Server;

    let dim = 32;
    let k = 10;
    let dir = std::env::temp_dir().join(format!("bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let data = bench_data(n, dim);
    let queries = data.sample_queries(nq, 0x7a21);
    let fvecs = dir.join("bench.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).expect("write fvecs");

    let server = Server::bind(serve::catalog::Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind server")
        .with_snapshot_dir(&dir);
    let saddr = server.local_addr().unwrap();
    let shandle = std::thread::spawn(move || server.run().expect("server loop"));
    let mut direct = Client::connect(saddr).expect("connect server");
    direct
        .build_live("bench", "linear", "euclidean", fvecs.to_str().unwrap(), 0, n + 1, 4)
        .expect("build");

    let config = RouterConfig::new(vec![ShardSpec {
        primary: saddr.to_string(),
        replicas: Vec::new(),
    }]);
    let router = Router::bind(config, "127.0.0.1:0", 2).expect("bind router");
    let raddr = router.local_addr().unwrap();
    let rhandle = std::thread::spawn(move || router.run().expect("router loop"));
    let mut routed = Client::connect(raddr).expect("connect router");

    let req = SearchRequest::top_k(k).budget(64);
    let sweep = |c: &mut Client| -> Vec<dataset::exact::Neighbor> {
        let mut all = Vec::with_capacity(nq * k);
        for qi in 0..nq {
            all.extend(c.search("bench", queries.get(qi), &req).expect("search").0);
        }
        all
    };
    assert_bit_identical("router hop", &sweep(&mut routed), &sweep(&mut direct));

    let direct_us = median_us(repeats, || sweep(&mut direct));
    let routed_us = median_us(repeats, || sweep(&mut routed));

    println!(
        "bench_report: router hop ({nq} queries over {n}×{dim}): direct {direct_us}us vs \
         routed {routed_us}us ({:.2}x overhead, top-k bit-identical)",
        routed_us as f64 / direct_us.max(1) as f64
    );
    entries.push(Entry { name: "search_direct", median_us: direct_us, rows: n, k });
    entries.push(Entry { name: "search_router", median_us: routed_us, rows: n, k });

    routed.shutdown().expect("router shutdown");
    rhandle.join().expect("router thread");
    direct.shutdown().expect("server shutdown");
    shandle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Observability tax: the same wire sweep with every request carrying a
/// TRACE section and the server's slow-query comparator armed (at a
/// threshold the sweep never crosses, so the hot path pays the check
/// but stderr stays quiet) vs plain legacy frames. Pins the promise
/// that instrumentation costs ≤5% — the run fails if it doesn't.
fn bench_instrumented_search(entries: &mut Vec<Entry>, n: usize, nq: usize, repeats: usize) {
    use serve::client::Client;
    use serve::server::Server;

    let dim = 32;
    let k = 10;
    let dir = std::env::temp_dir().join(format!("bench-instr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let data = bench_data(n, dim);
    let queries = data.sample_queries(nq, 0x3d41);
    let fvecs = dir.join("bench.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).expect("write fvecs");

    let server = Server::bind(serve::catalog::Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind server")
        .with_snapshot_dir(&dir);
    let saddr = server.local_addr().unwrap();
    let shandle = std::thread::spawn(move || server.run().expect("server loop"));
    let mut client = Client::connect(saddr).expect("connect server");
    client
        .build_live("bench", "linear", "euclidean", fvecs.to_str().unwrap(), 0, n + 1, 4)
        .expect("build");

    obs::set_slow_query_micros(u64::MAX);
    let trace = obs::TraceContext::mint();
    let req = SearchRequest::top_k(k).budget(64);
    let sweep = |c: &mut Client, traced: bool| -> Vec<dataset::exact::Neighbor> {
        let mut all = Vec::with_capacity(nq * k);
        for qi in 0..nq {
            c.trace = traced.then(|| trace.child());
            all.extend(c.search("bench", queries.get(qi), &req).expect("search").0);
        }
        c.trace = None;
        all
    };
    assert_bit_identical(
        "instrumented sweep",
        &sweep(&mut client, true),
        &sweep(&mut client, false),
    );

    // Two interleaved rounds, min-of-medians: wire sweeps are noisy and
    // the 5% gate must not flake on scheduler jitter.
    let mut plain_us = u64::MAX;
    let mut instr_us = u64::MAX;
    for _ in 0..2 {
        plain_us = plain_us.min(median_us(repeats, || sweep(&mut client, false)));
        instr_us = instr_us.min(median_us(repeats, || sweep(&mut client, true)));
    }
    obs::set_slow_query_micros(0);

    println!(
        "bench_report: instrumented sweep ({nq} queries over {n}×{dim}): traced {instr_us}us \
         vs plain {plain_us}us ({:.2}x overhead, top-k bit-identical)",
        instr_us as f64 / plain_us.max(1) as f64
    );
    entries.push(Entry { name: "search_plain", median_us: plain_us, rows: n, k });
    entries.push(Entry { name: "search_instrumented", median_us: instr_us, rows: n, k });
    // 5% relative plus a small absolute floor so a quick run's tiny
    // sweep doesn't fail on a single timer quantum.
    assert!(
        instr_us as f64 <= plain_us as f64 * 1.05 + 200.0,
        "tracing + slow-query arming cost {instr_us}us vs {plain_us}us plain — over the 5% budget"
    );

    client.shutdown().expect("server shutdown");
    shandle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Planner tax: the same wire sweep with the knobs the planner picks
/// passed explicitly vs re-derived per request from the calibration
/// table (`target_recall` mode). Both sweeps execute the identical
/// backend search, so the delta is pure planning cost — table clone +
/// grid scan — and the run fails if it exceeds 5%.
fn bench_planned_search(entries: &mut Vec<Entry>, n: usize, nq: usize, repeats: usize) {
    use serve::client::Client;
    use serve::server::Server;

    let dim = 32;
    let k = 10;
    let dir = std::env::temp_dir().join(format!("bench-plan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let data = bench_data(n, dim);
    let queries = data.sample_queries(nq, 0x6b19);
    let fvecs = dir.join("bench.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).expect("write fvecs");

    let server = Server::bind(serve::catalog::Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind server")
        .with_snapshot_dir(&dir);
    let saddr = server.local_addr().unwrap();
    let shandle = std::thread::spawn(move || server.run().expect("server loop"));
    let mut client = Client::connect(saddr).expect("connect server");
    client
        .build_live("bench", "linear", "euclidean", fvecs.to_str().unwrap(), 0, n + 1, 4)
        .expect("build");
    client.calibrate("bench", 16, k).expect("calibrate");

    // One planned probe request reads back the knobs the planner picks,
    // so the manual sweep runs the exact same backend search.
    let mut probe = SearchRequest::top_k(k).target_recall(0.9);
    probe.fields.stats = true;
    let (_, stats) = client.search("bench", queries.get(0), &probe).expect("planned probe");
    let choice = stats.and_then(|s| s.plan).expect("planned search reports its plan");

    let planned_req = SearchRequest::top_k(k).target_recall(0.9);
    let manual_req =
        SearchRequest::top_k(k).budget(choice.budget as usize).probes(choice.probes as usize);
    let sweep = |c: &mut Client, req: &SearchRequest| -> Vec<dataset::exact::Neighbor> {
        let mut all = Vec::with_capacity(nq * k);
        for qi in 0..nq {
            all.extend(c.search("bench", queries.get(qi), req).expect("search").0);
        }
        all
    };
    assert_bit_identical(
        "planned sweep",
        &sweep(&mut client, &planned_req),
        &sweep(&mut client, &manual_req),
    );

    // Interleaved rounds, min-of-medians — same anti-flake shape as the
    // instrumentation gate.
    let mut manual_us = u64::MAX;
    let mut planned_us = u64::MAX;
    for _ in 0..2 {
        manual_us = manual_us.min(median_us(repeats, || sweep(&mut client, &manual_req)));
        planned_us = planned_us.min(median_us(repeats, || sweep(&mut client, &planned_req)));
    }

    println!(
        "bench_report: planned sweep ({nq} queries over {n}×{dim}): planned {planned_us}us vs \
         manual {manual_us}us at budget={} probes={} ({:.2}x overhead, top-k bit-identical)",
        choice.budget,
        choice.probes,
        planned_us as f64 / manual_us.max(1) as f64
    );
    entries.push(Entry { name: "search_manual", median_us: manual_us, rows: n, k });
    entries.push(Entry { name: "search_planned", median_us: planned_us, rows: n, k });
    assert!(
        planned_us as f64 <= manual_us as f64 * 1.05 + 200.0,
        "recall planning cost {planned_us}us vs {manual_us}us manual — over the 5% budget"
    );

    client.shutdown().expect("server shutdown");
    shandle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (snap_n, scan_n, nq, repeats) =
        if opts.quick { (4_096, 1_024, 16, 3) } else { (32_768, 8_192, 64, 7) };
    let commit = git_commit();
    let mut entries = Vec::new();

    bench_cold_start(&mut entries, snap_n, repeats);
    let live_speedup = bench_live_scan(&mut entries, scan_n, nq, repeats);
    let exact_speedup = bench_exact_batch(&mut entries, scan_n, nq, repeats);
    bench_router_overhead(&mut entries, scan_n, nq, repeats);
    bench_instrumented_search(&mut entries, scan_n, nq, repeats);
    bench_planned_search(&mut entries, scan_n, nq, repeats);

    let mut json = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "  \"{}\": {{ \"median_us\": {}, \"rows\": {}, \"k\": {}, \"commit\": \"{}\" }}{}\n",
            e.name, e.median_us, e.rows, e.k, commit, comma
        ));
    }
    json.push_str("}\n");
    let mut f = std::fs::File::create(&opts.out).expect("create report file");
    f.write_all(json.as_bytes()).expect("write report");
    println!("bench_report: wrote {} ({} entries, commit {commit})", opts.out.display(), entries.len());

    if opts.min_speedup > 0.0 {
        assert!(
            live_speedup >= opts.min_speedup,
            "live sweep speedup {live_speedup:.2}x below required {:.2}x",
            opts.min_speedup
        );
        assert!(
            exact_speedup >= opts.min_speedup,
            "exact batch speedup {exact_speedup:.2}x below required {:.2}x",
            opts.min_speedup
        );
        println!("bench_report: both SQ8 sweeps clear the {:.2}x floor", opts.min_speedup);
    }
}
