//! Regenerates the paper's fig5. See `eval::experiments::fig5`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig5::run(&opts).expect("experiment failed");
}
