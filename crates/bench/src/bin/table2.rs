//! Regenerates the paper's table2. See `eval::experiments::table2`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::table2::run(&opts).expect("experiment failed");
}
