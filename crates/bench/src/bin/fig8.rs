//! Regenerates the paper's fig8. See `eval::experiments::fig8`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig8::run(&opts).expect("experiment failed");
}
