//! Regenerates the paper's fig4. See `eval::experiments::fig4`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig4::run(&opts).expect("experiment failed");
}
