//! Regenerates the paper's fig6. See `eval::experiments::fig6`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig6::run(&opts).expect("experiment failed");
}
