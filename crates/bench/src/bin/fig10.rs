//! Regenerates the paper's fig10. See `eval::experiments::fig10`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig10::run(&opts).expect("experiment failed");
}
