//! Regenerates the paper's fig9. See `eval::experiments::fig9`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig9::run(&opts).expect("experiment failed");
}
