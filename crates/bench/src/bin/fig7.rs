//! Regenerates the paper's fig7. See `eval::experiments::fig7`.
fn main() {
    let opts = eval::experiments::ExpOptions::parse(std::env::args().skip(1));
    eval::experiments::fig7::run(&opts).expect("experiment failed");
}
