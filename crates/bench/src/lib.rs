//! Benchmark harness for the LCCS-LSH reproduction.
//!
//! * **Per-figure binaries** (`src/bin/`): `table1`, `table2`, `fig4` …
//!   `fig10` — each regenerates one table/figure of the paper's §6 and
//!   writes its TSV series (see `eval::experiments` and EXPERIMENTS.md).
//!   All accept `--n`, `--queries`, `--k`, `--seed`, `--out`, `--full`.
//! * **Criterion micro-benches** (`benches/`): `csa` (Algorithm 1 build and
//!   Algorithm 2 k-LCCS search), `families` (per-family hashing cost
//!   η(d)), and `queries` (end-to-end query paths of every scheme).
//!
//! Where this harness sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]

/// Shared fixture: a clustered workload for the micro-benches.
pub fn bench_data(n: usize, dim: usize) -> dataset::Dataset {
    dataset::SynthSpec::new("bench", n, dim).with_clusters(16).generate(0xbe8c)
}
