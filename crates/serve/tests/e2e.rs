//! End-to-end serving test: build → snapshot to disk → load by a real
//! TCP server → query over the wire → results byte-identical to
//! in-process `query_batch` on the originally built index.

use ann::{AnnIndex, SearchParams, SearchRequest};
use dataset::exact::Neighbor;
use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};
use serve::catalog::Catalog;
use serve::client::{Client, ClientError};
use serve::server::Server;
use serve::snapshot::write_index_snapshot;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn bits(lists: &[Vec<Neighbor>]) -> Vec<Vec<(u32, u64)>> {
    lists
        .iter()
        .map(|ns| ns.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

struct Fixture {
    dir: PathBuf,
    data: Arc<dataset::Dataset>,
    single: LccsLsh,
    mp: MpLccsLsh,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Builds both LCCS schemes over a clustered synthetic dataset and
/// snapshots them into a fresh temp directory.
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("annd-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = Arc::new(SynthSpec::new("e2e", 800, 24).with_clusters(12).generate(17));
    let params = LccsParams::euclidean(8.0).with_m(16).with_seed(99);
    let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
    let mp = MpLccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &params,
        MpParams { probes: 9, max_alts: 8 },
    );
    let meta = serve::snapshot::SnapMeta::of_build(
        &"lccs:m=16,w=8,seed=99".parse().unwrap(),
        0.5,
        data.len() as u64,
    );
    write_index_snapshot(&dir, "e2e-lccs", &single, &data, Some(meta)).unwrap();
    write_index_snapshot(&dir, "e2e-mp", &mp, &data, None).unwrap();
    Fixture { dir, data, single, mp }
}

/// Starts a server over the fixture's snapshot dir on an ephemeral port.
fn start_server(fx: &Fixture, workers: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let catalog = Catalog::load_dir(&fx.dir).expect("load snapshot dir");
    assert_eq!(catalog.len(), 2);
    let server = Server::bind(catalog, "127.0.0.1:0", workers).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    (addr, handle)
}

#[test]
fn served_results_are_byte_identical_to_in_process() {
    let fx = fixture("identical");
    let (addr, handle) = start_server(&fx, 2);
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    // LIST describes both snapshots, in name order, with their specs.
    let infos = client.list().unwrap();
    let names: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["e2e-lccs", "e2e-mp"]);
    assert_eq!(infos[0].method, "LCCS-LSH");
    assert_eq!(infos[1].method, "MP-LCCS-LSH");
    assert_eq!(infos[0].len, 800);
    assert_eq!(infos[0].dim, 24);
    assert_eq!(infos[0].spec, "lccs:m=16,w=8,seed=99", "meta spec surfaces in LIST");
    assert_eq!(infos[1].spec, "", "meta-less snapshot lists an empty spec");

    let queries = fx.data.sample_queries(37, 5);
    let params = SearchParams::new(10, 64);

    // Batch over TCP == in-process query_batch on the original index.
    let local = AnnIndex::query_batch(&fx.single, &queries, &params);
    let remote = client.query_batch("e2e-lccs", 10, 64, 0, &queries).unwrap();
    assert_eq!(bits(&remote), bits(&local), "LCCS-LSH batch must be byte-identical");

    let local_mp = AnnIndex::query_batch(&fx.mp, &queries, &params);
    let remote_mp = client.query_batch("e2e-mp", 10, 64, 0, &queries).unwrap();
    assert_eq!(bits(&remote_mp), bits(&local_mp), "MP-LCCS-LSH batch must be byte-identical");

    // Single queries too, including a probes override on the MP index.
    for i in [0usize, 11, 36] {
        let remote = client.query("e2e-lccs", 5, 48, 0, queries.get(i)).unwrap();
        let local = AnnIndex::query(&fx.single, queries.get(i), &SearchParams::new(5, 48));
        assert_eq!(bits(&[remote]), bits(&[local]), "query {i}");

        let remote = client.query("e2e-mp", 5, 48, 17, queries.get(i)).unwrap();
        let local =
            AnnIndex::query(&fx.mp, queries.get(i), &SearchRequest::top_k(5).budget(48).probes(17).params());
        assert_eq!(bits(&[remote]), bits(&[local]), "mp query {i} with probe override");
    }

    // STATS saw every request against the right index, and carries specs.
    let stats = client.stats().unwrap();
    let lccs = stats.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.spec, "lccs:m=16,w=8,seed=99", "spec rides along in STATS");
    assert_eq!(lccs.queries, 3);
    assert_eq!(lccs.batch_requests, 1);
    assert_eq!(lccs.batch_queries, 37);
    let mp = stats.iter().find(|s| s.name == "e2e-mp").unwrap();
    assert_eq!(mp.queries, 3);
    assert_eq!(mp.batch_requests, 1);

    // Graceful shutdown: run() returns and the thread joins.
    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

#[test]
fn bad_requests_get_error_responses_not_disconnects() {
    let fx = fixture("errors");
    let (addr, handle) = start_server(&fx, 1);
    let mut client = Client::connect(addr).unwrap();

    let err = client.query("nope", 5, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("no such index")), "{err}");

    let err = client.query("e2e-lccs", 5, 32, 0, &[1.0, 2.0]).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("dimension mismatch")), "{err}");

    let err = client.query("e2e-lccs", 0, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("k must be")), "{err}");

    // A hostile k must be rejected, not allocate a k-sized heap.
    let err = client.query("e2e-lccs", u32::MAX as usize, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("exceeds")), "{err}");

    // The connection survives all three errors.
    client.ping().unwrap();

    // Stats counted no queries (validation failures are not served queries).
    let stats = client.stats().unwrap();
    assert!(stats.iter().all(|s| s.queries == 0 && s.batch_requests == 0));

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

#[test]
fn build_over_the_wire_matches_in_process_build_bit_for_bit() {
    // The PR-3 acceptance path: gen an .fvecs dataset, BUILD from a spec
    // string against a live annd, query over the wire, and compare
    // byte-for-byte with an in-process build of the same spec — then
    // check the written .snap carries the spec for `describe`.
    let dir = std::env::temp_dir().join(format!("annd-build-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Server-side dataset file.
    let synth = SynthSpec::new("buildset", 600, 20).with_clusters(10);
    let data = Arc::new(synth.generate(33));
    let fvecs = dir.join("buildset.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    // Empty catalog + snapshot dir: everything arrives via BUILD.
    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    let spec_text = "mp-lccs:m=16,w=8,seed=123";
    let (info, build_micros, snapshot_path) = client
        .build("live-mp", spec_text, "euclidean", fvecs.to_str().unwrap(), 0)
        .expect("BUILD");
    assert_eq!(info.name, "live-mp");
    assert_eq!(info.method, "MP-LCCS-LSH");
    assert_eq!(info.spec, spec_text, "catalog serves the originating spec");
    assert_eq!((info.len, info.dim), (600, 20));
    assert!(build_micros > 0);
    assert!(snapshot_path.ends_with("live-mp.snap"), "{snapshot_path}");

    // Same spec built in-process through the registry must answer
    // byte-identically over the wire.
    let spec: ann::IndexSpec = spec_text.parse().unwrap();
    let (local, _) = eval::registry::build_index_persist(
        &spec,
        &eval::registry::BuildCtx { data: &data, metric: dataset::Metric::Euclidean },
    )
    .expect("in-process build");
    let queries = data.sample_queries(23, 7);
    let params = SearchRequest::top_k(10).budget(64).probes(17).params();
    let expected = bits(&local.query_batch(&queries, &params));
    let remote = client.query_batch("live-mp", 10, 64, 17, &queries).unwrap();
    assert_eq!(bits(&remote), expected, "wire answers must be byte-identical");

    // The written snapshot carries the spec and provenance...
    let snap = serve::snapshot::Snapshot::read_from(std::path::Path::new(&snapshot_path))
        .expect("read built snapshot");
    let meta = snap.meta.expect("BUILD attaches meta");
    assert_eq!(meta.spec, spec_text);
    assert_eq!(meta.seed, 123);
    assert_eq!(meta.w, 8.0);
    assert_eq!(meta.source_rows, 600);

    // ...and a restarted server (fresh catalog off the same dir) serves
    // the built index with identical answers.
    let reloaded = Catalog::load_dir(&dir).expect("reload snapshot dir");
    assert_eq!(reloaded.len(), 1);
    let served = reloaded.get("live-mp").unwrap();
    assert_eq!(served.spec, spec_text);
    let serve::catalog::Backend::Static { index: reloaded_index, .. } = &served.backend else {
        panic!("BUILD without --live restores a static entry");
    };
    assert_eq!(bits(&reloaded_index.query_batch(&queries, &params)), expected);

    // BUILD onto an existing name replaces the entry (new seed, new spec).
    let (info2, _, _) = client
        .build("live-mp", "mp-lccs:m=16,w=8,seed=124", "euclidean", fvecs.to_str().unwrap(), 0)
        .expect("replacing BUILD");
    assert_eq!(info2.spec, "mp-lccs:m=16,w=8,seed=124");
    let infos = client.list().unwrap();
    assert_eq!(infos.len(), 1, "install replaced, not duplicated");

    // Names are file names under the snapshot dir: traversal is rejected.
    for evil in ["../evil", "a/b", "..", ".hidden", "a\\b"] {
        let err = client
            .build(evil, "lccs:m=8", "euclidean", fvecs.to_str().unwrap(), 0)
            .unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(m) if m.contains("bad catalog name")),
            "{evil:?}: {err}"
        );
    }
    assert!(!dir.join("../evil.snap").exists());

    // Replacing with a non-persisting scheme must also drop the stale
    // snapshot, or a restart would resurrect the old index under the name.
    let (info3, _, snap3) = client
        .build("live-mp", "e2lsh:k=2,l=4,w=8,seed=5", "euclidean", fvecs.to_str().unwrap(), 0)
        .expect("non-persisting replace");
    assert_eq!(info3.method, "E2LSH");
    assert!(snap3.is_empty(), "e2lsh writes no snapshot");
    assert!(!dir.join("live-mp.snap").exists(), "stale snapshot removed");
    assert!(Catalog::load_dir(&dir).unwrap().get("live-mp").is_none());

    // Build errors come back as protocol errors, not disconnects.
    let err = client
        .build("bad", "hnsw:m=16", "euclidean", fvecs.to_str().unwrap(), 0)
        .unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("unknown scheme")), "{err}");
    // Grammar-valid specs that a builder's own invariants reject (LCCS
    // wants m >= 2) must error too — a panic here would kill the worker
    // and drop the connection instead.
    let err = client
        .build("bad", "lccs:m=1", "euclidean", fvecs.to_str().unwrap(), 0)
        .unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("rejected")), "{err}");
    // The same worker (pool of 2, same connection) still answers.
    client.ping().unwrap();
    let err = client
        .build("bad", "lccs:m=16", "manhattan", fvecs.to_str().unwrap(), 0)
        .unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("unknown metric")), "{err}");
    let err = client.build("bad", "lccs:m=16", "euclidean", "/no/such/file.fvecs", 0).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("loading dataset")), "{err}");
    client.ping().unwrap();

    client.shutdown().unwrap();
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_index_mutates_over_the_wire_and_survives_a_restart() {
    // The PR-4 acceptance path: BUILD --live → INSERT (auto + explicit
    // ids, read-your-writes) → DELETE (memtable + sealed rows) → FLUSH →
    // kill the daemon → restart from the flushed .snap → answers are
    // byte-identical to the pre-restart ones.
    let dir = std::env::temp_dir().join(format!("annd-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let data = Arc::new(SynthSpec::new("liveset", 300, 16).with_clusters(8).generate(51));
    let fvecs = dir.join("liveset.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    // BUILD --live: the dataset seals into segment 0, small thresholds so
    // the wire traffic below exercises seal + compaction.
    let spec_text = "lccs:m=8,w=8,seed=77";
    let (info, _, snap_path) = client
        .build_live("lv", spec_text, "euclidean", fvecs.to_str().unwrap(), 0, 64, 3)
        .expect("BUILD --live");
    assert_eq!(info.method, "Live");
    assert_eq!(info.spec, spec_text);
    assert_eq!((info.len, info.dim), (300, 16));
    assert!(snap_path.ends_with("lv.snap"), "{snap_path}");

    // INSERT with auto ids continues the id space; read-your-writes on
    // the same connection: the fresh row is immediately findable.
    let extra = SynthSpec::new("extra", 100, 16).with_clusters(4).generate(52);
    let ids = client.insert("lv", &extra, None).expect("INSERT");
    assert_eq!(ids, (300..400).collect::<Vec<u32>>());
    let hit = client.query("lv", 1, 64, 0, extra.get(0)).unwrap();
    assert_eq!(hit[0].id, 300, "read-your-writes");
    assert_eq!(hit[0].dist, 0.0);

    // Explicit ids; re-using a live one is a clean error.
    let one = SynthSpec::new("one", 1, 16).generate(53);
    assert_eq!(client.insert("lv", &one, Some(&[5000])).unwrap(), vec![5000]);
    let err = client.insert("lv", &one, Some(&[5000])).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("already live")), "{err}");

    // DELETE hits both sealed rows (id 3) and memtable rows; absent ids
    // are counted out, not errors.
    let removed = client.delete("lv", &[3, 399, 999_999]).expect("DELETE");
    assert_eq!(removed, 2);
    let hits = client.query("lv", 5, 64, 0, data.get(3)).unwrap();
    assert!(hits.iter().all(|n| n.id != 3), "deleted sealed row filtered");

    // Writes are observable in STATS.
    let stats = client.stats().unwrap();
    let lv = stats.iter().find(|s| s.name == "lv").unwrap();
    assert_eq!(lv.inserts, 101, "insert counter counts rows");
    assert_eq!(lv.deletes, 2);
    assert_eq!(lv.flushes, 0);

    // Writes against a static entry are clean errors.
    client
        .build("frozen", "lccs:m=8,w=8,seed=1", "euclidean", fvecs.to_str().unwrap(), 0)
        .expect("static BUILD");
    let err = client.insert("frozen", &one, None).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("read-only")), "{err}");
    let err = client.delete("frozen", &[1]).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("read-only")), "{err}");
    let err = client.flush("frozen").unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("read-only")), "{err}");

    // FLUSH: seals the memtable and persists the live structure.
    let (flush_path, segments, live_rows) = client.flush("lv").expect("FLUSH");
    assert!(flush_path.ends_with("lv.snap"), "{flush_path}");
    assert!((1..=3).contains(&segments), "compaction caps segments, got {segments}");
    assert_eq!(live_rows, 399);
    let stats = client.stats().unwrap();
    assert_eq!(stats.iter().find(|s| s.name == "lv").unwrap().flushes, 1);

    // Record the answers the live daemon serves right now...
    let queries = data.sample_queries(20, 9);
    let params_k = 10;
    let before = client.query_batch("lv", params_k, 64, 0, &queries).unwrap();
    let before_single = client.query("lv", 1, 64, 0, extra.get(7)).unwrap();

    // ...kill the daemon, restart over the same snapshot dir...
    client.shutdown().unwrap();
    handle.join().expect("server thread");
    let catalog = Catalog::load_dir(&dir).expect("reload");
    let served = catalog.get("lv").expect("flushed live index survives restart");
    assert_eq!(served.method, "Live");
    assert_eq!(served.spec, spec_text);
    let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("rebind").with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    // ...and the reloaded index answers byte-identically.
    let after = client.query_batch("lv", params_k, 64, 0, &queries).unwrap();
    assert_eq!(bits(&after), bits(&before), "restart must not change answers");
    let after_single = client.query("lv", 1, 64, 0, extra.get(7)).unwrap();
    assert_eq!(bits(&[after_single]), bits(&[before_single]));

    // The restarted index is still mutable, ids keep ascending past
    // everything ever assigned (5000 steered the counter).
    let ids = client.insert("lv", &one, None).unwrap();
    assert_eq!(ids, vec![5001]);
    assert_eq!(client.delete("lv", &[5001]).unwrap(), 1);

    client.shutdown().unwrap();
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}

/// The PR-7 tentpole acceptance path: acknowledged INSERT/DELETE with
/// **no FLUSH**, then the daemon dies (the server goes down with the
/// memtable unpersisted — exactly what a `kill -9` leaves behind; the
/// smoke script does it with a real SIGKILL on a real process). Restart
/// replays `<name>.wal` over the last snapshot and must serve every
/// acknowledged row, byte-identically to the pre-crash answers. A torn
/// WAL tail (crash mid-append) is discarded, not fatal.
#[test]
fn acknowledged_writes_survive_a_crash_and_replay_from_the_wal() {
    let dir = std::env::temp_dir().join(format!("annd-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let data = Arc::new(SynthSpec::new("crashset", 200, 12).with_clusters(6).generate(61));
    let fvecs = dir.join("crashset.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    // Two live entries cover both recovery regimes:
    //  - "wal-mem": big threshold, every post-BUILD write stays in the
    //    memtable — replay rebuilds a pure memtable tail.
    //  - "wal-seal": tiny threshold, writes cross it repeatedly — replay
    //    must reproduce seals and compactions too (exact spec, so the
    //    answers are insensitive to how far the background sealer got
    //    before the crash).
    client
        .build_live("wal-mem", "lccs:m=8,w=8,seed=21", "euclidean", fvecs.to_str().unwrap(), 0, 1000, 4)
        .expect("BUILD --live wal-mem");
    client
        .build_live("wal-seal", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 16, 2)
        .expect("BUILD --live wal-seal");

    // Acknowledged writes, never flushed.
    let extra = SynthSpec::new("extra", 40, 12).with_clusters(3).generate(62);
    let mem_ids = client.insert("wal-mem", &extra, None).expect("INSERT wal-mem");
    assert_eq!(mem_ids, (200..240).collect::<Vec<u32>>());
    assert_eq!(client.delete("wal-mem", &[3, 201]).expect("DELETE"), 2);
    for chunk in 0..4 {
        let rows = SynthSpec::new("seal", 10, 12).generate(70 + chunk);
        client.insert("wal-seal", &rows, None).expect("INSERT wal-seal");
    }
    assert_eq!(client.delete("wal-seal", &[5, 210, 999_999]).expect("DELETE"), 2);

    // Both logs exist and are non-empty (header + records).
    for name in ["wal-mem", "wal-seal"] {
        let wal = dir.join(format!("{name}.wal"));
        assert!(wal.exists(), "{name} has a WAL");
        assert!(std::fs::metadata(&wal).unwrap().len() > 16, "{name} WAL has records");
    }

    // Answers the daemon acknowledged and serves right now...
    let queries = data.sample_queries(15, 5);
    let before_mem = client.query_batch("wal-mem", 8, 64, 0, &queries).unwrap();
    let before_seal = client.query_batch("wal-seal", 8, 64, 0, &queries).unwrap();
    let before_fresh = client.query("wal-mem", 1, 64, 0, extra.get(7)).unwrap();
    assert_eq!(before_fresh[0].id, 207, "acked row is served pre-crash");
    assert_eq!(before_fresh[0].dist, 0.0);

    // ...the daemon dies without flushing anything...
    client.shutdown().unwrap();
    handle.join().expect("server thread");

    // ...and a restart replays the WALs: every acknowledged write is
    // still there, answers byte-identical.
    let catalog = Catalog::load_dir(&dir).expect("reload with WAL replay");
    let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("rebind").with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    let after_mem = client.query_batch("wal-mem", 8, 64, 0, &queries).unwrap();
    assert_eq!(bits(&after_mem), bits(&before_mem), "memtable-tail replay is byte-identical");
    let after_seal = client.query_batch("wal-seal", 8, 64, 0, &queries).unwrap();
    assert_eq!(bits(&after_seal), bits(&before_seal), "sealed-path replay is byte-identical");
    let after_fresh = client.query("wal-mem", 1, 64, 0, extra.get(7)).unwrap();
    assert_eq!(bits(&[after_fresh]), bits(&[before_fresh]), "acked row survives the crash");
    let gone = client.query_batch("wal-mem", 8, 64, 0, &queries).unwrap();
    assert!(
        gone.iter().flatten().all(|n| n.id != 3 && n.id != 201),
        "acked deletes survive the crash too"
    );

    client.shutdown().unwrap();
    handle.join().expect("server thread");

    // Torn tail: garbage after the last complete record (what a crash
    // mid-append leaves) is logged + discarded, never fatal, and every
    // complete record still replays.
    use std::io::Write as _;
    let wal = dir.join("wal-seal.wal");
    let clean_len = std::fs::metadata(&wal).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0xFF; 7]).unwrap();
    drop(f);
    let catalog = Catalog::load_dir(&dir).expect("torn tail must not fail the load");
    let served = catalog.get("wal-seal").expect("entry survives");
    let serve::catalog::Backend::Live(lock) = &served.backend else { panic!("live entry") };
    let live = lock.read().unwrap();
    let p = SearchRequest::top_k(8).budget(64).params();
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            bits(&[AnnIndex::query(&*live, q, &p)]),
            bits(&[before_seal[qi].clone()]),
            "query {qi} after torn-tail recovery"
        );
    }
    // The load physically truncated the junk back off.
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), clean_len, "tail truncated");

    std::fs::remove_dir_all(&dir).ok();
}

/// PR-7 background-seal acceptance: a writer streams inserts that cross
/// the seal threshold over and over while reader connections query the
/// same entry — every query must be answered (the rebuilds happen off
/// the request path), and STATS must show the background sealer
/// installing builds.
#[test]
fn queries_are_answered_while_background_seals_run() {
    let dir = std::env::temp_dir().join(format!("annd-sealer-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let data = Arc::new(SynthSpec::new("sealset", 128, 16).with_clusters(6).generate(91));
    let fvecs = dir.join("sealset.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 4)
        .expect("bind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    client
        .build_live("hot", "lccs:m=8,w=8,seed=13", "euclidean", fvecs.to_str().unwrap(), 0, 64, 2)
        .expect("BUILD --live");

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: 24 bursts of 25 rows cross the 64-row threshold many
        // times; every crossing queues a background seal (and its
        // compactions), none of which may block the readers below.
        scope.spawn(|| {
            let mut w = Client::connect(addr).unwrap();
            for burst in 0..24u64 {
                let rows = SynthSpec::new("burst", 25, 16).generate(1000 + burst);
                w.insert("hot", &rows, None).expect("INSERT during seals");
            }
            done.store(true, Ordering::SeqCst);
        });
        // Readers: hammer the entry until the writer finishes; every
        // single query must succeed.
        for r in 0..2 {
            let done = &done;
            let data = Arc::clone(&data);
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut answered = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let hits = c
                        .query("hot", 5, 64, 0, data.get((answered % 128) as usize))
                        .expect("query during an in-flight background seal");
                    assert!(!hits.is_empty());
                    answered += 1;
                }
                assert!(answered > 0, "reader {r} observed the ingest window");
            });
        }
    });

    // The background sealer did real work (polling briefly: the last
    // burst's build may still be in flight) and read-your-writes held
    // throughout — all 728 rows are live.
    let mut seals = 0;
    for _ in 0..100 {
        let s = client.stats().unwrap();
        let hot = s.into_iter().find(|s| s.name == "hot").unwrap();
        assert_eq!(hot.inserts, 600, "insert counter counts rows");
        seals = hot.seals;
        if seals > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let info = client.list().unwrap().into_iter().find(|i| i.name == "hot").unwrap();
    assert_eq!(info.len, 128 + 600, "every acked row is served");
    assert!(seals > 0, "background sealer installed at least one build");

    client.shutdown().unwrap();
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_v2_snapshots_without_spec_still_serve() {
    // A PR-2-era container (no META section) loads, serves, and reports
    // an empty/unknown spec everywhere.
    let fx = fixture("backcompat");
    // fixture() writes e2e-mp with meta: None — byte-compatible with the
    // PR-2 writer. Serve it and check the unknown-spec path end to end.
    let (addr, handle) = start_server(&fx, 1);
    let mut client = Client::connect(addr).unwrap();
    let info = client.list().unwrap().into_iter().find(|i| i.name == "e2e-mp").unwrap();
    assert_eq!(info.spec, "", "pre-v2 snapshot serves with an unknown spec");
    let remote = client.query("e2e-mp", 5, 48, 0, fx.data.get(3)).unwrap();
    let local = AnnIndex::query(&fx.mp, fx.data.get(3), &SearchParams::new(5, 48));
    assert_eq!(bits(&[remote]), bits(&[local]));
    client.shutdown().unwrap();
    handle.join().expect("server thread");

    // And `describe`'s decode path agrees: meta is None.
    let snap =
        serve::snapshot::Snapshot::read_from(&fx.dir.join("e2e-mp.snap")).expect("read");
    assert!(snap.meta.is_none());
}

#[test]
fn concurrent_connections_share_the_catalog() {
    let fx = fixture("concurrent");
    let (addr, handle) = start_server(&fx, 4);

    let queries = fx.data.sample_queries(16, 9);
    let expected = bits(&AnnIndex::query_batch(&fx.single, &queries, &SearchParams::new(5, 32)));
    let expected = Arc::new(expected);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let expected = expected.clone();
            let queries = &queries;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    let got = client.query_batch("e2e-lccs", 5, 32, 0, queries).unwrap();
                    assert_eq!(&bits(&got), expected.as_ref());
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let lccs = stats.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.batch_requests, 12);
    assert_eq!(lccs.batch_queries, 12 * 16);

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// The PR-5 acceptance path: filtered and range SEARCH over real TCP,
/// byte-identical to an in-process brute-force oracle, with the stats
/// section present exactly when asked for and the scanned counter
/// surfacing in STATS.
#[test]
fn filtered_and_range_search_over_the_wire_matches_brute_force_oracle() {
    use dataset::ExactKnn;

    let data = Arc::new(SynthSpec::new("wire-filter", 500, 12).with_clusters(8).generate(77));
    let exact_index = eval::registry::build_index(
        &ann::IndexSpec::linear(),
        &eval::registry::BuildCtx { data: &data, metric: Metric::Euclidean },
    )
    .expect("linear builds everywhere");
    let mut catalog = Catalog::empty();
    catalog
        .install("exact".into(), "Linear".into(), "linear".into(), exact_index, data.clone())
        .unwrap();
    let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();

    let oracle = |q: &[f32], k: usize, accepts: &dyn Fn(u32) -> bool, max: Option<f64>| {
        vec![ExactKnn::single_query_filtered(&data, q, k, Metric::Euclidean, accepts, max)]
    };

    let allow: Vec<u32> = (0..500).filter(|i| i % 7 == 0).collect();
    let deny: Vec<u32> = (0..500).filter(|i| i % 11 == 0).collect();
    let queries = data.sample_queries(9, 3);
    for (qi, q) in queries.iter().enumerate() {
        // Allowlist.
        let req = ann::SearchRequest::top_k(5).budget(1).filter(ann::IdFilter::allow(allow.clone()));
        let (hits, stats) = client.search("exact", q, &req).unwrap();
        assert!(stats.is_none(), "stats section only when requested");
        assert_eq!(bits(&[hits]), bits(&oracle(q, 5, &|id| id % 7 == 0, None)), "allow q{qi}");

        // Denylist with stats.
        let req = ann::SearchRequest::top_k(5)
            .budget(1)
            .filter(ann::IdFilter::deny(deny.clone()))
            .with_stats();
        let (hits, stats) = client.search("exact", q, &req).unwrap();
        let stats = stats.expect("stats requested");
        // The default (non-LCCS) search path reports returned-candidate
        // counts — a documented lower bound that must cover the deny
        // over-fetch (k + |denylist| candidates were surfaced).
        assert!(
            stats.candidates_scanned >= (5 + deny.len()) as u64,
            "scanned lower bound, got {}",
            stats.candidates_scanned
        );
        assert_eq!(bits(&[hits]), bits(&oracle(q, 5, &|id| id % 11 != 0, None)), "deny q{qi}");

        // Range search: threshold at the true 3rd-NN distance ⇒ exactly
        // three of the requested ten qualify.
        let third = ExactKnn::single_query(&data, q, 3, Metric::Euclidean)[2].dist;
        let req = ann::SearchRequest::top_k(10).budget(1).max_dist(third);
        let (hits, _) = client.search("exact", q, &req).unwrap();
        assert_eq!(hits.len(), 3, "range q{qi}");
        assert_eq!(bits(&[hits]), bits(&oracle(q, 10, &|_| true, Some(third))), "range q{qi}");

        // Filter + threshold compose.
        let req = ann::SearchRequest::top_k(10)
            .budget(1)
            .filter(ann::IdFilter::deny(deny.clone()))
            .max_dist(third * 2.0);
        let (hits, _) = client.search("exact", q, &req).unwrap();
        assert_eq!(
            bits(&[hits]),
            bits(&oracle(q, 10, &|id| id % 11 != 0, Some(third * 2.0))),
            "combined q{qi}"
        );
    }

    // A SEARCH with no optional sections answers exactly like QUERY.
    let q = queries.get(0);
    let (via_search, _) =
        client.search("exact", q, &ann::SearchRequest::top_k(6).budget(1)).unwrap();
    let via_query = client.query("exact", 6, 1, 0, q).unwrap();
    assert_eq!(bits(&[via_search]), bits(&[via_query]));

    // Bad requests are typed errors, and validation runs the shared rule.
    let err = client
        .search("exact", q, &ann::SearchRequest::top_k(501).budget(1))
        .unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("exceeds")), "{err}");
    let err = client
        .search("exact", q, &ann::SearchRequest::top_k(1).max_dist(f64::NAN))
        .unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("max_dist")), "{err}");

    // The cumulative scanned counter reached STATS: at minimum the 9
    // range searches each surfaced a full-fetch candidate list (the
    // threshold path over-fetches the whole index before post-filtering).
    let stats = client.stats().unwrap();
    let exact = stats.iter().find(|s| s.name == "exact").unwrap();
    assert!(
        exact.candidates_scanned >= 9 * 500,
        "scanned counter accumulates ({} seen)",
        exact.candidates_scanned
    );

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// Back-compat: QUERY and BATCH frames encoded with the *pre-redesign*
/// byte layout (hand-assembled here, independent of today's encoder)
/// must still decode and be answered byte-identically to the in-process
/// results — a pre-PR-5 client keeps working against a post-PR-5 daemon.
#[test]
fn legacy_query_and_batch_frames_are_answered_unchanged() {
    use serve::protocol::{read_frame, write_frame, Response};
    use std::io::Write as _;

    let fx = fixture("legacy");
    let (addr, handle) = start_server(&fx, 1);

    let put_legacy_header = |out: &mut Vec<u8>, tag: u8, index: &str, k: u32, b: u32, p: u32| {
        out.push(tag);
        out.push(index.len() as u8);
        out.extend_from_slice(index.as_bytes());
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&p.to_le_bytes());
    };

    let queries = fx.data.sample_queries(4, 21);
    let mut stream = std::net::TcpStream::connect(addr).unwrap();

    // Legacy QUERY: tag 3, str8 name, k/budget/probes u32, dim u32, f32s.
    let q = queries.get(2);
    let mut body = Vec::new();
    put_legacy_header(&mut body, 3, "e2e-lccs", 7, 48, 0);
    body.extend_from_slice(&(q.len() as u32).to_le_bytes());
    for v in q {
        body.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    write_frame(&mut stream, &body).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("reply");
    let Response::Neighbors(hits) = Response::decode(&reply).unwrap() else {
        panic!("legacy QUERY must get a NEIGHBORS reply");
    };
    let local = AnnIndex::query(&fx.single, q, &SearchParams::new(7, 48));
    assert_eq!(bits(&[hits]), bits(&[local]), "legacy QUERY answered unchanged");

    // Legacy BATCH: tag 4, str8 name, k/budget/probes u32, dim u32,
    // nq u32, row-major f32s.
    let mut body = Vec::new();
    put_legacy_header(&mut body, 4, "e2e-lccs", 5, 64, 0);
    body.extend_from_slice(&(queries.dim() as u32).to_le_bytes());
    body.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for v in queries.as_flat() {
        body.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    write_frame(&mut stream, &body).unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("reply");
    let Response::Batch(lists) = Response::decode(&reply).unwrap() else {
        panic!("legacy BATCH must get a BATCH reply");
    };
    let local = AnnIndex::query_batch(&fx.single, &queries, &SearchParams::new(5, 64));
    assert_eq!(bits(&lists), bits(&local), "legacy BATCH answered unchanged");

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// The trace section is strictly additive on the wire: a traced frame is
/// the untraced frame plus the 18-byte section, the server answers both
/// identically, and METRICS exposes the Prometheus scrape text with the
/// serving histogram in it.
#[test]
fn traced_frames_interop_and_metrics_scrape() {
    use obs::TraceContext;
    use serve::protocol::{read_frame, write_frame, Request, Response, TRACE_SECTION_LEN};

    let fx = fixture("traced");
    let (addr, handle) = start_server(&fx, 1);

    let q = fx.data.sample_queries(1, 33);
    let req = Request::Query {
        index: "e2e-lccs".into(),
        k: 6,
        budget: 64,
        probes: 0,
        vector: q.get(0).to_vec(),
    };
    let plain = req.encode();
    let ctx = TraceContext { trace_id: 0x1122_3344_5566_7788, span_id: 0x99aa_bbcc_ddee_ff00 };
    let traced = req.encode_traced(Some(ctx));
    assert_eq!(
        &traced[..traced.len() - TRACE_SECTION_LEN],
        plain.as_slice(),
        "a traced frame is the untraced frame plus the trailing section"
    );

    // Same connection, both layouts: answers must be byte-identical.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut answers = Vec::new();
    for body in [&plain, &traced] {
        write_frame(&mut stream, body).unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("reply");
        let Response::Neighbors(hits) = Response::decode(&reply).unwrap() else {
            panic!("QUERY must get a NEIGHBORS reply");
        };
        answers.push(hits);
    }
    assert_eq!(
        bits(&[answers[0].clone()]),
        bits(&[answers[1].clone()]),
        "the server ignores the trace section when answering"
    );

    // The client-side knob produces the same interop.
    let mut client = Client::connect(addr).unwrap();
    client.trace = Some(TraceContext::mint());
    let hits = client.query("e2e-lccs", 6, 64, 0, q.get(0)).unwrap();
    assert_eq!(bits(&[hits]), bits(&[answers[0].clone()]));

    // And the scrape surface knows about the queries we just ran.
    client.trace = None;
    let text = client.metrics().expect("METRICS answers");
    for needle in [
        "# TYPE ann_queries_total counter",
        "# TYPE ann_search_latency_micros histogram",
        "ann_search_latency_micros_count{index=\"e2e-lccs\"}",
        "ann_connections_total",
        "ann_candidates_scanned_total",
    ] {
        assert!(text.contains(needle), "metrics text is missing {needle:?}:\n{text}");
    }
    let q_line = text
        .lines()
        .find(|l| l.starts_with("ann_queries_total{index=\"e2e-lccs\"}"))
        .expect("per-index query counter");
    let count: f64 = q_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 3.0, "three QUERYs ran, metrics say {count}");

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// Fraction of `truth`'s ids that `hits` recovered — recall@k against
/// an exact oracle, computed inline so the test owns its own metric.
fn recall_of(hits: &[Neighbor], truth: &[Neighbor]) -> f64 {
    let want: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
    hits.iter().filter(|n| want.contains(&n.id)).count() as f64 / truth.len().max(1) as f64
}

/// The PR-10 tentpole acceptance path: CALIBRATE over real TCP turns
/// `target_recall(0.9)` from a typed error into a planned search whose
/// *measured* recall against an independent exact oracle meets the
/// target on held-out queries — while scanning fewer candidates than
/// the worst-case manual grid point. Uncalibrated and malformed
/// targets answer with text byte-identical to in-process validation,
/// and the table survives a restart through the snapshot's CALB
/// section.
#[test]
fn calibrated_target_recall_plans_cheap_params_and_survives_restart() {
    use dataset::ExactKnn;

    let fx = fixture("plan");
    let catalog = Catalog::load_dir(&fx.dir).unwrap();
    let server =
        Server::bind(catalog, "127.0.0.1:0", 2).unwrap().with_snapshot_dir(&fx.dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    let q0 = fx.data.get(0);

    // Pre-calibration snapshots load and serve with calibration "none".
    let infos = client.list().unwrap();
    assert!(infos.iter().all(|i| i.cal == "none" && i.cal_age_secs == 0));

    // Planned search before calibration: a typed, actionable error.
    let planned = SearchRequest::top_k(10).target_recall(0.9);
    match client.search("e2e-lccs", q0, &planned) {
        Err(ClientError::Server(msg)) => assert!(
            msg.contains("not calibrated") && msg.contains("ann-cli calibrate"),
            "unhelpful uncalibrated error: {msg}"
        ),
        other => panic!("uncalibrated target must fail, got {other:?}"),
    }

    // Malformed targets answer with the exact text in-process
    // validation produces — one validator, zero drift.
    for bad in [
        SearchRequest::top_k(10).target_recall(1.5),
        SearchRequest::top_k(10).target_recall(0.0),
        SearchRequest::top_k(10).target_recall(f64::NAN),
        SearchRequest::top_k(10).budget(64).target_recall(0.9),
        SearchRequest::top_k(10).probes(4).target_recall(0.9),
    ] {
        let local = bad.validate(fx.data.len()).expect_err("invalid in-process");
        match client.search("e2e-lccs", q0, &bad) {
            Err(ClientError::Server(msg)) => assert_eq!(
                msg,
                format!("index \"e2e-lccs\": {local}"),
                "wire error text must match in-process validation"
            ),
            other => panic!("invalid target must fail, got {other:?}"),
        }
    }

    // Calibrate over the wire: the saturated corner measures 1.0, so
    // every target is plannable from here on.
    let (points, max_recall, sample) = client.calibrate("e2e-lccs", 32, 10).unwrap();
    assert!(points >= 6, "grid should carry several points, got {points}");
    assert_eq!(sample, 32);
    assert!((max_recall - 1.0).abs() < 1e-9, "saturated corner must measure 1.0");
    let infos = client.list().unwrap();
    let lccs = infos.iter().find(|i| i.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.cal, "fresh");

    // Held-out queries (perturbed rows, never calibration inputs):
    // planned recall vs an exact oracle meets the target, and the
    // planner spends strictly fewer candidates than the worst-case
    // manual grid point.
    let queries = fx.data.sample_queries(32, 123);
    let mut planned = SearchRequest::top_k(10).target_recall(0.9);
    planned.fields.stats = true;
    let mut saturated = SearchRequest::top_k(10).budget(fx.data.len()).probes(16);
    saturated.fields.stats = true;
    let mut recall_sum = 0.0;
    let (mut planned_scanned, mut manual_scanned) = (0u64, 0u64);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let (hits, stats) = client.search("e2e-lccs", q, &planned).unwrap();
        let stats = stats.expect("stats requested");
        let plan = stats.plan.expect("planned searches report their plan");
        assert!(plan.predicted_recall >= 0.9, "plan must satisfy the target");
        assert!((plan.effective_target - 0.9).abs() < 1e-12, "no degradation armed");
        assert!((plan.budget as usize) <= fx.data.len());
        planned_scanned += stats.candidates_scanned;
        let (_, sat_stats) = client.search("e2e-lccs", q, &saturated).unwrap();
        manual_scanned += sat_stats.unwrap().candidates_scanned;
        let truth = ExactKnn::single_query(&fx.data, q, 10, Metric::Euclidean);
        recall_sum += recall_of(&hits, &truth);
    }
    let measured = recall_sum / queries.len() as f64;
    assert!(measured >= 0.9, "measured recall {measured:.4} misses the 0.9 target");
    assert!(
        planned_scanned < manual_scanned,
        "planning must beat the worst-case grid point: {planned_scanned} vs {manual_scanned}"
    );

    // The funnel surfaces in STATS and METRICS.
    let entries = client.stats().unwrap();
    let e = entries.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(e.planned, queries.len() as u64);
    assert_eq!(e.degraded, 0);
    assert_eq!(e.cal, "fresh");
    let text = client.metrics().unwrap();
    assert!(text.contains("ann_planned_total{index=\"e2e-lccs\"} 32\n"), "metrics:\n{text}");
    assert!(text.contains("ann_calibration_age_seconds{index=\"e2e-lccs\",state=\"fresh\"}"));

    client.shutdown().unwrap();
    handle.join().expect("server thread");

    // Restart from disk: the CALB section brings the table back and
    // planned searches keep working without re-calibrating.
    let catalog = Catalog::load_dir(&fx.dir).unwrap();
    let server = Server::bind(catalog, "127.0.0.1:0", 2).unwrap().with_snapshot_dir(&fx.dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    let infos = client.list().unwrap();
    let lccs = infos.iter().find(|i| i.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.cal, "fresh", "calibration must survive the restart");
    let (hits, stats) = client.search("e2e-lccs", q0, &planned).unwrap();
    assert!(!hits.is_empty());
    assert!(stats.unwrap().plan.expect("plan after restart").predicted_recall >= 0.9);
    // The uncalibrated sibling still answers its typed error.
    match client.search("e2e-mp", q0, &SearchRequest::top_k(10).target_recall(0.9)) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not calibrated")),
        other => panic!("e2e-mp was never calibrated, got {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// Overload degradation: with `--recall-floor 0.7` and a 1µs p99 bound
/// (every real request breaches it), planned targets step down toward
/// the floor — honestly reported in the plan's `effective_target`, the
/// STATS `degraded` counter, and METRICS — instead of silently
/// breaching the latency bound.
#[test]
fn overload_steps_recall_targets_down_toward_the_floor() {
    let fx = fixture("degrade");
    let catalog = Catalog::load_dir(&fx.dir).unwrap();
    let server = Server::bind(catalog, "127.0.0.1:0", 2)
        .unwrap()
        .with_snapshot_dir(&fx.dir)
        .with_recall_floor(0.7)
        .with_p99_bound_micros(1);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    client.calibrate("e2e-lccs", 16, 10).unwrap();

    // Prime the latency histogram: the dial reads the per-index p99,
    // which needs at least one answered query to exceed the 1µs bound.
    let q0 = fx.data.get(0);
    for _ in 0..4 {
        client.query("e2e-lccs", 10, 64, 0, q0).unwrap();
    }

    let mut req = SearchRequest::top_k(10).target_recall(0.95);
    req.fields.stats = true;
    let (hits, stats) = client.search("e2e-lccs", q0, &req).unwrap();
    assert!(!hits.is_empty());
    let plan = stats.unwrap().plan.expect("degraded searches still report their plan");
    assert!(
        plan.effective_target < 0.95,
        "p99 over bound must step the target down, got {}",
        plan.effective_target
    );
    assert!(plan.effective_target >= 0.7 - 1e-12, "never below the floor");

    let entries = client.stats().unwrap();
    let e = entries.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(e.planned, 1);
    assert_eq!(e.degraded, 1, "the step-down must be counted, not hidden");
    let text = client.metrics().unwrap();
    assert!(text.contains("ann_degraded_total{index=\"e2e-lccs\"} 1\n"), "metrics:\n{text}");

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

/// The small-fix satellite: mutating a live index after its sweep marks
/// the table stale (visible in LIST/STATS), FLUSH persists the stale
/// bit through the snapshot, and a restart still plans from it.
#[test]
fn mutations_mark_calibration_stale_and_flush_persists_the_bit() {
    let dir = std::env::temp_dir().join(format!("annd-e2e-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = SynthSpec::new("stale", 400, 16).with_clusters(8).generate(5);
    let fvecs = dir.join("rows.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 2)
        .unwrap()
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    client
        .build_live("st", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 1000, 4)
        .unwrap();
    client.calibrate("st", 16, 5).unwrap();
    let infos = client.list().unwrap();
    assert_eq!(infos[0].cal, "fresh");

    // INSERT: the measured index no longer exists → stale, but planning
    // keeps working from the old table.
    let row = dataset::Dataset::from_rows("ins", &[data.get(0).to_vec()]);
    client.insert("st", &row, None).unwrap();
    let infos = client.list().unwrap();
    assert_eq!(infos[0].cal, "stale", "mutation must mark the table stale");
    let mut req = SearchRequest::top_k(5).target_recall(0.9);
    req.fields.stats = true;
    let (_, stats) = client.search("st", data.get(1), &req).unwrap();
    assert!(stats.unwrap().plan.is_some(), "stale tables still plan");

    // FLUSH persists the (stale) table; a restart reloads it as stale.
    client.flush("st").unwrap();
    client.shutdown().unwrap();
    handle.join().expect("server thread");
    let catalog = Catalog::load_dir(&dir).unwrap();
    let server = Server::bind(catalog, "127.0.0.1:0", 2).unwrap().with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    let mut client = Client::connect(addr).unwrap();
    let infos = client.list().unwrap();
    let st = infos.iter().find(|i| i.name == "st").unwrap();
    assert_eq!(st.cal, "stale", "the stale bit must survive FLUSH + restart");
    let (_, stats) = client.search("st", data.get(1), &req).unwrap();
    assert!(stats.unwrap().plan.is_some());
    client.shutdown().unwrap();
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
