//! End-to-end serving test: build → snapshot to disk → load by a real
//! TCP server → query over the wire → results byte-identical to
//! in-process `query_batch` on the originally built index.

use ann::{AnnIndex, SearchParams};
use dataset::exact::Neighbor;
use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};
use serve::catalog::Catalog;
use serve::client::{Client, ClientError};
use serve::server::Server;
use serve::snapshot::write_index_snapshot;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

fn bits(lists: &[Vec<Neighbor>]) -> Vec<Vec<(u32, u64)>> {
    lists
        .iter()
        .map(|ns| ns.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

struct Fixture {
    dir: PathBuf,
    data: Arc<dataset::Dataset>,
    single: LccsLsh,
    mp: MpLccsLsh,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Builds both LCCS schemes over a clustered synthetic dataset and
/// snapshots them into a fresh temp directory.
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("annd-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = Arc::new(SynthSpec::new("e2e", 800, 24).with_clusters(12).generate(17));
    let params = LccsParams::euclidean(8.0).with_m(16).with_seed(99);
    let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
    let mp = MpLccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &params,
        MpParams { probes: 9, max_alts: 8 },
    );
    write_index_snapshot(&dir, "e2e-lccs", &single, &data).unwrap();
    write_index_snapshot(&dir, "e2e-mp", &mp, &data).unwrap();
    Fixture { dir, data, single, mp }
}

/// Starts a server over the fixture's snapshot dir on an ephemeral port.
fn start_server(fx: &Fixture, workers: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let catalog = Catalog::load_dir(&fx.dir).expect("load snapshot dir");
    assert_eq!(catalog.len(), 2);
    let server = Server::bind(catalog, "127.0.0.1:0", workers).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serving loop"));
    (addr, handle)
}

#[test]
fn served_results_are_byte_identical_to_in_process() {
    let fx = fixture("identical");
    let (addr, handle) = start_server(&fx, 2);
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    // LIST describes both snapshots, in name order.
    let infos = client.list().unwrap();
    let names: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["e2e-lccs", "e2e-mp"]);
    assert_eq!(infos[0].method, "LCCS-LSH");
    assert_eq!(infos[1].method, "MP-LCCS-LSH");
    assert_eq!(infos[0].len, 800);
    assert_eq!(infos[0].dim, 24);

    let queries = fx.data.sample_queries(37, 5);
    let params = SearchParams::new(10, 64);

    // Batch over TCP == in-process query_batch on the original index.
    let local = AnnIndex::query_batch(&fx.single, &queries, &params);
    let remote = client.query_batch("e2e-lccs", 10, 64, 0, &queries).unwrap();
    assert_eq!(bits(&remote), bits(&local), "LCCS-LSH batch must be byte-identical");

    let local_mp = AnnIndex::query_batch(&fx.mp, &queries, &params);
    let remote_mp = client.query_batch("e2e-mp", 10, 64, 0, &queries).unwrap();
    assert_eq!(bits(&remote_mp), bits(&local_mp), "MP-LCCS-LSH batch must be byte-identical");

    // Single queries too, including a probes override on the MP index.
    for i in [0usize, 11, 36] {
        let remote = client.query("e2e-lccs", 5, 48, 0, queries.get(i)).unwrap();
        let local = AnnIndex::query(&fx.single, queries.get(i), &SearchParams::new(5, 48));
        assert_eq!(bits(&[remote]), bits(&[local]), "query {i}");

        let remote = client.query("e2e-mp", 5, 48, 17, queries.get(i)).unwrap();
        let local =
            AnnIndex::query(&fx.mp, queries.get(i), &SearchParams::new(5, 48).with_probes(17));
        assert_eq!(bits(&[remote]), bits(&[local]), "mp query {i} with probe override");
    }

    // STATS saw every request against the right index.
    let stats = client.stats().unwrap();
    let lccs = stats.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.queries, 3);
    assert_eq!(lccs.batch_requests, 1);
    assert_eq!(lccs.batch_queries, 37);
    let mp = stats.iter().find(|s| s.name == "e2e-mp").unwrap();
    assert_eq!(mp.queries, 3);
    assert_eq!(mp.batch_requests, 1);

    // Graceful shutdown: run() returns and the thread joins.
    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

#[test]
fn bad_requests_get_error_responses_not_disconnects() {
    let fx = fixture("errors");
    let (addr, handle) = start_server(&fx, 1);
    let mut client = Client::connect(addr).unwrap();

    let err = client.query("nope", 5, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("no such index")), "{err}");

    let err = client.query("e2e-lccs", 5, 32, 0, &[1.0, 2.0]).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("dimension mismatch")), "{err}");

    let err = client.query("e2e-lccs", 0, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("k must be")), "{err}");

    // A hostile k must be rejected, not allocate a k-sized heap.
    let err = client.query("e2e-lccs", u32::MAX as usize, 32, 0, fx.data.get(0)).unwrap_err();
    assert!(matches!(&err, ClientError::Server(m) if m.contains("exceeds")), "{err}");

    // The connection survives all three errors.
    client.ping().unwrap();

    // Stats counted no queries (validation failures are not served queries).
    let stats = client.stats().unwrap();
    assert!(stats.iter().all(|s| s.queries == 0 && s.batch_requests == 0));

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}

#[test]
fn concurrent_connections_share_the_catalog() {
    let fx = fixture("concurrent");
    let (addr, handle) = start_server(&fx, 4);

    let queries = fx.data.sample_queries(16, 9);
    let expected = bits(&AnnIndex::query_batch(&fx.single, &queries, &SearchParams::new(5, 32)));
    let expected = Arc::new(expected);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let expected = expected.clone();
            let queries = &queries;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    let got = client.query_batch("e2e-lccs", 5, 32, 0, queries).unwrap();
                    assert_eq!(&bits(&got), expected.as_ref());
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let lccs = stats.iter().find(|s| s.name == "e2e-lccs").unwrap();
    assert_eq!(lccs.batch_requests, 12);
    assert_eq!(lccs.batch_queries, 12 * 16);

    client.shutdown().unwrap();
    handle.join().expect("server thread");
}
