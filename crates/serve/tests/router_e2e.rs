//! Cluster end-to-end tests: a router over real `annd` shard processes
//! must answer reads byte-identically to one single-node daemon over
//! the union of rows, and a SIGKILLed shard must degrade into *typed*
//! partial results (or a typed error under `--require-all`), never a
//! hang or a malformed frame.
//!
//! Shards are spawned as real `annd` child processes (via
//! `CARGO_BIN_EXE_annd`) so "killing a shard" is an actual `SIGKILL` —
//! the process disappears mid-traffic, pooled router connections break,
//! and the freed port refuses new dials, exactly like production. The
//! router itself runs in-process so tests can bind it on an ephemeral
//! port and join it cleanly.

use dataset::exact::Neighbor;
use dataset::SynthSpec;
use serve::client::{Client, ClientError};
use serve::router::{parse_topology, Router, RouterConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bits(ns: &[Neighbor]) -> Vec<(u32, u64)> {
    ns.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// A spawned `annd` child; SIGKILLed (if still alive) and reaped on drop.
struct Shard {
    child: Child,
    addr: String,
    dir: PathBuf,
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Shard {
    /// The real-process kill the partial-failure tests are about.
    fn kill(&mut self) {
        self.child.kill().expect("kill shard");
        self.child.wait().expect("reap shard");
    }
}

/// Spawns `annd --snapshot-dir <dir> --addr <addr>` and waits for its
/// "listening on" banner to learn the bound (possibly ephemeral) port.
fn spawn_annd(dir: &Path, addr: &str) -> Shard {
    std::fs::create_dir_all(dir).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_annd"))
        .args(["--snapshot-dir", dir.to_str().unwrap(), "--addr", addr, "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn annd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut bound = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.trim().strip_prefix("annd: listening on ") {
            bound = Some(rest.split_whitespace().next().unwrap().to_string());
            break;
        }
        line.clear();
    }
    // Keep draining the child's stdout so it can never block on a full
    // pipe, however chatty it gets.
    std::thread::spawn(move || {
        for _ in reader.lines() {}
    });
    Shard {
        child,
        addr: bound.expect("annd printed its listening banner"),
        dir: dir.to_path_buf(),
    }
}

/// Binds an in-process router over `topology` and runs it on a thread.
fn spawn_router(
    topology: &str,
    require_all: bool,
    dir: Option<&Path>,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = RouterConfig {
        shards: parse_topology(topology).expect("topology"),
        require_all,
        dir: dir.map(Path::to_path_buf),
        shard_timeout: Duration::from_millis(1500),
        recall_floor: 0.0,
        p99_bound_micros: 0,
    };
    let router = Router::bind(config, "127.0.0.1:0", 3).expect("bind router");
    let addr = router.local_addr().unwrap();
    let handle = std::thread::spawn(move || router.run().expect("router loop"));
    (addr, handle)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("annd-router-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An address that refuses connections: bind an ephemeral port, then
/// drop the listener so nothing is listening there anymore.
fn dead_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

/// The tentpole acceptance test: a 3-shard cluster answers QUERY,
/// SEARCH (plain, filtered, deny-listed, range-limited), and BATCH
/// byte-identically — ids and raw f64 distance bits — to one
/// single-node daemon over the union of rows, including after INSERT,
/// DELETE, and FLUSH issued *through the router*.
#[test]
fn three_shard_search_is_byte_identical_to_single_node_union() {
    let root = tmp("ident");
    let data = SynthSpec::new("cluster", 240, 12).with_clusters(8).generate(33);
    let fvecs = root.join("cluster.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    // The oracle: one single-node daemon over the whole dataset.
    let oracle = spawn_annd(&root.join("oracle"), "127.0.0.1:0");
    let mut oc = Client::connect(oracle.addr.as_str()).unwrap();
    oc.build_live("u", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("oracle build");

    // The cluster: three shards plus a router with a persisted catalog.
    let shards: Vec<Shard> =
        (0..3).map(|i| spawn_annd(&root.join(format!("s{i}")), "127.0.0.1:0")).collect();
    let topology =
        shards.iter().map(|s| s.addr.clone()).collect::<Vec<_>>().join(",");
    let (raddr, rhandle) = spawn_router(&topology, false, Some(&root.join("router")));
    let mut rc = Client::connect(raddr).unwrap();
    rc.ping().unwrap();
    let (info, _, _) = rc
        .build_live("u", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("routed build");
    assert_eq!(info.len, 240, "routed BUILD aggregates the full row count");

    // Every shard got its residue class under the strided id layout.
    for (i, shard) in shards.iter().enumerate() {
        let mut sc = Client::connect(shard.addr.as_str()).unwrap();
        let infos = sc.list().unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].len, 80, "shard {i} holds a third of the rows");
        let hit = &sc.query("u", 1, 240, 0, data.get(i)).unwrap()[0];
        assert_eq!(hit.id as usize % 3, i, "shard {i} serves ids ≡ {i} (mod 3)");
    }

    let queries = data.sample_queries(12, 7);
    let compare = |rc: &mut Client, oc: &mut Client, tag: &str| {
        let shapes: Vec<ann::SearchRequest> = vec![
            ann::SearchRequest::top_k(7).budget(240),
            ann::SearchRequest::top_k(1).budget(240),
            ann::SearchRequest::top_k(200).budget(240),
            ann::SearchRequest::top_k(7)
                .budget(240)
                .filter(ann::IdFilter::allow((0..60).collect::<Vec<u32>>())),
            ann::SearchRequest::top_k(7)
                .budget(240)
                .filter(ann::IdFilter::deny(vec![0, 1, 2, 3, 4, 5, 50, 51])),
            ann::SearchRequest::top_k(12).budget(240).max_dist(1.5),
        ];
        for q in queries.iter() {
            for (si, req) in shapes.iter().enumerate() {
                let routed = rc.search("u", q, req).expect("routed search");
                let single = oc.search("u", q, req).expect("oracle search");
                assert_eq!(
                    bits(&routed.0),
                    bits(&single.0),
                    "{tag}: shape {si} must merge byte-identically"
                );
            }
            let routed = rc.query("u", 5, 240, 0, q).unwrap();
            let single = oc.query("u", 5, 240, 0, q).unwrap();
            assert_eq!(bits(&routed), bits(&single), "{tag}: QUERY parity");
        }
        let routed = rc.query_batch("u", 6, 240, 0, &queries).unwrap();
        let single = oc.query_batch("u", 6, 240, 0, &queries).unwrap();
        for (q, (r, s)) in routed.iter().zip(&single).enumerate() {
            assert_eq!(bits(r), bits(s), "{tag}: BATCH query {q} parity");
        }
    };
    compare(&mut rc, &mut oc, "after build");

    // Bad requests answer with the same message a single node gives.
    let e_routed = rc.query("u", 0, 64, 0, queries.get(0)).unwrap_err().to_string();
    let e_single = oc.query("u", 0, 64, 0, queries.get(0)).unwrap_err().to_string();
    assert_eq!(e_routed, e_single, "k=0 rejection parity");
    let e_routed = rc.query("u", 9999, 64, 0, queries.get(0)).unwrap_err().to_string();
    let e_single = oc.query("u", 9999, 64, 0, queries.get(0)).unwrap_err().to_string();
    assert_eq!(e_routed, e_single, "k>rows rejection parity");

    // Mutate through the router; mirror the same mutations on the
    // oracle. Auto-ids continue from the routed catalog's high-water
    // mark, identical to the single node's counter.
    let extra = SynthSpec::new("extra", 10, 12).with_clusters(2).generate(44);
    let routed_ids = rc.insert("u", &extra, None).expect("routed insert");
    let oracle_ids = oc.insert("u", &extra, None).expect("oracle insert");
    assert_eq!(routed_ids, (240..250).collect::<Vec<u32>>());
    assert_eq!(routed_ids, oracle_ids, "auto-id assignment parity");
    assert_eq!(rc.delete("u", &[0, 1, 2, 245]).unwrap(), 4);
    assert_eq!(oc.delete("u", &[0, 1, 2, 245]).unwrap(), 4);
    compare(&mut rc, &mut oc, "after insert+delete");

    let (paths, segments, live_rows) = rc.flush("u").expect("routed flush");
    oc.flush("u").expect("oracle flush");
    assert_eq!(live_rows, 240 + 10 - 4, "FLUSH aggregates live rows across shards");
    assert!(segments >= 3, "every shard contributes at least one segment");
    assert_eq!(paths.split("; ").count(), 3, "one snapshot path per shard");
    compare(&mut rc, &mut oc, "after flush");

    // LIST aggregates; STATS carries the aggregate plus per-shard rows.
    let infos = rc.list().unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].len, 246);
    assert_eq!(infos[0].load_mode, "router");
    let stats = rc.stats().unwrap();
    let agg = stats.iter().find(|s| s.name == "u").expect("aggregate entry");
    assert!(agg.queries > 0);
    assert!(agg.p99_micros >= agg.p50_micros, "quantiles come from the summed histogram");
    for i in 0..3 {
        assert!(
            stats.iter().any(|s| s.name == format!("u@shard{i}")),
            "per-shard breakdown for shard {i}"
        );
    }

    // A restarted router (same --router-dir) routes identically.
    let mut sc = Client::connect(raddr).unwrap();
    sc.shutdown().unwrap();
    rhandle.join().unwrap();
    let (raddr2, rhandle2) = spawn_router(&topology, false, Some(&root.join("router")));
    let mut rc = Client::connect(raddr2).unwrap();
    compare(&mut rc, &mut oc, "after router restart");
    let routed_ids = rc.insert("u", &extra, None).expect("insert after restart");
    assert_eq!(
        routed_ids,
        (250..260).collect::<Vec<u32>>(),
        "the persisted catalog resumes auto-ids above everything ever assigned"
    );

    rc.shutdown().unwrap();
    rhandle2.join().unwrap();
    drop(shards);
    drop(oracle);
    std::fs::remove_dir_all(&root).ok();
}

/// SIGKILL one shard mid-traffic: searches keep answering with a typed
/// partial response naming exactly the dead shard, the surviving hits
/// are byte-identical to what the surviving shard serves, writes to the
/// dead residue class fail closed while writes confined to live shards
/// still apply, and restarting the shard on the same port recovers the
/// cluster without touching the router.
#[test]
fn killing_a_shard_mid_traffic_degrades_to_typed_partial_results() {
    let root = tmp("partial");
    let data = SynthSpec::new("pk", 120, 10).with_clusters(6).generate(9);
    let fvecs = root.join("pk.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let mut shards: Vec<Shard> =
        (0..2).map(|i| spawn_annd(&root.join(format!("s{i}")), "127.0.0.1:0")).collect();
    let topology = format!("{},{}", shards[0].addr, shards[1].addr);
    let (raddr, rhandle) = spawn_router(&topology, false, Some(&root.join("router")));
    let mut rc = Client::connect(raddr).unwrap();
    rc.build_live("pk", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("routed build");

    let q = data.get(3).to_vec();
    let req = ann::SearchRequest::top_k(8).budget(120);
    let full = rc.search("pk", &q, &req).expect("healthy search").0;

    // Keep traffic flowing, kill shard 1 partway through. Every request
    // must answer (no hang, no transport error); once the kill lands,
    // answers must be typed partials naming the dead shard.
    let victim = shards[1].addr.clone();
    let mut partials = 0;
    for i in 0..10 {
        if i == 3 {
            shards[1].kill();
        }
        let out = rc.search_outcome("pk", &q, &req).expect("search during failure");
        if out.missing_shards.is_empty() {
            assert_eq!(bits(&out.hits), bits(&full), "complete answers stay exact");
        } else {
            partials += 1;
            assert_eq!(
                out.missing_shards,
                vec![format!("shard1@{victim}")],
                "the partial names exactly the killed shard"
            );
            // Surviving hits == what shard 0 itself serves (k clamped
            // to its row count, here k < rows so just k).
            let mut s0 = Client::connect(shards[0].addr.as_str()).unwrap();
            let local = s0.search("pk", &q, &req).unwrap().0;
            assert_eq!(bits(&out.hits), bits(&local), "survivor hits are exact");
        }
    }
    assert!(partials >= 6, "the kill degraded the later searches ({partials}/7)");

    // The strict single-answer API surfaces the same degradation as a
    // typed ClientError::Partial, not a decode failure.
    match rc.search("pk", &q, &req) {
        Err(ClientError::Partial(missing)) => {
            assert_eq!(missing, vec![format!("shard1@{victim}")])
        }
        other => panic!("expected ClientError::Partial, got {other:?}"),
    }

    // Writes touching the dead residue class fail closed and say so;
    // writes confined to the live shard still apply (and are undone
    // here to keep the dataset unchanged for the recovery check).
    let row = SynthSpec::new("row", 1, 10).generate(77);
    let err = rc.insert("pk", &row, Some(&[1001])).unwrap_err().to_string();
    assert!(err.contains("shard1@") && err.contains("fail closed"), "got: {err}");
    assert_eq!(rc.insert("pk", &row, Some(&[1000])).unwrap(), vec![1000]);
    assert_eq!(rc.delete("pk", &[1000]).unwrap(), 1);

    // Restart the dead shard on its old port, over its surviving dir:
    // the WAL replays, and the very next routed search is whole again.
    shards[1] = spawn_annd(&root.join("s1").clone(), &victim);
    let recovered = rc.search("pk", &q, &req).expect("post-recovery search");
    assert_eq!(bits(&recovered.0), bits(&full), "recovery restores exact answers");

    rc.shutdown().unwrap();
    rhandle.join().unwrap();
    drop(shards);
    std::fs::remove_dir_all(&root).ok();
}

/// `--require-all` turns the same degradation into a typed error with
/// the stable `unavailable:` prefix — on SEARCH, QUERY, and STATS.
#[test]
fn require_all_fails_closed_with_a_typed_error() {
    let root = tmp("reqall");
    let data = SynthSpec::new("ra", 60, 8).with_clusters(4).generate(5);
    let fvecs = root.join("ra.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let shard = spawn_annd(&root.join("s0"), "127.0.0.1:0");
    let mut sc = Client::connect(shard.addr.as_str()).unwrap();
    sc.build_live("ra", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("direct build");
    let gone = dead_addr();
    let topology = format!("{},{}", shard.addr, gone);

    let (strict, strict_handle) = spawn_router(&topology, true, None);
    let mut rc = Client::connect(strict).unwrap();
    let q = data.get(0).to_vec();
    let err = rc
        .search("ra", &q, &ann::SearchRequest::top_k(3).budget(60))
        .unwrap_err()
        .to_string();
    assert!(err.contains("unavailable:"), "typed unavailable error, got: {err}");
    assert!(err.contains(&format!("shard1@{gone}")), "names the dead shard, got: {err}");
    let err = rc.stats().unwrap_err().to_string();
    assert!(err.contains("unavailable:"), "STATS fails closed too, got: {err}");
    rc.shutdown().unwrap();
    strict_handle.join().unwrap();

    // The same topology without --require-all degrades instead.
    let (lax, lax_handle) = spawn_router(&topology, false, None);
    let mut rc = Client::connect(lax).unwrap();
    let out = rc
        .search_outcome("ra", &q, &ann::SearchRequest::top_k(3).budget(60))
        .expect("degraded search");
    assert_eq!(out.missing_shards, vec![format!("shard1@{gone}")]);
    assert!(!out.hits.is_empty(), "the surviving shard still answers");
    match rc.query("ra", 3, 60, 0, &q) {
        Err(ClientError::Partial(missing)) => {
            assert_eq!(missing, vec![format!("shard1@{gone}")])
        }
        other => panic!("QUERY must surface the typed partial, got {other:?}"),
    }
    rc.shutdown().unwrap();
    lax_handle.join().unwrap();
    drop(shard);
    std::fs::remove_dir_all(&root).ok();
}

/// Replicas are read-only round-robin targets: with both endpoints up,
/// read traffic lands on primary *and* replica; with the primary
/// SIGKILLed, reads fail over to the replica with no degradation while
/// writes (primary-only by design) fail closed.
#[test]
fn replica_reads_round_robin_and_fail_over() {
    let root = tmp("replica");
    let data = SynthSpec::new("rep", 90, 8).with_clusters(5).generate(21);
    let fvecs = root.join("rep.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    // Build + flush on the primary, then clone its dir as the replica —
    // the documented way a replica is provisioned.
    let mut primary = spawn_annd(&root.join("prim"), "127.0.0.1:0");
    let mut pc = Client::connect(primary.addr.as_str()).unwrap();
    pc.build_live("rep", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("primary build");
    pc.flush("rep").expect("primary flush");
    let replica_dir = root.join("repl");
    std::fs::create_dir_all(&replica_dir).unwrap();
    for entry in std::fs::read_dir(&primary.dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), replica_dir.join(entry.file_name())).unwrap();
    }
    let replica = spawn_annd(&replica_dir, "127.0.0.1:0");

    let topology = format!("{},r0@{}", primary.addr, replica.addr);
    let (raddr, rhandle) = spawn_router(&topology, false, None);
    let mut rc = Client::connect(raddr).unwrap();
    let q = data.get(7).to_vec();
    let req = ann::SearchRequest::top_k(5).budget(90);
    let full = rc.search("rep", &q, &req).expect("search").0;
    for _ in 0..5 {
        let again = rc.search("rep", &q, &req).expect("search").0;
        assert_eq!(bits(&again), bits(&full), "replica answers are byte-identical");
    }

    // Round-robin: both endpoints saw read traffic.
    let mut rp = Client::connect(replica.addr.as_str()).unwrap();
    let primary_queries = pc.stats().unwrap().iter().map(|s| s.queries).sum::<u64>();
    let replica_queries = rp.stats().unwrap().iter().map(|s| s.queries).sum::<u64>();
    assert!(primary_queries >= 1, "primary took part of the read traffic");
    assert!(replica_queries >= 1, "replica took part of the read traffic");

    // Primary dies: reads fail over to the replica, *complete* (no
    // missing shards — the shard is still served); writes fail closed.
    drop(pc);
    primary.kill();
    for _ in 0..3 {
        let out = rc.search_outcome("rep", &q, &req).expect("failover search");
        assert!(out.missing_shards.is_empty(), "replica keeps the shard whole");
        assert_eq!(bits(&out.hits), bits(&full));
    }
    let row = SynthSpec::new("row", 1, 8).generate(2);
    let err = rc.insert("rep", &row, Some(&[500])).unwrap_err().to_string();
    assert!(err.contains("fail closed"), "writes need the primary, got: {err}");

    rc.shutdown().unwrap();
    rhandle.join().unwrap();
    drop(replica);
    std::fs::remove_dir_all(&root).ok();
}

/// Observability across the scatter-gather: traced requests answer
/// byte-identically to untraced ones, STATS carries a distinct `router`
/// row for the hop the shards cannot see, and METRICS exposes the
/// per-shard health counters — including the degraded-read counter
/// after a real `kill -9`.
#[test]
fn routed_requests_carry_traces_and_expose_router_metrics() {
    let root = tmp("obs");
    let data = SynthSpec::new("obs", 140, 10).with_clusters(6).generate(51);
    let fvecs = root.join("obs.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let mut shards: Vec<Shard> =
        (0..2).map(|i| spawn_annd(&root.join(format!("s{i}")), "127.0.0.1:0")).collect();
    let topology = format!("{},{}", shards[0].addr, shards[1].addr);
    let (raddr, rhandle) = spawn_router(&topology, false, Some(&root.join("router")));
    let mut rc = Client::connect(raddr).unwrap();
    rc.build_live("obs", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 64, 4)
        .expect("routed build");

    // A traced SEARCH answers exactly like an untraced one; the trace
    // context rides the request frame and fans out as child spans.
    let q = data.get(5).to_vec();
    let req = ann::SearchRequest::top_k(6).budget(100);
    let plain = rc.search("obs", &q, &req).expect("untraced search").0;
    rc.trace = Some(obs::TraceContext::mint());
    for _ in 0..3 {
        let traced = rc.search("obs", &q, &req).expect("traced search").0;
        assert_eq!(bits(&traced), bits(&plain), "tracing never changes answers");
    }
    rc.trace = None;

    // STATS: the router's own hop shows up as a distinct `router` row
    // next to the per-shard breakdowns, counting every routed read.
    let entries = rc.stats().expect("routed stats");
    let router_row = entries
        .iter()
        .find(|e| e.name == "router" && e.load_mode == "router")
        .expect("STATS carries the router's own row");
    assert!(router_row.queries >= 4, "4 routed searches ran, row says {}", router_row.queries);
    assert!(router_row.total_micros > 0, "the router row has its own latency sum");
    assert!(
        entries.iter().any(|e| e.name == "obs@shard0"),
        "per-shard breakdowns still present"
    );

    // METRICS on the router: its own process series, with one health
    // counter set per shard label.
    let text = rc.metrics().expect("router METRICS");
    for needle in [
        "# TYPE ann_router_shard_attempts_total counter",
        "ann_router_shard_attempts_total{shard=\"shard0\"}",
        "ann_router_shard_attempts_total{shard=\"shard1\"}",
        "ann_router_degraded_reads_total",
        "ann_queries_total{index=\"router\"}",
        "# TYPE ann_search_latency_micros histogram",
    ] {
        assert!(text.contains(needle), "router metrics missing {needle:?}:\n{text}");
    }
    let degraded_before = prom_value(&text, "ann_router_degraded_reads_total");

    // kill -9 one shard: the next reads degrade, and the degraded-read
    // and per-shard failure counters move.
    shards[1].kill();
    let out = rc.search_outcome("obs", &q, &req).expect("degraded search");
    assert!(!out.missing_shards.is_empty(), "shard1 is dead, the read must degrade");
    let text = rc.metrics().expect("router METRICS after kill");
    let degraded_after = prom_value(&text, "ann_router_degraded_reads_total");
    assert!(
        degraded_after > degraded_before,
        "degraded reads must be counted ({degraded_before} -> {degraded_after})"
    );
    let failures = prom_value(&text, "ann_router_shard_failures_total{shard=\"shard1\"}");
    assert!(failures > 0.0, "the dead shard's failure counter must move");

    rc.shutdown().unwrap();
    rhandle.join().unwrap();
    drop(shards);
    std::fs::remove_dir_all(&root).ok();
}

/// The value of the first sample line starting with `prefix` (0.0 when
/// the series is absent, which only happens before it first moves).
fn prom_value(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(prefix) && !l.starts_with("# "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// PR-10 through the cluster: CALIBRATE fans out to every shard, the
/// routed `target_recall` search forwards the target so each shard
/// plans against its own table, and the merged response reports the
/// binding (most pessimistic) plan. Bad targets answer with the same
/// typed text the single-node server produces, and STATS aggregates
/// the planner funnel and calibration state across shards.
#[test]
fn routed_target_recall_plans_per_shard_and_aggregates_the_funnel() {
    use ann::SearchRequest;

    let root = tmp("plan");
    let data = SynthSpec::new("plan", 300, 12).with_clusters(8).generate(44);
    let fvecs = root.join("plan.fvecs");
    dataset::io::write_fvecs(&fvecs, &data).unwrap();

    let shards: Vec<Shard> =
        (0..2).map(|i| spawn_annd(&root.join(format!("s{i}")), "127.0.0.1:0")).collect();
    let topology = shards.iter().map(|s| s.addr.clone()).collect::<Vec<_>>().join(",");
    let (raddr, rhandle) = spawn_router(&topology, false, Some(&root.join("router")));
    let mut rc = Client::connect(raddr).unwrap();
    rc.build_live("u", "linear", "euclidean", fvecs.to_str().unwrap(), 0, 1000, 4)
        .expect("routed build");

    // Uncalibrated cluster: the shard's typed error comes through.
    let planned = SearchRequest::top_k(5).target_recall(0.9);
    match rc.search("u", data.get(0), &planned) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("not calibrated"), "got {msg}")
        }
        other => panic!("uncalibrated routed target must fail, got {other:?}"),
    }
    // Malformed targets are rejected at the router edge with the
    // single-node error text.
    match rc.search("u", data.get(0), &SearchRequest::top_k(5).target_recall(2.0)) {
        Err(ClientError::Server(msg)) => {
            assert_eq!(msg, "index \"u\": target_recall must be in (0, 1], got 2")
        }
        other => panic!("bad routed target must fail, got {other:?}"),
    }
    match rc.search("u", data.get(0), &SearchRequest::top_k(5).budget(32).target_recall(0.9)) {
        Err(ClientError::Server(msg)) => {
            assert_eq!(
                msg,
                "index \"u\": target_recall is mutually exclusive with explicit budget/probes"
            )
        }
        other => panic!("target+knobs through the router must fail, got {other:?}"),
    }

    // One CALIBRATE against the router calibrates every shard.
    let (points, max_recall, _) = rc.calibrate("u", 16, 5).expect("routed calibrate");
    assert!(points > 0);
    assert!((max_recall - 1.0).abs() < 1e-9, "every shard's saturated corner is 1.0");

    // Planned search through the router merges shard plans.
    let mut planned = SearchRequest::top_k(5).target_recall(0.9);
    planned.fields.stats = true;
    let (hits, stats) = rc.search("u", data.get(0), &planned).expect("routed planned search");
    assert_eq!(hits.len(), 5);
    let plan = stats.expect("stats requested").plan.expect("merged plan reported");
    assert!(plan.predicted_recall >= 0.9, "binding shard still satisfies the target");
    assert!((plan.effective_target - 0.9).abs() < 1e-12);

    // The aggregate row sums the per-shard planner counters and folds
    // calibration state (both shards fresh → fresh).
    let entries = rc.stats().unwrap();
    let agg = entries.iter().find(|e| e.name == "u").expect("aggregate row");
    assert_eq!(agg.planned, 2, "one planned search hit both shards");
    assert_eq!(agg.degraded, 0);
    assert_eq!(agg.cal, "fresh");

    rc.shutdown().unwrap();
    rhandle.join().unwrap();
}
