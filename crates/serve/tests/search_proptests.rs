//! Property tests of the SEARCH frame codec: encode → decode must be the
//! identity for every combination of the bitflag-gated optional sections
//! (allowlist / denylist / threshold / stats), arbitrary knob values, and
//! arbitrary vectors — and truncating an encoded frame anywhere must fail
//! cleanly, never panic or misread.

use ann::{IdFilter, PlanChoice, SearchStats};
use dataset::exact::Neighbor;
use obs::TraceContext;
use proptest::collection::vec;
use proptest::prelude::*;
use serve::protocol::{Request, Response, TRACE_MAGIC, TRACE_SECTION_LEN};

/// Strategy over every filter shape: none, allowlist, denylist — with
/// empty and duplicate-heavy id lists included (the constructor
/// normalizes, so round-trips stay exact).
fn any_filter() -> impl Strategy<Value = Option<IdFilter>> {
    (0u8..3, vec(any::<u32>(), 0..20)).prop_map(|(kind, ids)| match kind {
        0 => None,
        1 => Some(IdFilter::allow(ids)),
        _ => Some(IdFilter::deny(ids)),
    })
}

/// Finite, non-NaN thresholds (NaN can't round-trip through `PartialEq`;
/// the server rejects it at validation anyway).
fn any_max_dist() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), 0u64..=1 << 52).prop_map(|(present, bits)| {
        present.then_some(f64::from_bits(bits) % 1e12)
    })
}

/// Optional `target_recall` payload: values in `(0, 1]` plus a sprinkle
/// of out-of-range ones — the codec must carry what validation rejects.
fn any_target_recall() -> impl Strategy<Value = Option<f64>> {
    (0u8..3, 0.001f64..2.0).prop_map(|(kind, t)| match kind {
        0 => None,
        1 => Some(t.min(1.0)),
        _ => Some(t),
    })
}

fn any_search_request() -> impl Strategy<Value = Request> {
    (
        any_filter(),
        any_max_dist(),
        (any::<bool>(), any_target_recall()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        vec(any::<u32>(), 0..12),
    )
        .prop_map(|(filter, max_dist, (want_stats, target_recall), (k, budget, probes), vbits)| {
            Request::Search {
                index: "idx-under-test".into(),
                k,
                budget,
                probes,
                filter,
                max_dist,
                want_stats,
                target_recall,
                // NaN payloads do travel bit-exactly, but `PartialEq`
                // can't witness it — keep the equality-based property on
                // non-NaN values (the unit suite pins NaN bit-exactness).
                vector: vbits
                    .into_iter()
                    .map(|b| {
                        let f = f32::from_bits(b);
                        if f.is_nan() {
                            f32::from_bits(b & 0x7f7f_ffff)
                        } else {
                            f
                        }
                    })
                    .collect(),
            }
        })
}

/// Optional plan summary inside stats (the `PLAN` response flag): only
/// non-NaN recalls, so `PartialEq` can witness the round-trip.
fn any_plan() -> impl Strategy<Value = Option<PlanChoice>> {
    (any::<bool>(), any::<u32>(), any::<u32>(), 0.0f64..1.0, 0.0f64..1.0).prop_map(
        |(present, budget, probes, predicted_recall, effective_target)| {
            present.then_some(PlanChoice { budget, probes, predicted_recall, effective_target })
        },
    )
}

fn any_search_response() -> impl Strategy<Value = Response> {
    (
        vec((any::<u32>(), 0u64..=1 << 60), 0..10),
        (any::<bool>(), any_plan()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(hits, (with_stats, plan), (scanned, pushes, wall))| Response::Search {
            hits: hits
                .into_iter()
                .map(|(id, dbits)| Neighbor { id, dist: f64::from_bits(dbits) })
                .collect(),
            stats: with_stats.then_some(SearchStats {
                candidates_scanned: scanned,
                heap_pushes: pushes,
                wall_micros: wall,
                // Node-local telemetry; not carried by the pinned wire
                // layout, so it must be zero to round-trip.
                sq8_pruned: 0,
                plan,
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn search_requests_round_trip(req in any_search_request()) {
        let body = req.encode();
        let back = Request::decode(&body).expect("own encoding decodes");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn search_responses_round_trip(resp in any_search_response()) {
        let body = resp.encode();
        let back = Response::decode(&body).expect("own encoding decodes");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncated_search_requests_fail_cleanly(
        req in any_search_request(),
        frac in 0.0f64..1.0,
    ) {
        let body = req.encode();
        let cut = ((body.len() as f64) * frac) as usize;
        prop_assert!(cut < body.len());
        // Any strict prefix must decode to an error, never a value and
        // never a panic.
        prop_assert!(Request::decode(&body[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn search_request_with_trailing_garbage_is_rejected(
        req in any_search_request(),
        extra in 1usize..4,
    ) {
        let mut body = req.encode();
        body.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn traced_search_requests_round_trip(
        req in any_search_request(),
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
    ) {
        let ctx = TraceContext { trace_id, span_id };
        let body = req.encode_traced(Some(ctx));
        prop_assert_eq!(&body[..body.len() - TRACE_SECTION_LEN], req.encode().as_slice(),
            "the trace section is strictly additive");
        let (back, got) = Request::decode_traced(&body).expect("traced encoding decodes");
        prop_assert_eq!(back, req.clone());
        prop_assert_eq!(got, Some(ctx));
        // The trace-oblivious decode path accepts (and discards) it too.
        prop_assert_eq!(Request::decode(&body).expect("plain decode tolerates trace"), req);
    }

    #[test]
    fn truncated_trace_sections_fail_cleanly(
        req in any_search_request(),
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        cut_back in 1usize..TRACE_SECTION_LEN,
    ) {
        let ctx = TraceContext { trace_id, span_id };
        let body = req.encode_traced(Some(ctx));
        // Any partial trace section is a malformed frame, not a silent
        // fallback to the untraced layout.
        prop_assert!(Request::decode(&body[..body.len() - cut_back]).is_err());
    }

    #[test]
    fn garbage_trace_sections_are_rejected(
        req in any_search_request(),
        tail_words in vec(any::<u32>(), TRACE_SECTION_LEN..=TRACE_SECTION_LEN),
    ) {
        let tail: Vec<u8> = tail_words.iter().map(|w| (w % 256) as u8).collect();
        prop_assume!(tail[0] != TRACE_MAGIC);
        let mut body = req.encode();
        body.extend_from_slice(&tail);
        prop_assert!(Request::decode(&body).is_err(), "bad magic must be rejected");
    }
}
