//! The `annd` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is a little-endian `u32` body length followed by the
//! body; bodies are a one-byte tag plus tag-specific fields. The protocol
//! is deliberately dependency-free (no serde on the wire) and versioned
//! implicitly by the tag space — unknown tags are rejected, never
//! misread. Distances travel as raw `f64` bits, so a served result is
//! byte-identical to the in-process answer, which the end-to-end test
//! asserts.
//!
//! Frames are capped at [`MAX_FRAME`] and names at [`MAX_NAME`] so a
//! garbage or hostile peer cannot make the server allocate unboundedly.

use crate::wire::Reader;
use ann::{IdFilter, PlanChoice, SearchStats};
use dataset::exact::Neighbor;
use obs::TraceContext;
use std::io::{self, Read, Write};

/// Hard cap on one frame body (64 MiB — a 1024-query batch of 960-d
/// vectors is under 4 MiB, so this leaves ample headroom).
pub const MAX_FRAME: usize = 64 << 20;

/// Hard cap on index/method name length on the wire.
pub const MAX_NAME: usize = 255;

/// Leading byte of the optional trailing trace section on request
/// frames. Chosen outside the tag space so a truncated frame can never
/// be misread as a traced one.
pub const TRACE_MAGIC: u8 = 0xF5;

/// Version byte of the trace section. Bump when its layout changes;
/// unknown versions are rejected at decode, never misread.
pub const TRACE_VERSION: u8 = 1;

/// Exact byte length of the trace section: magic, version, trace id,
/// span id. Any other trailing length is a shape error, which keeps
/// untraced frames byte-identical to pre-trace builds.
pub const TRACE_SECTION_LEN: usize = 1 + 1 + 8 + 8;

/// Errors raised while decoding a frame body.
#[derive(Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before all declared fields were read.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// A declared size is out of range or internally inconsistent.
    BadShape(String),
    /// A name field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::BadShape(m) => write!(f, "bad frame shape: {m}"),
            ProtoError::BadUtf8 => write!(f, "name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- framing

/// Writes one frame (length prefix + body). Oversized bodies are a hard
/// error, not a `debug_assert`: truncating the length prefix to `u32`
/// would silently desynchronize the stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds the {MAX_FRAME}-byte cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. Returns `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF and oversized frames are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    let mut filled = 0;
    while filled < hdr.len() {
        let n = r.read(&mut hdr[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame header"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ------------------------------------------------------- encode / decode

impl From<crate::wire::Short> for ProtoError {
    fn from(_: crate::wire::Short) -> Self {
        ProtoError::Truncated
    }
}

fn get_str(r: &mut Reader) -> Result<String, ProtoError> {
    let len = r.u8()? as usize;
    String::from_utf8(r.take(len)?.to_vec()).map_err(|_| ProtoError::BadUtf8)
}

fn finish(r: &Reader) -> Result<(), ProtoError> {
    if r.remaining() == 0 {
        Ok(())
    } else {
        Err(ProtoError::BadShape(format!("{} trailing bytes", r.remaining())))
    }
}

/// Parses the optional trailing trace section of a request body. The
/// section is all-or-nothing: exactly [`TRACE_SECTION_LEN`] bytes remain
/// (magic, version, trace id, span id) or none do; any other remainder
/// is rejected, so legacy frames and garbage both fail the same way they
/// always did.
fn get_trace(r: &mut Reader) -> Result<Option<TraceContext>, ProtoError> {
    match r.remaining() {
        0 => Ok(None),
        TRACE_SECTION_LEN => {
            let magic = r.u8()?;
            let version = r.u8()?;
            if magic != TRACE_MAGIC {
                return Err(ProtoError::BadShape(format!("trace section magic {magic:#04x}")));
            }
            if version != TRACE_VERSION {
                return Err(ProtoError::BadShape(format!(
                    "trace section version {version} (this build speaks {TRACE_VERSION})"
                )));
            }
            Ok(Some(TraceContext { trace_id: r.u64()?, span_id: r.u64()? }))
        }
        n => Err(ProtoError::BadShape(format!("{n} trailing bytes"))),
    }
}

fn put_trace(out: &mut Vec<u8>, t: TraceContext) {
    out.push(TRACE_MAGIC);
    out.push(TRACE_VERSION);
    out.extend_from_slice(&t.trace_id.to_le_bytes());
    out.extend_from_slice(&t.span_id.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= MAX_NAME, "name {s:?} exceeds {MAX_NAME} bytes");
    out.push(s.len() as u8);
    out.extend_from_slice(s.as_bytes());
}

/// u16-length strings for fields that can outgrow [`MAX_NAME`] (dataset
/// paths, spec strings in BUILD requests); framing shared with the
/// snapshot container via [`crate::wire`].
use crate::wire::put_str16;

fn get_str16(r: &mut Reader) -> Result<String, ProtoError> {
    String::from_utf8(r.take16()?.to_vec()).map_err(|_| ProtoError::BadUtf8)
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    out.reserve(vs.len() * 4);
    for v in vs {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn put_neighbors(out: &mut Vec<u8>, ns: &[Neighbor]) {
    out.extend_from_slice(&(ns.len() as u32).to_le_bytes());
    for n in ns {
        out.extend_from_slice(&n.id.to_le_bytes());
        out.extend_from_slice(&n.dist.to_bits().to_le_bytes());
    }
}

fn put_index_info(out: &mut Vec<u8>, i: &IndexInfo) {
    put_str(out, &i.name);
    put_str(out, &i.method);
    out.extend_from_slice(&i.len.to_le_bytes());
    out.extend_from_slice(&i.dim.to_le_bytes());
    out.extend_from_slice(&i.index_bytes.to_le_bytes());
    put_str16(out, &i.spec);
    put_str(out, &i.load_mode);
    out.push(u8::from(i.sq8));
    put_str(out, &i.cal);
    out.extend_from_slice(&i.cal_age_secs.to_le_bytes());
}

fn get_index_info(r: &mut Reader) -> Result<IndexInfo, ProtoError> {
    Ok(IndexInfo {
        name: get_str(r)?,
        method: get_str(r)?,
        len: r.u64()?,
        dim: r.u32()?,
        index_bytes: r.u64()?,
        spec: get_str16(r)?,
        load_mode: get_str(r)?,
        sq8: r.u8()? != 0,
        cal: get_str(r)?,
        cal_age_secs: r.u64()?,
    })
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u32s(r: &mut Reader) -> Result<Vec<u32>, ProtoError> {
    let count = r.u32()? as usize;
    if count > MAX_FRAME / 4 {
        return Err(ProtoError::BadShape(format!("{count} ids")));
    }
    let mut vs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        vs.push(r.u32()?);
    }
    Ok(vs)
}

fn get_neighbors(r: &mut Reader) -> Result<Vec<Neighbor>, ProtoError> {
    let count = r.u32()? as usize;
    if count > MAX_FRAME / 12 {
        return Err(ProtoError::BadShape(format!("{count} neighbors")));
    }
    let mut ns = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32()?;
        let dist = r.f64()?;
        ns.push(Neighbor { id, dist });
    }
    Ok(ns)
}

// ---------------------------------------------------------------- request

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Enumerate the served indexes.
    List,
    /// One c-k-ANNS query against a named index.
    Query {
        /// Catalog name of the target index.
        index: String,
        /// Neighbors to return.
        k: u32,
        /// Candidate budget (λ for the LCCS schemes).
        budget: u32,
        /// Probe override for multi-probe schemes (`0` = index default).
        probes: u32,
        /// The query vector.
        vector: Vec<f32>,
    },
    /// A whole query batch, answered through the parallel executor.
    Batch {
        /// Catalog name of the target index.
        index: String,
        /// Neighbors to return per query.
        k: u32,
        /// Candidate budget per query.
        budget: u32,
        /// Probe override (`0` = index default).
        probes: u32,
        /// Dimensionality of each query row.
        dim: u32,
        /// Row-major `nq × dim` query payload.
        vectors: Vec<f32>,
    },
    /// Fetch per-index serving counters.
    Stats,
    /// Ask the server to stop accepting and exit once drained.
    Shutdown,
    /// Build an index server-side from a spec string and a server-local
    /// dataset path, then install it in the catalog (and snapshot it when
    /// the scheme persists and the server has a snapshot directory).
    Build {
        /// Catalog name to install the index under (replaces an existing
        /// entry of the same name).
        name: String,
        /// `ann::spec` grammar string, e.g. `mp-lccs:m=64,seed=7`.
        spec: String,
        /// Verification metric name (`euclidean`, `angular`, …).
        metric: String,
        /// Server-side path of an `.fvecs` dataset file.
        data_path: String,
        /// Cap on rows read from the dataset (`0` = all).
        limit: u32,
        /// Build a *live* (mutable, LSM-style segmented) index instead of
        /// a frozen one: the dataset becomes the first sealed segment and
        /// the entry accepts INSERT/DELETE/FLUSH afterwards.
        live: bool,
        /// Live only: memtable rows that trigger an automatic seal
        /// (`0` = server default).
        seal_threshold: u32,
        /// Live only: segment count above which the smallest segments
        /// are merged (`0` = server default).
        max_segments: u32,
        /// External id assigned to the first dataset row (live only).
        /// `(0, 1)` is the classic dense assignment `0..n`; a router
        /// building shard *s* of an *m*-shard cluster sends `(s, m)` so
        /// shard-local ids are exactly the global ids of its rows.
        id_base: u32,
        /// Stride between consecutive row ids (live only; `0` is
        /// normalized to `1` on decode so legacy-shaped frames behave).
        id_step: u32,
    },
    /// Insert rows into a live index. Row `i` gets `ids[i]` when ids are
    /// supplied (one per row), or a fresh auto-assigned id otherwise.
    Insert {
        /// Catalog name of the target live index.
        index: String,
        /// Dimensionality of each row.
        dim: u32,
        /// Row-major `n × dim` payload.
        vectors: Vec<f32>,
        /// Explicit external ids, one per row; empty = auto-assign.
        ids: Vec<u32>,
    },
    /// Delete ids from a live index (absent ids are ignored, not errors).
    Delete {
        /// Catalog name of the target live index.
        index: String,
        /// External ids to delete.
        ids: Vec<u32>,
    },
    /// Seal the memtable of a live index and persist the whole index as
    /// a `.snap` container so it survives a daemon restart.
    Flush {
        /// Catalog name of the target live index.
        index: String,
    },
    /// One self-describing search (the [`ann::SearchRequest`] contract on
    /// the wire): plain top-k plus the two optional capabilities —
    /// id-filtered search and range/threshold search — and an opt-in
    /// stats section in the reply.
    ///
    /// The frame is versioned (leading version byte, currently
    /// [`SEARCH_VERSION`]) with the optional sections gated by a bitflag
    /// byte ([`flag` constants](SEARCH_FLAG_ALLOW)); unknown versions and
    /// unknown flag bits are rejected at decode, never misread, so the
    /// frame can grow fields without a new tag.
    ///
    /// `QUERY` remains valid and is answered identically to a `SEARCH`
    /// with no optional sections.
    Search {
        /// Catalog name of the target index.
        index: String,
        /// Neighbors to return (at most).
        k: u32,
        /// Candidate budget (λ for the LCCS schemes).
        budget: u32,
        /// Probe override for multi-probe schemes (`0` = index default).
        probes: u32,
        /// Restrict the answer to ids this filter accepts.
        filter: Option<IdFilter>,
        /// Only return hits within this true distance.
        max_dist: Option<f64>,
        /// Ask the server to include [`SearchStats`] in the reply.
        want_stats: bool,
        /// Ask the server to *plan* the knobs from the index's
        /// calibration table instead of taking `budget`/`probes`
        /// literally. Carried in a version-2 SEARCH frame (flag
        /// [`SEARCH_FLAG_TARGET_RECALL`]); when present the `budget` and
        /// `probes` fields travel as `0` sentinels, and any other value
        /// is rejected by request validation as an explicit-knobs
        /// conflict — with the same error text as the in-process
        /// builder path.
        target_recall: Option<f64>,
        /// The query vector.
        vector: Vec<f32>,
    },
    /// Run the fig9/fig10-style calibration sweep server-side against a
    /// sample of the named index's own rows, install the resulting
    /// [`plan`]-crate table in the catalog, and persist it as the
    /// snapshot's `CALB` section so it survives restarts.
    Calibrate {
        /// Catalog name of the target index.
        index: String,
        /// Rows to sample as calibration queries (`0` = server default).
        sample: u32,
        /// The `k` to measure recall at (`0` = server default).
        k: u32,
    },
    /// Fetch the node's telemetry in Prometheus text exposition format:
    /// process-wide counters/gauges/histograms plus per-index serving
    /// metrics. Routers answer with router-process metrics (per-shard
    /// health counters, hop-latency histogram), not a shard aggregate.
    Metrics,
}

/// Wire version of the baseline SEARCH frame layout. Bump when a field
/// changes meaning; add a flag bit when a new optional section appears.
pub const SEARCH_VERSION: u8 = 1;

/// SEARCH frame version that may carry the target-recall section.
/// Encoders only emit it when the section is present, so manual
/// requests stay byte-identical to version-1 frames and old peers
/// interoperate unchanged; version-1 frames carrying the flag are
/// rejected as unknown-bit errors, exactly as an old build would.
pub const SEARCH_VERSION_PLANNED: u8 = 2;

/// SEARCH flag bit: an allowlist id section follows.
pub const SEARCH_FLAG_ALLOW: u8 = 1 << 0;
/// SEARCH flag bit: a denylist id section follows.
pub const SEARCH_FLAG_DENY: u8 = 1 << 1;
/// SEARCH flag bit: a `max_dist` threshold section follows.
pub const SEARCH_FLAG_MAX_DIST: u8 = 1 << 2;
/// SEARCH flag bit: the client wants the stats section in the reply.
pub const SEARCH_FLAG_STATS: u8 = 1 << 3;
/// SEARCH flag bit (version ≥ 2 only): a target-recall section (one
/// f64, between the `max_dist` section and the vector) follows.
pub const SEARCH_FLAG_TARGET_RECALL: u8 = 1 << 4;
const SEARCH_FLAGS_KNOWN: u8 =
    SEARCH_FLAG_ALLOW | SEARCH_FLAG_DENY | SEARCH_FLAG_MAX_DIST | SEARCH_FLAG_STATS;
const SEARCH_FLAGS_KNOWN_V2: u8 = SEARCH_FLAGS_KNOWN | SEARCH_FLAG_TARGET_RECALL;

const REQ_SEARCH: u8 = 11;
const REQ_PING: u8 = 1;
const REQ_LIST: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_BATCH: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_BUILD: u8 = 7;
const REQ_INSERT: u8 = 8;
const REQ_DELETE: u8 = 9;
const REQ_FLUSH: u8 = 10;
const REQ_METRICS: u8 = 12;
const REQ_CALIBRATE: u8 = 13;

impl Request {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::List => out.push(REQ_LIST),
            Request::Query { index, k, budget, probes, vector } => {
                out.push(REQ_QUERY);
                put_str(&mut out, index);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&budget.to_le_bytes());
                out.extend_from_slice(&probes.to_le_bytes());
                out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
                put_f32s(&mut out, vector);
            }
            Request::Batch { index, k, budget, probes, dim, vectors } => {
                assert_eq!(
                    vectors.len() % (*dim).max(1) as usize,
                    0,
                    "batch payload must be a whole number of rows"
                );
                out.push(REQ_BATCH);
                put_str(&mut out, index);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&budget.to_le_bytes());
                out.extend_from_slice(&probes.to_le_bytes());
                out.extend_from_slice(&dim.to_le_bytes());
                out.extend_from_slice(&((vectors.len() / (*dim).max(1) as usize) as u32).to_le_bytes());
                put_f32s(&mut out, vectors);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Build {
                name,
                spec,
                metric,
                data_path,
                limit,
                live,
                seal_threshold,
                max_segments,
                id_base,
                id_step,
            } => {
                out.push(REQ_BUILD);
                put_str(&mut out, name);
                put_str16(&mut out, spec);
                put_str(&mut out, metric);
                put_str16(&mut out, data_path);
                out.extend_from_slice(&limit.to_le_bytes());
                out.push(u8::from(*live));
                out.extend_from_slice(&seal_threshold.to_le_bytes());
                out.extend_from_slice(&max_segments.to_le_bytes());
                out.extend_from_slice(&id_base.to_le_bytes());
                out.extend_from_slice(&id_step.to_le_bytes());
            }
            Request::Insert { index, dim, vectors, ids } => {
                assert_eq!(
                    vectors.len() % (*dim).max(1) as usize,
                    0,
                    "insert payload must be a whole number of rows"
                );
                out.push(REQ_INSERT);
                put_str(&mut out, index);
                out.extend_from_slice(&dim.to_le_bytes());
                out.extend_from_slice(&((vectors.len() / (*dim).max(1) as usize) as u32).to_le_bytes());
                put_f32s(&mut out, vectors);
                put_u32s(&mut out, ids);
            }
            Request::Delete { index, ids } => {
                out.push(REQ_DELETE);
                put_str(&mut out, index);
                put_u32s(&mut out, ids);
            }
            Request::Flush { index } => {
                out.push(REQ_FLUSH);
                put_str(&mut out, index);
            }
            Request::Search {
                index,
                k,
                budget,
                probes,
                filter,
                max_dist,
                want_stats,
                target_recall,
                vector,
            } => {
                out.push(REQ_SEARCH);
                out.push(if target_recall.is_some() {
                    SEARCH_VERSION_PLANNED
                } else {
                    SEARCH_VERSION
                });
                put_str(&mut out, index);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&budget.to_le_bytes());
                out.extend_from_slice(&probes.to_le_bytes());
                let mut flags = 0u8;
                if let Some(f) = filter {
                    flags |= if f.is_allow() { SEARCH_FLAG_ALLOW } else { SEARCH_FLAG_DENY };
                }
                if max_dist.is_some() {
                    flags |= SEARCH_FLAG_MAX_DIST;
                }
                if *want_stats {
                    flags |= SEARCH_FLAG_STATS;
                }
                if target_recall.is_some() {
                    flags |= SEARCH_FLAG_TARGET_RECALL;
                }
                out.push(flags);
                if let Some(f) = filter {
                    put_u32s(&mut out, f.ids());
                }
                if let Some(d) = max_dist {
                    out.extend_from_slice(&d.to_bits().to_le_bytes());
                }
                if let Some(t) = target_recall {
                    out.extend_from_slice(&t.to_bits().to_le_bytes());
                }
                out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
                put_f32s(&mut out, vector);
            }
            Request::Calibrate { index, sample, k } => {
                out.push(REQ_CALIBRATE);
                put_str(&mut out, index);
                out.extend_from_slice(&sample.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
            }
            Request::Metrics => out.push(REQ_METRICS),
        }
        out
    }

    /// Serializes into a frame body, appending the trace section when a
    /// context is supplied. With `None` the bytes are identical to
    /// [`encode`](Request::encode), so untraced clients and old peers
    /// interoperate unchanged.
    pub fn encode_traced(&self, trace: Option<TraceContext>) -> Vec<u8> {
        let mut out = self.encode();
        if let Some(t) = trace {
            put_trace(&mut out, t);
        }
        out
    }

    /// The request's wire opcode as an uppercase name, for log fields
    /// and metric labels.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "PING",
            Request::List => "LIST",
            Request::Query { .. } => "QUERY",
            Request::Batch { .. } => "BATCH",
            Request::Stats => "STATS",
            Request::Shutdown => "SHUTDOWN",
            Request::Build { .. } => "BUILD",
            Request::Insert { .. } => "INSERT",
            Request::Delete { .. } => "DELETE",
            Request::Flush { .. } => "FLUSH",
            Request::Search { .. } => "SEARCH",
            Request::Calibrate { .. } => "CALIBRATE",
            Request::Metrics => "METRICS",
        }
    }

    /// Decodes a frame body, discarding any trace section.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        Self::decode_traced(body).map(|(req, _)| req)
    }

    /// Decodes a frame body plus its optional trailing trace section.
    pub fn decode_traced(body: &[u8]) -> Result<(Request, Option<TraceContext>), ProtoError> {
        let mut r = Reader::new(body);
        let req = match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_LIST => Request::List,
            REQ_QUERY => {
                let index = get_str(&mut r)?;
                let k = r.u32()?;
                let budget = r.u32()?;
                let probes = r.u32()?;
                let dim = r.u32()? as usize;
                let vector = r.f32s(dim)?;
                Request::Query { index, k, budget, probes, vector }
            }
            REQ_BATCH => {
                let index = get_str(&mut r)?;
                let k = r.u32()?;
                let budget = r.u32()?;
                let probes = r.u32()?;
                let dim = r.u32()?;
                let nq = r.u32()? as usize;
                if dim == 0 {
                    return Err(ProtoError::BadShape("zero-dimensional batch".into()));
                }
                let vectors = r.f32s(nq * dim as usize)?;
                Request::Batch { index, k, budget, probes, dim, vectors }
            }
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_BUILD => Request::Build {
                name: get_str(&mut r)?,
                spec: get_str16(&mut r)?,
                metric: get_str(&mut r)?,
                data_path: get_str16(&mut r)?,
                limit: r.u32()?,
                live: r.u8()? != 0,
                seal_threshold: r.u32()?,
                max_segments: r.u32()?,
                id_base: r.u32()?,
                id_step: r.u32()?.max(1),
            },
            REQ_INSERT => {
                let index = get_str(&mut r)?;
                let dim = r.u32()?;
                let nq = r.u32()? as usize;
                if dim == 0 || nq == 0 {
                    return Err(ProtoError::BadShape("empty insert".into()));
                }
                let vectors = r.f32s(nq * dim as usize)?;
                let ids = get_u32s(&mut r)?;
                if !ids.is_empty() && ids.len() != nq {
                    return Err(ProtoError::BadShape(format!(
                        "{} ids for {nq} rows",
                        ids.len()
                    )));
                }
                Request::Insert { index, dim, vectors, ids }
            }
            REQ_DELETE => Request::Delete { index: get_str(&mut r)?, ids: get_u32s(&mut r)? },
            REQ_FLUSH => Request::Flush { index: get_str(&mut r)? },
            REQ_SEARCH => {
                let ver = r.u8()?;
                if ver != SEARCH_VERSION && ver != SEARCH_VERSION_PLANNED {
                    return Err(ProtoError::BadShape(format!(
                        "SEARCH version {ver} (this build speaks up to {SEARCH_VERSION_PLANNED})"
                    )));
                }
                let known =
                    if ver >= SEARCH_VERSION_PLANNED { SEARCH_FLAGS_KNOWN_V2 } else { SEARCH_FLAGS_KNOWN };
                let index = get_str(&mut r)?;
                let k = r.u32()?;
                let budget = r.u32()?;
                let probes = r.u32()?;
                let flags = r.u8()?;
                if flags & !known != 0 {
                    return Err(ProtoError::BadShape(format!(
                        "unknown SEARCH flag bits {:#04x}",
                        flags & !known
                    )));
                }
                if flags & SEARCH_FLAG_ALLOW != 0 && flags & SEARCH_FLAG_DENY != 0 {
                    return Err(ProtoError::BadShape(
                        "SEARCH carries both an allowlist and a denylist".into(),
                    ));
                }
                let filter = if flags & SEARCH_FLAG_ALLOW != 0 {
                    Some(IdFilter::allow(get_u32s(&mut r)?))
                } else if flags & SEARCH_FLAG_DENY != 0 {
                    Some(IdFilter::deny(get_u32s(&mut r)?))
                } else {
                    None
                };
                let max_dist = if flags & SEARCH_FLAG_MAX_DIST != 0 {
                    Some(r.f64()?)
                } else {
                    None
                };
                // The target travels as raw f64 bits: NaN and
                // out-of-range values decode fine and are rejected by
                // request *validation*, so the wire error text matches
                // the in-process builder path exactly.
                let target_recall = if flags & SEARCH_FLAG_TARGET_RECALL != 0 {
                    Some(r.f64()?)
                } else {
                    None
                };
                let dim = r.u32()? as usize;
                let vector = r.f32s(dim)?;
                Request::Search {
                    index,
                    k,
                    budget,
                    probes,
                    filter,
                    max_dist,
                    want_stats: flags & SEARCH_FLAG_STATS != 0,
                    target_recall,
                    vector,
                }
            }
            REQ_CALIBRATE => {
                Request::Calibrate { index: get_str(&mut r)?, sample: r.u32()?, k: r.u32()? }
            }
            REQ_METRICS => Request::Metrics,
            t => return Err(ProtoError::BadTag(t)),
        };
        let trace = get_trace(&mut r)?;
        finish(&r)?;
        Ok((req, trace))
    }
}

// --------------------------------------------------------------- response

/// One served index as reported by [`Request::List`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// Catalog name (stored inside the snapshot container).
    pub name: String,
    /// Method name (paper legend, e.g. `"LCCS-LSH"`).
    pub method: String,
    /// Number of indexed vectors.
    pub len: u64,
    /// Vector dimensionality.
    pub dim: u32,
    /// Index footprint in bytes (excluding raw vectors).
    pub index_bytes: u64,
    /// Canonical `ann::spec` string the index was built from; empty when
    /// unknown (e.g. restored from a pre-meta snapshot).
    pub spec: String,
    /// How the entry's vector block is served: `mapped` (zero-copy
    /// mmap), `shared` (adopted read buffer), or `owned` (copied).
    pub load_mode: String,
    /// Whether the SQ8 skip-bound pre-filter is active for this entry.
    pub sq8: bool,
    /// Calibration presence: `"none"`, `"fresh"`, or `"stale"` (the
    /// index mutated after its sweep).
    pub cal: String,
    /// Seconds since the calibration sweep ran (0 when absent or
    /// untimestamped).
    pub cal_age_secs: u64,
}

/// Per-index serving counters as reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsEntry {
    /// Catalog name.
    pub name: String,
    /// Canonical `ann::spec` string (empty when unknown), so operators
    /// can see what is actually serving next to its counters.
    pub spec: String,
    /// How the entry's vector block is served (`mapped` / `shared` /
    /// `owned`) — see [`IndexInfo::load_mode`].
    pub load_mode: String,
    /// Whether the SQ8 skip-bound pre-filter is active for this entry.
    pub sq8: bool,
    /// Single queries answered.
    pub queries: u64,
    /// Batch requests answered.
    pub batch_requests: u64,
    /// Queries answered inside batch requests.
    pub batch_queries: u64,
    /// Rows inserted (live indexes only; static entries stay 0).
    pub inserts: u64,
    /// Rows deleted (live indexes only).
    pub deletes: u64,
    /// FLUSH requests served (live indexes only).
    pub flushes: u64,
    /// Write-ahead-log records appended (one per acknowledged
    /// INSERT/DELETE request; live indexes under a snapshot dir only).
    pub wal_records: u64,
    /// Write-ahead-log bytes appended (frame headers included).
    pub wal_bytes: u64,
    /// Seal/compaction builds installed by the background worker.
    pub seals: u64,
    /// Cumulative candidates the verification loops scanned across every
    /// query/batch/search answered — the serving-side view of the budget
    /// knob (exact for the LCCS schemes and live entries, lower-bound for
    /// baseline schemes; see [`ann::SearchStats`]).
    pub candidates_scanned: u64,
    /// Total serving time across requests, microseconds.
    pub total_micros: u64,
    /// Slowest single request, microseconds.
    pub max_micros: u64,
    /// Log2-bucketed query-latency histogram: `latency_hist[i]` counts
    /// QUERY/BATCH/SEARCH requests whose wall time fell in
    /// `[2^i, 2^(i+1))` microseconds (bucket 0 also holds sub-µs
    /// requests; the last bucket is open-ended). Length is
    /// [`crate::stats::HIST_BUCKETS`] for entries produced by this
    /// build, but decoders accept any length so the histogram can grow
    /// buckets without a protocol bump. Routers aggregate shards by
    /// summing these element-wise.
    pub latency_hist: Vec<u64>,
    /// Median query latency in microseconds, estimated from
    /// `latency_hist` (upper bound of the bucket holding the median;
    /// 0 when no queries were answered).
    pub p50_micros: u64,
    /// 99th-percentile query latency in microseconds, same estimator.
    pub p99_micros: u64,
    /// Cumulative result-heap insertions across every query answered —
    /// the "kept" side of the scan/keep funnel (see
    /// [`ann::SearchStats::heap_pushes`]).
    pub heap_pushes: u64,
    /// Candidates the SQ8 certified skip bound pruned before a
    /// full-width distance was computed (0 for entries serving without
    /// trained codes).
    pub sq8_pruned: u64,
    /// Searches whose knobs were chosen by the recall planner (the
    /// `target_recall` request mode).
    pub planned: u64,
    /// Planned searches whose target was stepped down by the overload
    /// degradation dial before planning.
    pub degraded: u64,
    /// Calibration presence: `"none"`, `"fresh"`, or `"stale"` — see
    /// [`IndexInfo::cal`].
    pub cal: String,
    /// Seconds since the calibration sweep ran (0 when absent).
    pub cal_age_secs: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::List`].
    List(Vec<IndexInfo>),
    /// Reply to [`Request::Query`].
    Neighbors(Vec<Neighbor>),
    /// Reply to [`Request::Batch`], one list per query in request order.
    Batch(Vec<Vec<Neighbor>>),
    /// Reply to [`Request::Stats`].
    Stats(Vec<StatsEntry>),
    /// Reply to [`Request::Shutdown`]: acknowledged, server is draining.
    ShuttingDown,
    /// Reply to [`Request::Build`]: the installed index plus build
    /// measurements.
    Built {
        /// The installed catalog entry.
        info: IndexInfo,
        /// Indexing wall-clock microseconds.
        build_micros: u64,
        /// Path of the written `.snap`, empty if none was written (scheme
        /// does not persist, or the server has no snapshot directory).
        snapshot_path: String,
    },
    /// Reply to [`Request::Insert`]: the external id assigned to each
    /// inserted row, in request order.
    Inserted {
        /// One id per inserted row.
        ids: Vec<u32>,
    },
    /// Reply to [`Request::Delete`].
    Deleted {
        /// How many of the requested ids were live (and are now gone).
        removed: u64,
    },
    /// Reply to [`Request::Flush`]: the memtable was sealed and the live
    /// index persisted.
    Flushed {
        /// Path of the written `.snap` container.
        snapshot_path: String,
        /// Sealed segments after the flush.
        segments: u32,
        /// Live rows covered by the flushed snapshot.
        live_rows: u64,
    },
    /// Reply to [`Request::Search`]: the verified hits plus the stats
    /// section when the request asked for it (bitflag-gated on the wire,
    /// so plain answers never pay for it).
    Search {
        /// The verified hits (every id passes the request's filter; all
        /// distances respect its threshold).
        hits: Vec<Neighbor>,
        /// Execution counters, present iff the request set
        /// [`SEARCH_FLAG_STATS`].
        stats: Option<SearchStats>,
    },
    /// A degraded scatter-gather answer from a router: the merged result
    /// lists cover every shard that responded, and `missing_shards`
    /// names the ones that did not (after a retry with backoff). Sent
    /// in place of [`Response::Neighbors`] / [`Response::Search`] /
    /// [`Response::Batch`] when the router runs without `--require-all`
    /// and at least one shard is down; single-node servers never emit
    /// it. `lists` holds one entry for QUERY/SEARCH and one per query
    /// for BATCH, in request order.
    Partial {
        /// Merged per-query results from the surviving shards.
        lists: Vec<Vec<Neighbor>>,
        /// `shard<i>@<addr>` labels of the shards that did not answer.
        missing_shards: Vec<String>,
    },
    /// Reply to [`Request::Metrics`]: the node's telemetry rendered in
    /// Prometheus text exposition format (UTF-8, one sample per line).
    Metrics(String),
    /// Reply to [`Request::Calibrate`]: the sweep ran and the table is
    /// installed (and persisted when the index has a snapshot).
    Calibrated {
        /// Grid points the table holds.
        points: u32,
        /// Highest measured recall any grid point reached.
        max_recall: f64,
        /// Queries the sweep sampled.
        sample: u32,
    },
    /// The request could not be served (unknown index, shape mismatch…).
    Error(String),
}

const RESP_PONG: u8 = 1;
const RESP_LIST: u8 = 2;
const RESP_NEIGHBORS: u8 = 3;
const RESP_BATCH: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_SHUTDOWN: u8 = 6;
const RESP_BUILT: u8 = 7;
const RESP_INSERTED: u8 = 8;
const RESP_DELETED: u8 = 9;
const RESP_FLUSHED: u8 = 10;
const RESP_SEARCH: u8 = 11;
const RESP_PARTIAL: u8 = 12;
const RESP_METRICS: u8 = 13;
const RESP_CALIBRATED: u8 = 14;
const RESP_ERROR: u8 = 255;

/// SEARCH response flag bit: a stats section follows the hits.
const SEARCH_RESP_FLAG_STATS: u8 = 1 << 0;
/// SEARCH response flag bit: a plan section (chosen budget + probes,
/// predicted recall, post-degradation effective target) follows the
/// stats section. Only legal alongside the stats flag — the plan is
/// part of [`SearchStats`].
const SEARCH_RESP_FLAG_PLAN: u8 = 1 << 1;
const SEARCH_RESP_FLAGS_KNOWN: u8 = SEARCH_RESP_FLAG_STATS | SEARCH_RESP_FLAG_PLAN;

impl Response {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(RESP_PONG),
            Response::List(infos) => {
                out.push(RESP_LIST);
                out.extend_from_slice(&(infos.len() as u32).to_le_bytes());
                for i in infos {
                    put_index_info(&mut out, i);
                }
            }
            Response::Neighbors(ns) => {
                out.push(RESP_NEIGHBORS);
                put_neighbors(&mut out, ns);
            }
            Response::Batch(lists) => {
                out.push(RESP_BATCH);
                out.extend_from_slice(&(lists.len() as u32).to_le_bytes());
                for ns in lists {
                    put_neighbors(&mut out, ns);
                }
            }
            Response::Stats(entries) => {
                out.push(RESP_STATS);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    put_str(&mut out, &e.name);
                    put_str16(&mut out, &e.spec);
                    put_str(&mut out, &e.load_mode);
                    out.push(u8::from(e.sq8));
                    for v in [
                        e.queries,
                        e.batch_requests,
                        e.batch_queries,
                        e.inserts,
                        e.deletes,
                        e.flushes,
                        e.wal_records,
                        e.wal_bytes,
                        e.seals,
                        e.candidates_scanned,
                        e.total_micros,
                        e.max_micros,
                    ] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    out.push(e.latency_hist.len() as u8);
                    for b in &e.latency_hist {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                    out.extend_from_slice(&e.p50_micros.to_le_bytes());
                    out.extend_from_slice(&e.p99_micros.to_le_bytes());
                    out.extend_from_slice(&e.heap_pushes.to_le_bytes());
                    out.extend_from_slice(&e.sq8_pruned.to_le_bytes());
                    out.extend_from_slice(&e.planned.to_le_bytes());
                    out.extend_from_slice(&e.degraded.to_le_bytes());
                    put_str(&mut out, &e.cal);
                    out.extend_from_slice(&e.cal_age_secs.to_le_bytes());
                }
            }
            Response::ShuttingDown => out.push(RESP_SHUTDOWN),
            Response::Built { info, build_micros, snapshot_path } => {
                out.push(RESP_BUILT);
                put_index_info(&mut out, info);
                out.extend_from_slice(&build_micros.to_le_bytes());
                put_str16(&mut out, snapshot_path);
            }
            Response::Inserted { ids } => {
                out.push(RESP_INSERTED);
                put_u32s(&mut out, ids);
            }
            Response::Deleted { removed } => {
                out.push(RESP_DELETED);
                out.extend_from_slice(&removed.to_le_bytes());
            }
            Response::Flushed { snapshot_path, segments, live_rows } => {
                out.push(RESP_FLUSHED);
                put_str16(&mut out, snapshot_path);
                out.extend_from_slice(&segments.to_le_bytes());
                out.extend_from_slice(&live_rows.to_le_bytes());
            }
            Response::Search { hits, stats } => {
                out.push(RESP_SEARCH);
                let mut flags = 0u8;
                if let Some(s) = stats {
                    flags |= SEARCH_RESP_FLAG_STATS;
                    if s.plan.is_some() {
                        flags |= SEARCH_RESP_FLAG_PLAN;
                    }
                }
                out.push(flags);
                put_neighbors(&mut out, hits);
                if let Some(s) = stats {
                    out.extend_from_slice(&s.candidates_scanned.to_le_bytes());
                    out.extend_from_slice(&s.heap_pushes.to_le_bytes());
                    out.extend_from_slice(&s.wall_micros.to_le_bytes());
                    if let Some(p) = &s.plan {
                        out.extend_from_slice(&p.budget.to_le_bytes());
                        out.extend_from_slice(&p.probes.to_le_bytes());
                        out.extend_from_slice(&p.predicted_recall.to_bits().to_le_bytes());
                        out.extend_from_slice(&p.effective_target.to_bits().to_le_bytes());
                    }
                }
            }
            Response::Partial { lists, missing_shards } => {
                out.push(RESP_PARTIAL);
                out.extend_from_slice(&(lists.len() as u32).to_le_bytes());
                for ns in lists {
                    put_neighbors(&mut out, ns);
                }
                out.extend_from_slice(&(missing_shards.len() as u32).to_le_bytes());
                for s in missing_shards {
                    put_str(&mut out, s);
                }
            }
            Response::Metrics(text) => {
                out.push(RESP_METRICS);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            Response::Calibrated { points, max_recall, sample } => {
                out.push(RESP_CALIBRATED);
                out.extend_from_slice(&points.to_le_bytes());
                out.extend_from_slice(&max_recall.to_bits().to_le_bytes());
                out.extend_from_slice(&sample.to_le_bytes());
            }
            Response::Error(msg) => {
                out.push(RESP_ERROR);
                // Truncate long messages (BUILD errors interpolate
                // client-supplied spec strings and paths) on a char
                // boundary: splitting a multi-byte sequence would make
                // the whole frame undecodable for the client.
                let mut end = msg.len().min(1024);
                while !msg.is_char_boundary(end) {
                    end -= 1;
                }
                let msg = &msg.as_bytes()[..end];
                out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                out.extend_from_slice(msg);
            }
        }
        out
    }

    /// Decodes a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(body);
        let resp = match r.u8()? {
            RESP_PONG => Response::Pong,
            RESP_LIST => {
                let count = r.u32()? as usize;
                let mut infos = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    infos.push(get_index_info(&mut r)?);
                }
                Response::List(infos)
            }
            RESP_NEIGHBORS => Response::Neighbors(get_neighbors(&mut r)?),
            RESP_BATCH => {
                let nq = r.u32()? as usize;
                if nq > MAX_FRAME / 4 {
                    return Err(ProtoError::BadShape(format!("{nq} result lists")));
                }
                let mut lists = Vec::with_capacity(nq.min(65_536));
                for _ in 0..nq {
                    lists.push(get_neighbors(&mut r)?);
                }
                Response::Batch(lists)
            }
            RESP_STATS => {
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let name = get_str(&mut r)?;
                    let spec = get_str16(&mut r)?;
                    let load_mode = get_str(&mut r)?;
                    let sq8 = r.u8()? != 0;
                    let queries = r.u64()?;
                    let batch_requests = r.u64()?;
                    let batch_queries = r.u64()?;
                    let inserts = r.u64()?;
                    let deletes = r.u64()?;
                    let flushes = r.u64()?;
                    let wal_records = r.u64()?;
                    let wal_bytes = r.u64()?;
                    let seals = r.u64()?;
                    let candidates_scanned = r.u64()?;
                    let total_micros = r.u64()?;
                    let max_micros = r.u64()?;
                    let nbuckets = r.u8()? as usize;
                    let mut latency_hist = Vec::with_capacity(nbuckets);
                    for _ in 0..nbuckets {
                        latency_hist.push(r.u64()?);
                    }
                    let p50_micros = r.u64()?;
                    let p99_micros = r.u64()?;
                    let heap_pushes = r.u64()?;
                    let sq8_pruned = r.u64()?;
                    let planned = r.u64()?;
                    let degraded = r.u64()?;
                    let cal = get_str(&mut r)?;
                    let cal_age_secs = r.u64()?;
                    entries.push(StatsEntry {
                        name,
                        spec,
                        load_mode,
                        sq8,
                        queries,
                        batch_requests,
                        batch_queries,
                        inserts,
                        deletes,
                        flushes,
                        wal_records,
                        wal_bytes,
                        seals,
                        candidates_scanned,
                        total_micros,
                        max_micros,
                        latency_hist,
                        p50_micros,
                        p99_micros,
                        heap_pushes,
                        sq8_pruned,
                        planned,
                        degraded,
                        cal,
                        cal_age_secs,
                    });
                }
                Response::Stats(entries)
            }
            RESP_SHUTDOWN => Response::ShuttingDown,
            RESP_BUILT => Response::Built {
                info: get_index_info(&mut r)?,
                build_micros: r.u64()?,
                snapshot_path: get_str16(&mut r)?,
            },
            RESP_INSERTED => Response::Inserted { ids: get_u32s(&mut r)? },
            RESP_DELETED => Response::Deleted { removed: r.u64()? },
            RESP_FLUSHED => Response::Flushed {
                snapshot_path: get_str16(&mut r)?,
                segments: r.u32()?,
                live_rows: r.u64()?,
            },
            RESP_SEARCH => {
                let flags = r.u8()?;
                if flags & !SEARCH_RESP_FLAGS_KNOWN != 0 {
                    return Err(ProtoError::BadShape(format!(
                        "unknown SEARCH response flag bits {:#04x}",
                        flags & !SEARCH_RESP_FLAGS_KNOWN
                    )));
                }
                if flags & SEARCH_RESP_FLAG_PLAN != 0 && flags & SEARCH_RESP_FLAG_STATS == 0 {
                    return Err(ProtoError::BadShape(
                        "SEARCH response carries a plan section without stats".into(),
                    ));
                }
                let hits = get_neighbors(&mut r)?;
                let stats = if flags & SEARCH_RESP_FLAG_STATS != 0 {
                    // `sq8_pruned` is node-local telemetry and does not
                    // travel in this section, whose layout is pinned.
                    let mut s = SearchStats {
                        candidates_scanned: r.u64()?,
                        heap_pushes: r.u64()?,
                        wall_micros: r.u64()?,
                        sq8_pruned: 0,
                        plan: None,
                    };
                    if flags & SEARCH_RESP_FLAG_PLAN != 0 {
                        s.plan = Some(PlanChoice {
                            budget: r.u32()?,
                            probes: r.u32()?,
                            predicted_recall: r.f64()?,
                            effective_target: r.f64()?,
                        });
                    }
                    Some(s)
                } else {
                    None
                };
                Response::Search { hits, stats }
            }
            RESP_PARTIAL => {
                let nq = r.u32()? as usize;
                if nq > MAX_FRAME / 4 {
                    return Err(ProtoError::BadShape(format!("{nq} partial result lists")));
                }
                let mut lists = Vec::with_capacity(nq.min(65_536));
                for _ in 0..nq {
                    lists.push(get_neighbors(&mut r)?);
                }
                let nmiss = r.u32()? as usize;
                if nmiss > MAX_FRAME / 2 {
                    return Err(ProtoError::BadShape(format!("{nmiss} missing shards")));
                }
                let mut missing_shards = Vec::with_capacity(nmiss.min(1024));
                for _ in 0..nmiss {
                    missing_shards.push(get_str(&mut r)?);
                }
                Response::Partial { lists, missing_shards }
            }
            RESP_METRICS => {
                let len = r.u32()? as usize;
                let raw = r.take(len)?;
                Response::Metrics(
                    String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
                )
            }
            RESP_CALIBRATED => {
                Response::Calibrated { points: r.u32()?, max_recall: r.f64()?, sample: r.u32()? }
            }
            RESP_ERROR => {
                let len = r.u32()? as usize;
                let raw = r.take(len)?;
                Response::Error(String::from_utf8_lossy(raw).into_owned())
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        finish(&r)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).expect("decode"), req);
    }

    fn round_trip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).expect("decode"), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::List);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Query {
            index: "glove".into(),
            k: 10,
            budget: 128,
            probes: 0,
            vector: vec![1.5, -2.25, f32::MIN_POSITIVE, 0.0],
        });
        round_trip_request(Request::Batch {
            index: "sift".into(),
            k: 5,
            budget: 64,
            probes: 17,
            dim: 3,
            vectors: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        });
        round_trip_request(Request::Build {
            name: "glove-live".into(),
            spec: "mp-lccs:m=64,seed=7".into(),
            metric: "euclidean".into(),
            data_path: "/very/long/".repeat(40) + "data.fvecs",
            limit: 10_000,
            live: true,
            seal_threshold: 512,
            max_segments: 6,
            id_base: 0,
            id_step: 1,
        });
        // Strided id assignment (shard 2 of a 3-shard routed build).
        round_trip_request(Request::Build {
            name: "shard2".into(),
            spec: "linear".into(),
            metric: "euclidean".into(),
            data_path: "/tmp/slice2.fvecs".into(),
            limit: 0,
            live: true,
            seal_threshold: 0,
            max_segments: 0,
            id_base: 2,
            id_step: 3,
        });
        round_trip_request(Request::Insert {
            index: "live".into(),
            dim: 2,
            vectors: vec![1.0, 2.0, 3.0, 4.0],
            ids: vec![],
        });
        round_trip_request(Request::Insert {
            index: "live".into(),
            dim: 2,
            vectors: vec![1.0, 2.0, 3.0, 4.0],
            ids: vec![77, 99],
        });
        round_trip_request(Request::Delete { index: "live".into(), ids: vec![1, 2, 3] });
        round_trip_request(Request::Flush { index: "live".into() });
        // SEARCH: every combination of the optional sections.
        for filter in [None, Some(IdFilter::allow(vec![4, 7, 9])), Some(IdFilter::deny(vec![2]))] {
            for max_dist in [None, Some(1.5)] {
                for want_stats in [false, true] {
                    for target_recall in [None, Some(0.9)] {
                        // Planned requests carry 0-sentinel knobs, the
                        // shape real clients emit.
                        let (budget, probes) =
                            if target_recall.is_some() { (0, 0) } else { (128, 3) };
                        round_trip_request(Request::Search {
                            index: "glove".into(),
                            k: 10,
                            budget,
                            probes,
                            filter: filter.clone(),
                            max_dist,
                            want_stats,
                            target_recall,
                            vector: vec![0.5, -1.25],
                        });
                    }
                }
            }
        }
        round_trip_request(Request::Calibrate { index: "glove".into(), sample: 256, k: 10 });
        round_trip_request(Request::Calibrate { index: "d".into(), sample: 0, k: 0 });
    }

    #[test]
    fn planned_search_frames_are_versioned() {
        let manual = Request::Search {
            index: "x".into(),
            k: 5,
            budget: 64,
            probes: 0,
            filter: None,
            max_dist: None,
            want_stats: false,
            target_recall: None,
            vector: vec![1.0],
        };
        assert_eq!(manual.encode()[1], SEARCH_VERSION, "manual requests stay version 1");
        let planned = Request::Search {
            index: "x".into(),
            k: 5,
            budget: 0,
            probes: 0,
            filter: None,
            max_dist: None,
            want_stats: false,
            target_recall: Some(0.9),
            vector: vec![1.0],
        };
        let body = planned.encode();
        assert_eq!(body[1], SEARCH_VERSION_PLANNED);
        // The same flag bit on a version-1 frame is rejected as an
        // unknown bit — exactly how a pre-plan build would react.
        let mut v1 = body;
        v1[1] = SEARCH_VERSION;
        assert!(
            matches!(Request::decode(&v1), Err(ProtoError::BadShape(m)) if m.contains("flag")),
            "v1 + target flag must be an unknown-bit error"
        );
        // NaN targets cross the wire bit-intact for validation to reject
        // with the shared error text.
        let nan = Request::Search {
            index: "x".into(),
            k: 5,
            budget: 0,
            probes: 0,
            filter: None,
            max_dist: None,
            want_stats: false,
            target_recall: Some(f64::NAN),
            vector: vec![1.0],
        };
        let Request::Search { target_recall: Some(back), .. } =
            Request::decode(&nan.encode()).expect("NaN target decodes")
        else {
            panic!("wrong variant")
        };
        assert!(back.is_nan());
    }

    #[test]
    fn malformed_search_frames_are_rejected() {
        let good = Request::Search {
            index: "x".into(),
            k: 5,
            budget: 64,
            probes: 0,
            filter: Some(IdFilter::allow(vec![1, 2])),
            max_dist: Some(0.5),
            want_stats: true,
            target_recall: None,
            vector: vec![1.0],
        }
        .encode();
        // Every truncation fails cleanly.
        for cut in 0..good.len() {
            assert!(Request::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // A future version byte is rejected, not misread.
        let mut future = good.clone();
        future[1] = SEARCH_VERSION_PLANNED + 1;
        assert!(matches!(Request::decode(&future), Err(ProtoError::BadShape(m)) if m.contains("version")));
        // Unknown flag bits are rejected (flags sit after the 1-byte tag,
        // 1-byte version, 1-length-prefixed 1-byte name, and three u32s).
        let flags_at = 1 + 1 + 2 + 12;
        assert_eq!(good[flags_at] & SEARCH_FLAGS_KNOWN, good[flags_at]);
        let mut unknown = good.clone();
        unknown[flags_at] |= 1 << 6;
        assert!(matches!(Request::decode(&unknown), Err(ProtoError::BadShape(m)) if m.contains("flag")));
        // Allow + deny together is contradictory.
        let mut both = good;
        both[flags_at] |= SEARCH_FLAG_DENY;
        assert!(matches!(Request::decode(&both), Err(ProtoError::BadShape(m)) if m.contains("both")));
    }

    #[test]
    fn malformed_insert_shapes_are_rejected() {
        let raw = |nq: u32, ids: &[u32]| {
            let mut body = vec![REQ_INSERT, 1, b'x'];
            body.extend_from_slice(&2u32.to_le_bytes()); // dim
            body.extend_from_slice(&nq.to_le_bytes());
            for i in 0..nq * 2 {
                body.extend_from_slice(&(i as f32).to_bits().to_le_bytes());
            }
            body.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for id in ids {
                body.extend_from_slice(&id.to_le_bytes());
            }
            body
        };
        // An id list that is neither empty nor one-per-row.
        assert!(matches!(Request::decode(&raw(2, &[5])), Err(ProtoError::BadShape(_))));
        // Zero-row inserts are rejected outright.
        assert!(matches!(Request::decode(&raw(0, &[])), Err(ProtoError::BadShape(_))));
        // The valid shapes decode.
        assert!(Request::decode(&raw(2, &[5, 6])).is_ok());
        assert!(Request::decode(&raw(2, &[])).is_ok());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error("no such index".into()));
        round_trip_response(Response::List(vec![IndexInfo {
            name: "demo".into(),
            method: "LCCS-LSH".into(),
            len: 2000,
            dim: 32,
            index_bytes: 1 << 20,
            spec: "lccs:m=16,seed=42".into(),
            load_mode: "mapped".into(),
            sq8: true,
            cal: "fresh".into(),
            cal_age_secs: 42,
        }]));
        round_trip_response(Response::Built {
            info: IndexInfo {
                name: "built".into(),
                method: "MP-LCCS-LSH".into(),
                len: 500,
                dim: 16,
                index_bytes: 4096,
                spec: "mp-lccs:m=16".into(),
                load_mode: "owned".into(),
                sq8: false,
                cal: "none".into(),
                cal_age_secs: 0,
            },
            build_micros: 123_456,
            snapshot_path: "/tmp/snaps/built.snap".into(),
        });
        round_trip_response(Response::Neighbors(vec![
            Neighbor { id: 7, dist: 0.25 },
            Neighbor { id: 9, dist: 1.0 / 3.0 },
        ]));
        round_trip_response(Response::Batch(vec![
            vec![Neighbor { id: 1, dist: 1.0 }],
            vec![],
            vec![Neighbor { id: 2, dist: 2.0 }, Neighbor { id: 3, dist: 3.0 }],
        ]));
        round_trip_response(Response::Stats(vec![StatsEntry {
            name: "demo".into(),
            spec: "e2lsh:k=12,l=50".into(),
            load_mode: "shared".into(),
            sq8: true,
            queries: 3,
            batch_requests: 1,
            batch_queries: 100,
            inserts: 42,
            deletes: 7,
            flushes: 2,
            wal_records: 49,
            wal_bytes: 3_210,
            seals: 4,
            candidates_scanned: 123_456,
            total_micros: 4242,
            max_micros: 999,
            latency_hist: vec![0, 2, 50, 40, 9, 2, 0, 1],
            p50_micros: 7,
            p99_micros: 63,
            heap_pushes: 888,
            sq8_pruned: 70_000,
            planned: 12,
            degraded: 3,
            cal: "stale".into(),
            cal_age_secs: 3600,
        }]));
        round_trip_response(Response::Partial {
            lists: vec![
                vec![Neighbor { id: 4, dist: 0.125 }, Neighbor { id: 1, dist: 0.5 }],
                vec![],
            ],
            missing_shards: vec!["shard1@127.0.0.1:7701".into()],
        });
        round_trip_response(Response::Partial { lists: vec![], missing_shards: vec![] });
        round_trip_response(Response::Search {
            hits: vec![Neighbor { id: 3, dist: 0.75 }],
            stats: None,
        });
        round_trip_response(Response::Search {
            hits: vec![],
            // sq8_pruned stays 0: it is node-local and never encoded.
            stats: Some(SearchStats {
                candidates_scanned: 64,
                heap_pushes: 9,
                wall_micros: 1234,
                sq8_pruned: 0,
                plan: None,
            }),
        });
        round_trip_response(Response::Search {
            hits: vec![Neighbor { id: 5, dist: 0.5 }],
            stats: Some(SearchStats {
                candidates_scanned: 64,
                heap_pushes: 9,
                wall_micros: 1234,
                sq8_pruned: 0,
                plan: Some(PlanChoice {
                    budget: 96,
                    probes: 8,
                    predicted_recall: 0.93,
                    effective_target: 0.9,
                }),
            }),
        });
        round_trip_response(Response::Calibrated { points: 24, max_recall: 0.995, sample: 256 });
        round_trip_response(Response::Metrics(
            "# TYPE ann_requests_total counter\nann_requests_total 7\n".into(),
        ));
        round_trip_response(Response::Inserted { ids: vec![0, 1, 2, 4_000_000_000] });
        round_trip_response(Response::Deleted { removed: 3 });
        round_trip_response(Response::Flushed {
            snapshot_path: "/tmp/snaps/live.snap".into(),
            segments: 4,
            live_rows: 12_345,
        });
    }

    #[test]
    fn plan_section_requires_the_stats_section() {
        // tag, flags = plan-only, zero hits: contradictory by construction.
        let mut body = vec![RESP_SEARCH, SEARCH_RESP_FLAG_PLAN];
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Response::decode(&body),
            Err(ProtoError::BadShape(m)) if m.contains("plan")
        ));
    }

    #[test]
    fn long_error_messages_truncate_on_char_boundaries() {
        // 1022 ASCII bytes then a 3-byte char straddling the 1024 cap:
        // the encoder must back up to the boundary, not emit broken UTF-8.
        let msg = format!("{}€€", "x".repeat(1022));
        let back = Response::decode(&Response::Error(msg.clone()).encode()).expect("decodable");
        let Response::Error(out) = back else { panic!("wrong variant") };
        assert_eq!(out, "x".repeat(1022), "truncated before the split char");
        // Short messages pass through untouched.
        let back = Response::decode(&Response::Error("héllo".into()).encode()).unwrap();
        assert_eq!(back, Response::Error("héllo".into()));
    }

    #[test]
    fn nan_distance_is_bit_preserved() {
        // Distances must survive bit-exactly, including awkward values.
        let ns = vec![Neighbor { id: 1, dist: f64::from_bits(0x7ff8_0000_0000_0001) }];
        let back = Response::decode(&Response::Neighbors(ns.clone()).encode()).unwrap();
        let Response::Neighbors(out) = back else { panic!("wrong variant") };
        assert_eq!(out[0].dist.to_bits(), ns[0].dist.to_bits());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(Request::decode(&[99]), Err(ProtoError::BadTag(99)));
        assert_eq!(Response::decode(&[42]), Err(ProtoError::BadTag(42)));
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let good = Request::Query {
            index: "x".into(),
            k: 1,
            budget: 8,
            probes: 0,
            vector: vec![1.0, 2.0],
        }
        .encode();
        for cut in 0..good.len() {
            assert!(Request::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(matches!(Request::decode(&body), Err(ProtoError::BadShape(_))));
    }

    #[test]
    fn metrics_request_round_trips() {
        round_trip_request(Request::Metrics);
    }

    #[test]
    fn trace_section_round_trips_on_every_request_kind() {
        let ctx = TraceContext { trace_id: 0xdead_beef_cafe_f00d, span_id: 0x0123_4567_89ab_cdef };
        let kinds = [
            Request::Ping,
            Request::List,
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::Query {
                index: "glove".into(),
                k: 10,
                budget: 128,
                probes: 0,
                vector: vec![1.5, -2.25],
            },
            Request::Batch {
                index: "sift".into(),
                k: 5,
                budget: 64,
                probes: 17,
                dim: 3,
                vectors: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            },
            Request::Build {
                name: "b".into(),
                spec: "linear".into(),
                metric: "euclidean".into(),
                data_path: "/tmp/d.fvecs".into(),
                limit: 0,
                live: false,
                seal_threshold: 0,
                max_segments: 0,
                id_base: 0,
                id_step: 1,
            },
            Request::Insert {
                index: "live".into(),
                dim: 2,
                vectors: vec![1.0, 2.0],
                ids: vec![7],
            },
            Request::Delete { index: "live".into(), ids: vec![1, 2] },
            Request::Flush { index: "live".into() },
            Request::Search {
                index: "glove".into(),
                k: 10,
                budget: 128,
                probes: 3,
                filter: Some(IdFilter::allow(vec![4, 7])),
                max_dist: Some(1.5),
                want_stats: true,
                target_recall: None,
                vector: vec![0.5, -1.25],
            },
            Request::Search {
                index: "glove".into(),
                k: 10,
                budget: 0,
                probes: 0,
                filter: None,
                max_dist: None,
                want_stats: true,
                target_recall: Some(0.95),
                vector: vec![0.5, -1.25],
            },
            Request::Calibrate { index: "glove".into(), sample: 128, k: 10 },
        ];
        for req in kinds {
            // Traced frames carry the context through intact.
            let traced = req.encode_traced(Some(ctx));
            assert_eq!(
                Request::decode_traced(&traced).expect("traced decode"),
                (req.clone(), Some(ctx))
            );
            // Plain decode accepts the same bytes and discards the context.
            assert_eq!(Request::decode(&traced).expect("plain decode"), req);
            // An absent context leaves the encoding byte-identical to the
            // pre-trace wire format.
            assert_eq!(req.encode_traced(None), req.encode());
            assert_eq!(
                Request::decode_traced(&req.encode()).expect("untraced decode"),
                (req.clone(), None)
            );
        }
    }

    #[test]
    fn malformed_trace_sections_are_rejected() {
        let ctx = TraceContext { trace_id: 1, span_id: 2 };
        let good = Request::Ping.encode_traced(Some(ctx));
        assert_eq!(good.len(), 1 + TRACE_SECTION_LEN);
        // Wrong magic.
        let mut bad = good.clone();
        bad[1] = 0x00;
        assert!(matches!(Request::decode_traced(&bad), Err(ProtoError::BadShape(m)) if m.contains("magic")));
        // A future section version is rejected, not misread.
        let mut bad = good.clone();
        bad[2] = TRACE_VERSION + 1;
        assert!(matches!(Request::decode_traced(&bad), Err(ProtoError::BadShape(m)) if m.contains("version")));
        // Any trailing length other than 0 or the full section is junk —
        // including a truncated section and an oversized one.
        for cut in 2..good.len() {
            assert!(Request::decode_traced(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(Request::decode_traced(&long), Err(ProtoError::BadShape(_))));
    }

    #[test]
    fn frame_round_trips_and_detects_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // Mid-frame EOF is an error, not a silent None.
        let cut = &buf[..3];
        let mut r = cut;
        assert!(read_frame(&mut r).is_err());
        // Oversized declared length is rejected before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }
}
