//! The catalog: every index a server instance holds, by name.
//!
//! Since PR 3 the catalog is no longer frozen at startup: the BUILD
//! command constructs an index server-side and [`Catalog::install`]s it.
//! The server wraps the catalog in an `RwLock` — query paths take cheap,
//! uncontended read locks (only the per-index [`IndexStats`] atomics are
//! ever written while serving), and the rare BUILD install takes the
//! write lock for just the map insertion, never for the build itself.

use crate::protocol::IndexInfo;
use crate::snapshot::{SnapError, Snapshot, SNAPSHOT_EXT};
use crate::stats::IndexStats;
use ann::AnnIndex;
use dataset::Dataset;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// One restored, queryable index plus its serving state.
pub struct ServedIndex {
    /// Catalog name. Authoritative source is the snapshot *container*
    /// (not the file name): renaming a `.snap` file does not rename the
    /// served index. `write_index_snapshot` keeps the two in sync.
    pub name: String,
    /// Method name (paper legend).
    pub method: String,
    /// The restored index.
    pub index: Box<dyn AnnIndex>,
    /// The dataset the index answers over (kept for dimension checks and
    /// because the index only borrows it via `Arc`).
    pub data: Arc<Dataset>,
    /// Canonical `ann::spec` string the index was built from; empty when
    /// unknown (pre-meta snapshot, or inserted without provenance).
    pub spec: String,
    /// Serving counters.
    pub stats: IndexStats,
}

impl ServedIndex {
    /// The wire-format description of this entry.
    pub fn info(&self) -> IndexInfo {
        IndexInfo {
            name: self.name.clone(),
            method: self.method.clone(),
            len: self.data.len() as u64,
            dim: self.data.dim() as u32,
            index_bytes: self.index.index_bytes() as u64,
            spec: self.spec.clone(),
        }
    }
}

/// A named, immutable collection of served indexes.
#[derive(Default)]
pub struct Catalog {
    items: BTreeMap<String, ServedIndex>,
}

impl Catalog {
    /// A catalog serving nothing (still useful: PING/LIST/STATS work, and
    /// the CI smoke test starts `annd` against an empty directory).
    pub fn empty() -> Catalog {
        Catalog::default()
    }

    /// Restores every `*.snap` file in `dir`, in file-name order.
    ///
    /// The directory must exist; a directory with no snapshot files
    /// yields an empty catalog. Non-snapshot files are ignored.
    pub fn load_dir(dir: &Path) -> Result<Catalog, SnapError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == SNAPSHOT_EXT))
            .collect();
        paths.sort();
        let mut catalog = Catalog::empty();
        for path in paths {
            catalog.insert_snapshot(Snapshot::read_from(&path)?)?;
        }
        Ok(catalog)
    }

    /// Restores one decoded snapshot into the catalog through the method
    /// registry. The snapshot's meta section (when present) supplies the
    /// served spec string.
    pub fn insert_snapshot(&mut self, snap: Snapshot) -> Result<(), SnapError> {
        let data = Arc::new(snap.data);
        let index = eval::registry::restore_index(&snap.method, &snap.payload, data.clone())
            .map_err(SnapError::Restore)?;
        let spec = snap.meta.map(|m| m.spec).unwrap_or_default();
        self.insert(snap.name, snap.method, spec, index, data)
    }

    /// Inserts an already-built index (used by in-process embedding — the
    /// example and tests serve without touching disk). `spec` is the
    /// canonical `ann::spec` string, empty when unknown.
    pub fn insert(
        &mut self,
        name: String,
        method: String,
        spec: String,
        index: Box<dyn AnnIndex>,
        data: Arc<Dataset>,
    ) -> Result<(), SnapError> {
        if self.items.contains_key(&name) {
            return Err(SnapError::Malformed(format!("duplicate catalog name {name:?}")));
        }
        self.install(name, method, spec, index, data).map(|_| ())
    }

    /// Inserts or replaces an entry (the BUILD command's semantics:
    /// rebuilding under an existing name swaps the index in and resets
    /// its counters). Returns whether an entry was replaced.
    pub fn install(
        &mut self,
        name: String,
        method: String,
        spec: String,
        index: Box<dyn AnnIndex>,
        data: Arc<Dataset>,
    ) -> Result<bool, SnapError> {
        // name and method travel through `put_str` (which asserts the wire
        // cap) in LIST responses, so reject oversized ones here instead
        // of panicking a worker later.
        if name.is_empty() || name.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad catalog name {name:?}")));
        }
        if method.is_empty() || method.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad method name {method:?}")));
        }
        let stats = IndexStats::default();
        let replaced = self
            .items
            .insert(name.clone(), ServedIndex { name, method, spec, index, data, stats });
        Ok(replaced.is_some())
    }

    /// Looks up an index by catalog name.
    pub fn get(&self, name: &str) -> Option<&ServedIndex> {
        self.items.get(name)
    }

    /// All entries in name order (BTreeMap keeps LIST deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &ServedIndex> {
        self.items.values()
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog serves nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_index_snapshot;
    use ann::SearchParams;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("annd-cat-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_dir_restores_in_name_order() {
        let data = Arc::new(SynthSpec::new("cat", 250, 12).with_clusters(5).generate(8));
        let params = LccsParams::euclidean(8.0).with_m(8);
        let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 9, max_alts: 4 },
        );
        let dir = tmp_dir("order");
        let meta = crate::snapshot::SnapMeta::of_build(
            &"mp-lccs:m=8,w=8".parse().unwrap(),
            0.25,
            data.len() as u64,
        );
        write_index_snapshot(&dir, "b-mp", &mp, &data, Some(meta)).unwrap();
        write_index_snapshot(&dir, "a-single", &single, &data, None).unwrap();
        std::fs::write(dir.join("README.txt"), "not a snapshot").unwrap();

        let catalog = Catalog::load_dir(&dir).unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a-single", "b-mp"], "LIST order is name order");
        let served = catalog.get("a-single").unwrap();
        assert_eq!(served.method, "LCCS-LSH");
        assert_eq!(served.spec, "", "meta-less snapshot serves with an unknown spec");
        assert_eq!(
            catalog.get("b-mp").unwrap().spec,
            "mp-lccs:m=8,w=8",
            "snapshot meta supplies the served spec string"
        );
        let p = SearchParams::new(3, 32);
        assert_eq!(
            served.index.query(data.get(4), &p),
            AnnIndex::query(&single, data.get(4), &p),
            "restored index answers identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_serves_nothing_and_missing_dir_errors() {
        let dir = tmp_dir("empty");
        assert!(Catalog::load_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(Catalog::load_dir(&dir.join("missing")), Err(SnapError::Io(_))));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let data = Arc::new(SynthSpec::new("dup", 100, 8).generate(1));
        let idx = || {
            Box::new(LccsLsh::build(
                data.clone(),
                Metric::Euclidean,
                &LccsParams::euclidean(8.0).with_m(8),
            )) as Box<dyn AnnIndex>
        };
        let mut c = Catalog::empty();
        c.insert("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .unwrap();
        assert!(c
            .insert("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .is_err());
    }

    #[test]
    fn install_replaces_and_resets_counters() {
        let data = Arc::new(SynthSpec::new("repl", 100, 8).generate(1));
        let idx = || {
            Box::new(LccsLsh::build(
                data.clone(),
                Metric::Euclidean,
                &LccsParams::euclidean(8.0).with_m(8),
            )) as Box<dyn AnnIndex>
        };
        let mut c = Catalog::empty();
        let replaced = c
            .install("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .unwrap();
        assert!(!replaced);
        c.get("x").unwrap().stats.record_query(10);
        let replaced = c
            .install("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8,seed=2".into(), idx(), data.clone())
            .unwrap();
        assert!(replaced, "same name swaps the entry");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("x").unwrap().spec, "lccs:m=8,w=8,seed=2");
        assert_eq!(c.get("x").unwrap().stats.snapshot("x", "").queries, 0, "fresh counters");
    }
}
