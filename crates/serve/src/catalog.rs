//! The catalog: every index a server instance holds, by name.
//!
//! Since PR 3 the catalog is no longer frozen at startup: the BUILD
//! command constructs an index server-side and [`Catalog::install`]s it.
//! The server wraps the catalog in an `RwLock` — query paths take cheap,
//! uncontended read locks (only the per-index [`IndexStats`] atomics are
//! ever written while serving), and the rare BUILD install takes the
//! write lock for just the map insertion, never for the build itself.
//!
//! Since PR 4 an entry is either [`Backend::Static`] — today's frozen
//! snapshot-restored index, still served lock-free — or
//! [`Backend::Live`]: an [`ann_live::LiveIndex`] behind its own inner
//! `RwLock`, giving single-writer INSERT/DELETE/FLUSH mutation with
//! shared-read queries. All access to a live entry goes through
//! `live_read` / `with_live_write`, which map a poisoned inner lock
//! (a writer panicked mid-mutation) onto a clean error string instead of
//! unwinding the worker thread.

use crate::protocol::IndexInfo;
use crate::snapshot::{SnapError, Snapshot, SNAPSHOT_EXT};
use crate::stats::IndexStats;
use ann::{AnnIndex, MutableAnn};
use ann_live::wal::{wal_path, Wal};
use ann_live::LiveIndex;
use dataset::Dataset;
use plan::CalibrationTable;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// What actually answers queries for one catalog entry.
pub enum Backend {
    /// A frozen index over its dataset: the lock-free read path.
    Static {
        /// The restored index.
        index: Box<dyn AnnIndex>,
        /// The dataset the index answers over (kept for dimension checks
        /// and because the index only borrows it via `Arc`).
        data: Arc<Dataset>,
    },
    /// A mutable LSM-style index: single-writer mutation, shared reads.
    /// Boxed: a `LiveIndex` is an order of magnitude bigger than the
    /// static variant, and entries move through `BTreeMap` rebalances.
    Live(Box<RwLock<LiveIndex>>),
}

/// One restored, queryable index plus its serving state.
pub struct ServedIndex {
    /// Catalog name. Authoritative source is the snapshot *container*
    /// (not the file name): renaming a `.snap` file does not rename the
    /// served index. `write_index_snapshot` keeps the two in sync.
    pub name: String,
    /// Method name (paper legend, or `"Live"` for mutable entries).
    pub method: String,
    /// Canonical `ann::spec` string the index was built from; empty when
    /// unknown (pre-meta snapshot, or inserted without provenance). For
    /// live entries: the spec sealed segments are built with.
    pub spec: String,
    /// The index itself.
    pub backend: Backend,
    /// Serving counters.
    pub stats: IndexStats,
    /// The entry's write-ahead log (live entries under a snapshot
    /// directory only; `None` for static entries and diskless servers).
    /// Lock order: always the inner live `RwLock` first, then this —
    /// every writer appends while still holding the index write lock, so
    /// the log's record order is exactly the order mutations applied.
    pub wal: Mutex<Option<Wal>>,
    /// The entry's calibration table (the `plan` crate's measured
    /// recall/latency grid), restored from the snapshot's `CALB` section
    /// or installed by a CALIBRATE sweep; `None` until calibrated. The
    /// mutex is held only to clone or swap the table — planning clones
    /// it out, never computes under the lock.
    pub calibration: Mutex<Option<CalibrationTable>>,
}

/// The message served for any access to a live entry whose inner lock a
/// panicking writer poisoned.
fn poisoned_msg(name: &str) -> String {
    format!(
        "live index {name:?} is poisoned: an earlier mutation panicked mid-write; \
         rebuild the entry (BUILD) to recover"
    )
}

/// Renders a caught panic payload for an error response.
pub(crate) fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_string)
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Shared-read access to a live entry, with lock poison mapped to a
/// clean error string (the worker must answer, not unwind).
pub(crate) fn live_read<'a>(
    lock: &'a RwLock<LiveIndex>,
    name: &str,
) -> Result<RwLockReadGuard<'a, LiveIndex>, String> {
    lock.read().map_err(|_| poisoned_msg(name))
}

/// Runs one mutation under the inner write lock. Poison maps to a clean
/// error, and a *panic inside the mutation* (a segment builder's own
/// invariant assert on hostile input) is caught here: the guard drops
/// during the unwind, poisoning the lock — correctly marking the entry
/// suspect — and the caller gets an error response instead of a dead
/// worker thread.
pub(crate) fn with_live_write<R>(
    lock: &RwLock<LiveIndex>,
    name: &str,
    f: impl FnOnce(&mut LiveIndex) -> Result<R, String>,
) -> Result<R, String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut guard = lock.write().map_err(|_| poisoned_msg(name))?;
        f(&mut guard)
    }));
    match result {
        Ok(r) => r,
        Err(panic) => Err(format!(
            "live index {name:?}: mutation panicked ({}); the entry is now poisoned — \
             rebuild it to recover",
            panic_message(panic)
        )),
    }
}

impl ServedIndex {
    /// How the entry's vector block is physically served (`mapped` /
    /// `shared` / `owned`). Live entries mutate their rows, so they are
    /// always owned regardless of how their snapshot was opened.
    pub fn load_mode(&self) -> &'static str {
        match &self.backend {
            Backend::Static { data, .. } => data.storage().label(),
            Backend::Live(_) => dataset::StorageKind::Owned.label(),
        }
    }

    /// Whether the SQ8 skip-bound pre-filter covers this entry's scans
    /// (a trained code table spanning every row). A poisoned live entry
    /// reports `false`.
    pub fn sq8_active(&self) -> bool {
        match &self.backend {
            Backend::Static { data, .. } => {
                data.sq8_if_built().is_some_and(|sq| sq.rows() == data.len())
            }
            Backend::Live(lock) => lock.read().map(|live| live.sq8_active()).unwrap_or(false),
        }
    }

    /// Calibration presence (`"none"` / `"fresh"` / `"stale"`) plus the
    /// table's age in seconds — what LIST, STATS and `ann-cli describe`
    /// surface so operators can judge whether planned answers still
    /// describe the index being served.
    pub fn cal_summary(&self) -> (&'static str, u64) {
        let guard = self.calibration.lock().unwrap_or_else(|e| e.into_inner());
        match &*guard {
            None => ("none", 0),
            Some(t) => {
                let now = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                (if t.stale { "stale" } else { "fresh" }, t.age_secs(now))
            }
        }
    }

    /// Marks the calibration table stale (the index mutated after its
    /// sweep: the table still plans, but honesty demands the label).
    /// No-op when uncalibrated.
    pub fn mark_cal_stale(&self) {
        let mut guard = self.calibration.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = guard.as_mut() {
            t.stale = true;
        }
    }

    /// The wire-format description of this entry. A poisoned live entry
    /// still lists (name, method, spec are lock-free) but reports zero
    /// rows/bytes; its query paths return the full poison error.
    pub fn info(&self) -> IndexInfo {
        let (len, dim, index_bytes) = match &self.backend {
            Backend::Static { index, data } => {
                (data.len() as u64, data.dim() as u32, index.index_bytes() as u64)
            }
            Backend::Live(lock) => match lock.read() {
                Ok(live) => {
                    (live.live_len() as u64, live.dim() as u32, live.index_bytes() as u64)
                }
                Err(_) => (0, 0, 0),
            },
        };
        let (cal, cal_age_secs) = self.cal_summary();
        IndexInfo {
            name: self.name.clone(),
            method: self.method.clone(),
            len,
            dim,
            index_bytes,
            spec: self.spec.clone(),
            load_mode: self.load_mode().to_string(),
            sq8: self.sq8_active(),
            cal: cal.to_string(),
            cal_age_secs,
        }
    }
}

/// A named collection of served indexes.
#[derive(Default)]
pub struct Catalog {
    items: BTreeMap<String, ServedIndex>,
}

impl Catalog {
    /// A catalog serving nothing (still useful: PING/LIST/STATS work, and
    /// the CI smoke test starts `annd` against an empty directory).
    pub fn empty() -> Catalog {
        Catalog::default()
    }

    /// Restores every `*.snap` file in `dir`, in file-name order.
    ///
    /// Each file is opened through [`Snapshot::open_mapped`], so v3
    /// containers serve their vector blocks zero-copy from the page
    /// cache (legacy files and non-unix hosts fall back to an owned
    /// read — byte-identical answers either way; check
    /// [`ServedIndex::load_mode`] to see which path an entry took).
    ///
    /// The directory must exist; a directory with no snapshot files
    /// yields an empty catalog. Non-snapshot files are ignored.
    ///
    /// After the snapshots restore, every live entry's write-ahead log
    /// (`<name>.wal`, if present) is replayed over its snapshot state —
    /// see `Catalog::attach_wals` and `docs/durability.md` — so rows
    /// acknowledged after the last FLUSH survive a crash.
    pub fn load_dir(dir: &Path) -> Result<Catalog, SnapError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == SNAPSHOT_EXT))
            .collect();
        paths.sort();
        let mut catalog = Catalog::empty();
        for path in paths {
            catalog.insert_snapshot(Snapshot::open_mapped(&path)?)?;
        }
        catalog.attach_wals(dir)?;
        Ok(catalog)
    }

    /// Attaches a WAL to every live entry (creating an empty log when
    /// none exists) and replays whatever the log holds beyond the
    /// entry's snapshot:
    ///
    /// - A log whose header generation matches the snapshot's `wal_gen`
    ///   is replayed record by record — the restored index then answers
    ///   exactly like the pre-crash one (the crash-consistency contract
    ///   in `docs/durability.md`).
    /// - A torn final record (crash mid-append) is logged and discarded;
    ///   everything before it replays normally. By definition the torn
    ///   record was never fsynced completely, so it was never
    ///   acknowledged.
    /// - A generation mismatch means the log belongs to a different
    ///   snapshot epoch — e.g. the process died between a FLUSH's
    ///   snapshot rename and its WAL truncate, so every logged record is
    ///   already inside the snapshot. Replaying would double-apply;
    ///   instead the log is reported and reset to the snapshot's
    ///   generation.
    ///
    /// Static entries get any stale `<name>.wal` removed: a log left by
    /// a live entry that a static BUILD later replaced must not
    /// resurrect rows on a future restore.
    fn attach_wals(&mut self, dir: &Path) -> Result<(), SnapError> {
        for served in self.items.values_mut() {
            let path = wal_path(dir, &served.name);
            let Backend::Live(lock) = &mut served.backend else {
                std::fs::remove_file(&path).ok();
                continue;
            };
            // The catalog is under construction: no lock can be
            // contended or poisoned yet.
            let live = lock.get_mut().expect("freshly built lock");
            let snap_gen = live.wal_gen();
            let wal = if path.exists() {
                let (mut wal, replay) = Wal::load(&path)?;
                if replay.torn {
                    obs::warn!(
                        "discarded a torn WAL tail (crash mid-append; the torn record was \
                         never acknowledged)",
                        index = served.name
                    );
                }
                if replay.generation == snap_gen {
                    live.apply_wal_records(&replay.records).map_err(|e| {
                        SnapError::Malformed(format!(
                            "replaying WAL for {:?}: {e}",
                            served.name
                        ))
                    })?;
                } else {
                    obs::warn!(
                        "WAL generation does not match the snapshot; its records are \
                         already covered by the snapshot — resetting the log",
                        index = served.name,
                        wal_gen = replay.generation,
                        snap_gen = snap_gen
                    );
                    wal.reset(snap_gen)?;
                }
                wal
            } else {
                Wal::create(&path, snap_gen)?
            };
            *served.wal.get_mut().expect("freshly built mutex") = Some(wal);
        }
        Ok(())
    }

    /// Restores one decoded snapshot into the catalog. A container with a
    /// LIVE section reassembles into a mutable [`LiveIndex`] (rebuilding
    /// its segments through the registry); anything else restores through
    /// the method registry as a static entry.
    pub fn insert_snapshot(&mut self, snap: Snapshot) -> Result<(), SnapError> {
        let calibration = snap.calibration;
        if let Some(state) = snap.live {
            if snap.method != ann_live::LIVE_METHOD {
                return Err(SnapError::Malformed(format!(
                    "LIVE section in a {:?} container",
                    snap.method
                )));
            }
            // Reject a duplicate name before the expensive segment
            // rebuilds, not after.
            if self.items.contains_key(&snap.name) {
                return Err(SnapError::Malformed(format!(
                    "duplicate catalog name {:?}",
                    snap.name
                )));
            }
            let spec = state.spec.to_string();
            let live = LiveIndex::from_state(state)
                .map_err(|e| SnapError::Malformed(format!("reassembling live index: {e}")))?;
            let name = snap.name.clone();
            self.install_live(snap.name, spec, live)?;
            self.set_calibration(&name, calibration);
            return Ok(());
        }
        let data = Arc::new(snap.data);
        let index = eval::registry::restore_index(&snap.method, &snap.payload, data.clone())
            .map_err(SnapError::Restore)?;
        let spec = snap.meta.map(|m| m.spec).unwrap_or_default();
        let name = snap.name.clone();
        self.insert(snap.name, snap.method, spec, index, data)?;
        self.set_calibration(&name, calibration);
        Ok(())
    }

    /// Installs (or clears) an entry's calibration table. Used by the
    /// snapshot restore path and by the CALIBRATE handler.
    pub fn set_calibration(&mut self, name: &str, table: Option<CalibrationTable>) {
        if let Some(served) = self.items.get_mut(name) {
            *served.calibration.get_mut().unwrap_or_else(|e| e.into_inner()) = table;
        }
    }

    /// Inserts an already-built static index (used by in-process
    /// embedding — the example and tests serve without touching disk).
    /// `spec` is the canonical `ann::spec` string, empty when unknown.
    pub fn insert(
        &mut self,
        name: String,
        method: String,
        spec: String,
        index: Box<dyn AnnIndex>,
        data: Arc<Dataset>,
    ) -> Result<(), SnapError> {
        if self.items.contains_key(&name) {
            return Err(SnapError::Malformed(format!("duplicate catalog name {name:?}")));
        }
        self.install(name, method, spec, index, data).map(|_| ())
    }

    /// Inserts or replaces a static entry (the BUILD command's semantics:
    /// rebuilding under an existing name swaps the index in and resets
    /// its counters). Returns whether an entry was replaced.
    pub fn install(
        &mut self,
        name: String,
        method: String,
        spec: String,
        index: Box<dyn AnnIndex>,
        data: Arc<Dataset>,
    ) -> Result<bool, SnapError> {
        self.install_backend(name, method, spec, Backend::Static { index, data })
    }

    /// Inserts or replaces a *live* (mutable) entry. Returns whether an
    /// entry was replaced.
    pub fn install_live(
        &mut self,
        name: String,
        spec: String,
        live: LiveIndex,
    ) -> Result<bool, SnapError> {
        self.install_backend(
            name,
            ann_live::LIVE_METHOD.to_string(),
            spec,
            Backend::Live(Box::new(RwLock::new(live))),
        )
    }

    fn install_backend(
        &mut self,
        name: String,
        method: String,
        spec: String,
        backend: Backend,
    ) -> Result<bool, SnapError> {
        // name and method travel through `put_str` (which asserts the wire
        // cap) in LIST responses, so reject oversized ones here instead
        // of panicking a worker later.
        if name.is_empty() || name.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad catalog name {name:?}")));
        }
        if method.is_empty() || method.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad method name {method:?}")));
        }
        let stats = IndexStats::default();
        let replaced = self.items.insert(
            name.clone(),
            ServedIndex {
                name,
                method,
                spec,
                backend,
                stats,
                wal: Mutex::new(None),
                calibration: Mutex::new(None),
            },
        );
        Ok(replaced.is_some())
    }

    /// Looks up an index by catalog name.
    pub fn get(&self, name: &str) -> Option<&ServedIndex> {
        self.items.get(name)
    }

    /// All entries in name order (BTreeMap keeps LIST deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &ServedIndex> {
        self.items.values()
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog serves nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_index_snapshot;
    use ann::SearchParams;
    use ann_live::LiveConfig;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("annd-cat-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Unwraps a static backend (most tests exercise that path).
    fn static_index(served: &ServedIndex) -> &dyn AnnIndex {
        match &served.backend {
            Backend::Static { index, .. } => index.as_ref(),
            Backend::Live(_) => panic!("expected a static entry"),
        }
    }

    #[test]
    fn load_dir_restores_in_name_order() {
        let data = Arc::new(SynthSpec::new("cat", 250, 12).with_clusters(5).generate(8));
        let params = LccsParams::euclidean(8.0).with_m(8);
        let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 9, max_alts: 4 },
        );
        let dir = tmp_dir("order");
        let meta = crate::snapshot::SnapMeta::of_build(
            &"mp-lccs:m=8,w=8".parse().unwrap(),
            0.25,
            data.len() as u64,
        );
        write_index_snapshot(&dir, "b-mp", &mp, &data, Some(meta)).unwrap();
        write_index_snapshot(&dir, "a-single", &single, &data, None).unwrap();
        std::fs::write(dir.join("README.txt"), "not a snapshot").unwrap();

        let catalog = Catalog::load_dir(&dir).unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a-single", "b-mp"], "LIST order is name order");
        let served = catalog.get("a-single").unwrap();
        assert_eq!(served.method, "LCCS-LSH");
        assert_eq!(served.spec, "", "meta-less snapshot serves with an unknown spec");
        assert_eq!(
            catalog.get("b-mp").unwrap().spec,
            "mp-lccs:m=8,w=8",
            "snapshot meta supplies the served spec string"
        );
        let p = SearchParams::new(3, 32);
        assert_eq!(
            static_index(served).query(data.get(4), &p),
            AnnIndex::query(&single, data.get(4), &p),
            "restored index answers identically"
        );
        // v3 snapshots on unix serve their vector block zero-copy, and
        // the build-primed SQ8 table rides along in the container.
        if cfg!(unix) {
            assert_eq!(served.load_mode(), "mapped");
        }
        assert!(served.sq8_active(), "SQ8C section restores the pre-filter");
        let info = served.info();
        assert_eq!(info.load_mode, served.load_mode());
        assert!(info.sq8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_serves_nothing_and_missing_dir_errors() {
        let dir = tmp_dir("empty");
        assert!(Catalog::load_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(Catalog::load_dir(&dir.join("missing")), Err(SnapError::Io(_))));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let data = Arc::new(SynthSpec::new("dup", 100, 8).generate(1));
        let idx = || {
            Box::new(LccsLsh::build(
                data.clone(),
                Metric::Euclidean,
                &LccsParams::euclidean(8.0).with_m(8),
            )) as Box<dyn AnnIndex>
        };
        let mut c = Catalog::empty();
        c.insert("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .unwrap();
        assert!(c
            .insert("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .is_err());
    }

    #[test]
    fn install_replaces_and_resets_counters() {
        let data = Arc::new(SynthSpec::new("repl", 100, 8).generate(1));
        let idx = || {
            Box::new(LccsLsh::build(
                data.clone(),
                Metric::Euclidean,
                &LccsParams::euclidean(8.0).with_m(8),
            )) as Box<dyn AnnIndex>
        };
        let mut c = Catalog::empty();
        let replaced = c
            .install("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8".into(), idx(), data.clone())
            .unwrap();
        assert!(!replaced);
        c.get("x").unwrap().stats.record_query(10);
        let replaced = c
            .install("x".into(), "LCCS-LSH".into(), "lccs:m=8,w=8,seed=2".into(), idx(), data.clone())
            .unwrap();
        assert!(replaced, "same name swaps the entry");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("x").unwrap().spec, "lccs:m=8,w=8,seed=2");
        assert_eq!(
            c.get("x").unwrap().stats.snapshot("x", "", "owned", false).queries,
            0,
            "fresh counters"
        );
    }

    fn live_entry() -> Catalog {
        let data = SynthSpec::new("lv", 50, 6).generate(2);
        let live = LiveIndex::build_from(
            "linear".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig::default(),
        )
        .unwrap();
        let mut c = Catalog::empty();
        assert!(!c.install_live("lv".into(), "linear".into(), live).unwrap());
        c
    }

    #[test]
    fn live_entries_list_and_replace_like_static_ones() {
        let mut c = live_entry();
        let info = c.get("lv").unwrap().info();
        assert_eq!(info.method, ann_live::LIVE_METHOD);
        assert_eq!((info.len, info.dim), (50, 6));
        assert_eq!(info.spec, "linear");
        // A live entry can be replaced by a static one and vice versa.
        let data = Arc::new(SynthSpec::new("st", 30, 6).generate(3));
        let idx = Box::new(LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(8),
        )) as Box<dyn AnnIndex>;
        assert!(c.install("lv".into(), "LCCS-LSH".into(), "lccs:m=8".into(), idx, data).unwrap());
        assert!(matches!(c.get("lv").unwrap().backend, Backend::Static { .. }));
    }

    /// The poison satellite: after a writer panic inside the inner lock,
    /// both read and write helpers must answer with a clean error string,
    /// never propagate the panic into the (worker) thread.
    #[test]
    fn poisoned_live_lock_maps_to_clean_errors() {
        let c = live_entry();
        let served = c.get("lv").unwrap();
        let Backend::Live(lock) = &served.backend else { panic!("live entry") };

        // A mutation that panics: caught, reported, and the lock poisons.
        let err = with_live_write(lock, "lv", |_live| -> Result<(), String> {
            panic!("builder invariant violated")
        })
        .unwrap_err();
        assert!(err.contains("mutation panicked"), "{err}");
        assert!(err.contains("builder invariant violated"), "{err}");
        assert!(lock.is_poisoned(), "the panicking writer must poison the lock");

        // Every subsequent access maps poison to a clean error.
        let err = live_read(lock, "lv").err().expect("read maps poison");
        assert!(err.contains("poisoned"), "{err}");
        let err = with_live_write(lock, "lv", |live| Ok(live.live_len())).unwrap_err();
        assert!(err.contains("poisoned"), "{err}");

        // LIST still works: lock-free fields intact, sizes zeroed.
        let info = served.info();
        assert_eq!(info.method, ann_live::LIVE_METHOD);
        assert_eq!((info.len, info.dim, info.index_bytes), (0, 0, 0));
    }

    #[test]
    fn live_snapshot_round_trips_through_the_catalog() {
        use ann::MutableAnn;
        let data = SynthSpec::new("rt", 40, 5).generate(4);
        let mut live = LiveIndex::build_from(
            "lccs:m=8,w=8,seed=9".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig { seal_threshold: 8, max_segments: 2 },
        )
        .unwrap();
        live.insert(&SynthSpec::new("more", 3, 5).generate(5), None).unwrap();
        live.delete(&[1]);
        let state = live.state();
        let dir = tmp_dir("livert");
        let meta = crate::snapshot::SnapMeta::of_build(
            &state.spec,
            0.1,
            state.live_rows() as u64,
        );
        crate::snapshot::stage_live_snapshot(&dir, "lv", &state, &meta, None)
            .unwrap()
            .commit()
            .unwrap();
        let catalog = Catalog::load_dir(&dir).unwrap();
        let served = catalog.get("lv").unwrap();
        assert_eq!(served.method, ann_live::LIVE_METHOD);
        assert_eq!(served.spec, "lccs:m=8,w=8,seed=9");
        let Backend::Live(lock) = &served.backend else { panic!("live entry") };
        let reloaded = live_read(lock, "lv").unwrap();
        assert_eq!(reloaded.live_len(), 42);
        let p = SearchParams::new(4, 32);
        for i in [0usize, 20, 39] {
            assert_eq!(
                AnnIndex::query(&*reloaded, data.get(i), &p),
                AnnIndex::query(&live, data.get(i), &p),
                "reloaded live index answers identically (query {i})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
