//! The catalog: every index a server instance holds, by name.
//!
//! A catalog is immutable once the server starts (snapshots are the unit
//! of deployment — to change an index, write a new snapshot and restart
//! or start a second instance), which is what lets query paths run
//! without any locking: workers share `Arc<Catalog>` and only the
//! per-index [`IndexStats`] atomics are ever written.

use crate::protocol::IndexInfo;
use crate::snapshot::{SnapError, Snapshot, SNAPSHOT_EXT};
use crate::stats::IndexStats;
use ann::AnnIndex;
use dataset::Dataset;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// One restored, queryable index plus its serving state.
pub struct ServedIndex {
    /// Catalog name. Authoritative source is the snapshot *container*
    /// (not the file name): renaming a `.snap` file does not rename the
    /// served index. `write_index_snapshot` keeps the two in sync.
    pub name: String,
    /// Method name (paper legend).
    pub method: String,
    /// The restored index.
    pub index: Box<dyn AnnIndex>,
    /// The dataset the index answers over (kept for dimension checks and
    /// because the index only borrows it via `Arc`).
    pub data: Arc<Dataset>,
    /// Serving counters.
    pub stats: IndexStats,
}

impl ServedIndex {
    /// The wire-format description of this entry.
    pub fn info(&self) -> IndexInfo {
        IndexInfo {
            name: self.name.clone(),
            method: self.method.clone(),
            len: self.data.len() as u64,
            dim: self.data.dim() as u32,
            index_bytes: self.index.index_bytes() as u64,
        }
    }
}

/// A named, immutable collection of served indexes.
#[derive(Default)]
pub struct Catalog {
    items: BTreeMap<String, ServedIndex>,
}

impl Catalog {
    /// A catalog serving nothing (still useful: PING/LIST/STATS work, and
    /// the CI smoke test starts `annd` against an empty directory).
    pub fn empty() -> Catalog {
        Catalog::default()
    }

    /// Restores every `*.snap` file in `dir`, in file-name order.
    ///
    /// The directory must exist; a directory with no snapshot files
    /// yields an empty catalog. Non-snapshot files are ignored.
    pub fn load_dir(dir: &Path) -> Result<Catalog, SnapError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == SNAPSHOT_EXT))
            .collect();
        paths.sort();
        let mut catalog = Catalog::empty();
        for path in paths {
            catalog.insert_snapshot(Snapshot::read_from(&path)?)?;
        }
        Ok(catalog)
    }

    /// Restores one decoded snapshot into the catalog through the method
    /// registry.
    pub fn insert_snapshot(&mut self, snap: Snapshot) -> Result<(), SnapError> {
        let data = Arc::new(snap.data);
        let index = eval::registry::restore_index(&snap.method, &snap.payload, data.clone())
            .map_err(SnapError::Restore)?;
        self.insert(snap.name, snap.method, index, data)
    }

    /// Inserts an already-built index (used by in-process embedding — the
    /// example and tests serve without touching disk).
    pub fn insert(
        &mut self,
        name: String,
        method: String,
        index: Box<dyn AnnIndex>,
        data: Arc<Dataset>,
    ) -> Result<(), SnapError> {
        // Both strings travel through `put_str` (which asserts the wire
        // cap) in LIST responses, so reject oversized ones here instead
        // of panicking a worker later.
        if name.is_empty() || name.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad catalog name {name:?}")));
        }
        if method.is_empty() || method.len() > crate::protocol::MAX_NAME {
            return Err(SnapError::Malformed(format!("bad method name {method:?}")));
        }
        if self.items.contains_key(&name) {
            return Err(SnapError::Malformed(format!("duplicate catalog name {name:?}")));
        }
        let stats = IndexStats::default();
        self.items.insert(name.clone(), ServedIndex { name, method, index, data, stats });
        Ok(())
    }

    /// Looks up an index by catalog name.
    pub fn get(&self, name: &str) -> Option<&ServedIndex> {
        self.items.get(name)
    }

    /// All entries in name order (BTreeMap keeps LIST deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &ServedIndex> {
        self.items.values()
    }

    /// Number of served indexes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog serves nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_index_snapshot;
    use ann::SearchParams;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("annd-cat-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_dir_restores_in_name_order() {
        let data = Arc::new(SynthSpec::new("cat", 250, 12).with_clusters(5).generate(8));
        let params = LccsParams::euclidean(8.0).with_m(8);
        let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 9, max_alts: 4 },
        );
        let dir = tmp_dir("order");
        write_index_snapshot(&dir, "b-mp", &mp, &data).unwrap();
        write_index_snapshot(&dir, "a-single", &single, &data).unwrap();
        std::fs::write(dir.join("README.txt"), "not a snapshot").unwrap();

        let catalog = Catalog::load_dir(&dir).unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a-single", "b-mp"], "LIST order is name order");
        let served = catalog.get("a-single").unwrap();
        assert_eq!(served.method, "LCCS-LSH");
        let p = SearchParams::new(3, 32);
        assert_eq!(
            served.index.query(data.get(4), &p),
            AnnIndex::query(&single, data.get(4), &p),
            "restored index answers identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_serves_nothing_and_missing_dir_errors() {
        let dir = tmp_dir("empty");
        assert!(Catalog::load_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(Catalog::load_dir(&dir.join("missing")), Err(SnapError::Io(_))));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let data = Arc::new(SynthSpec::new("dup", 100, 8).generate(1));
        let idx = || {
            Box::new(LccsLsh::build(
                data.clone(),
                Metric::Euclidean,
                &LccsParams::euclidean(8.0).with_m(8),
            )) as Box<dyn AnnIndex>
        };
        let mut c = Catalog::empty();
        c.insert("x".into(), "LCCS-LSH".into(), idx(), data.clone()).unwrap();
        assert!(c.insert("x".into(), "LCCS-LSH".into(), idx(), data.clone()).is_err());
    }
}
