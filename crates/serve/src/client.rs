//! Blocking client for the `annd` protocol, used by `ann-cli`, the
//! end-to-end tests, the cluster router's shard pool, and any Rust
//! caller that wants remote ANN queries.

use crate::protocol::{
    read_frame, write_frame, IndexInfo, ProtoError, Request, Response, StatsEntry,
};
use ann::{SearchRequest, SearchStats};
use dataset::exact::Neighbor;
use dataset::Dataset;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent a frame this client cannot decode.
    Proto(ProtoError),
    /// The server answered with an error message.
    Server(String),
    /// A router answered with degraded results: the named shards did not
    /// respond. Returned by the strict single-answer methods
    /// ([`Client::query`], [`Client::search`], [`Client::query_batch`]);
    /// use [`Client::search_outcome`] to consume partial answers instead
    /// of treating them as failures.
    Partial(Vec<String>),
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Partial(missing) => {
                write!(f, "partial results: missing shards [{}]", missing.join(", "))
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response, wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A search answer that may be degraded: `missing_shards` is empty for a
/// complete answer (always, when talking to a single-node server) and
/// names the unresponsive shards when a router degraded the result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The (possibly partial) merged hits.
    pub hits: Vec<Neighbor>,
    /// Execution counters, present iff the request asked for stats and
    /// the answer was complete (a degraded answer carries no stats).
    pub stats: Option<SearchStats>,
    /// `shard<i>@<addr>` labels of shards that did not answer.
    pub missing_shards: Vec<String>,
}

/// One connection to an `annd` instance (single-node server or cluster
/// router — same protocol). Requests are answered in order on the same
/// connection (the protocol has no pipelining or request ids), so a
/// `Client` is cheap, single-threaded state.
///
/// The connection is reused across calls. If the server closed it in the
/// meantime (idle timeout, restart), the next *idempotent* request
/// (PING/LIST/STATS/QUERY/SEARCH/BATCH) transparently redials and
/// retries once; writes (BUILD/INSERT/DELETE/FLUSH) surface the
/// transport error instead, because blindly retrying one could apply it
/// twice.
pub struct Client {
    stream: TcpStream,
    /// Resolved peer addresses, kept for the reconnect path.
    addrs: Vec<SocketAddr>,
    /// Connect/read timeout when dialed via [`Client::connect_timeout`]
    /// (the router's shard pool); `None` means blocking system defaults.
    timeout: Option<Duration>,
    /// Trace context stamped onto every outgoing request frame; `None`
    /// (the default) leaves frames byte-identical to untraced builds.
    /// The router sets a child context here before each downstream call
    /// so shard logs share the request's trace id.
    pub trace: Option<obs::TraceContext>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, addrs, timeout: None, trace: None })
    }

    /// Connects with a deadline on the dial *and* on every later read —
    /// the variant the cluster router uses so one dead shard cannot pin
    /// a fan-out. The timeout also applies to transparent reconnects.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let first = addrs.first().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(first, timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout)).ok();
        Ok(Client { stream, addrs, timeout: Some(timeout), trace: None })
    }

    fn redial(&mut self) -> io::Result<()> {
        let stream = match self.timeout {
            Some(t) => {
                let first = self.addrs.first().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "no address to redial")
                })?;
                let s = TcpStream::connect_timeout(first, t)?;
                s.set_read_timeout(Some(t)).ok();
                s
            }
            None => TcpStream::connect(&self.addrs[..])?,
        };
        stream.set_nodelay(true).ok();
        self.stream = stream;
        Ok(())
    }

    /// Whether retrying this request on a fresh connection is safe: true
    /// for reads (re-asking cannot change server state), false for
    /// writes (an INSERT whose ack was lost may already be applied).
    fn idempotent(req: &Request) -> bool {
        matches!(
            req,
            Request::Ping
                | Request::List
                | Request::Stats
                | Request::Query { .. }
                | Request::Search { .. }
                | Request::Batch { .. }
                | Request::Metrics
        )
    }

    /// Whether this transport error means the connection is gone (stale
    /// pooled stream, server restart) rather than the request failing in
    /// flight for its own reasons. Timeouts are deliberately excluded:
    /// the server may simply be slow, and retrying would double the wait.
    fn disconnected(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
        )
    }

    fn call_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode_traced(self.trace))?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
        })?;
        match Response::decode(&body).map_err(ClientError::Proto)? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            resp => Ok(resp),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call_once(req) {
            Err(ClientError::Io(e)) if Self::idempotent(req) && Self::disconnected(&e) => {
                // One reconnect, one retry: enough to ride out an idle
                // drop or a restart, without hammering a dead peer.
                self.redial()?;
                self.call_once(req)
            }
            other => other,
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("PONG")),
        }
    }

    /// Enumerates the served indexes.
    pub fn list(&mut self) -> Result<Vec<IndexInfo>, ClientError> {
        match self.call(&Request::List)? {
            Response::List(infos) => Ok(infos),
            _ => Err(ClientError::Unexpected("LIST")),
        }
    }

    /// Fetches the per-index serving counters.
    pub fn stats(&mut self) -> Result<Vec<StatsEntry>, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("STATS")),
        }
    }

    /// Fetches the node's telemetry in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::Unexpected("METRICS")),
        }
    }

    /// One c-k-ANNS query. `probes = 0` uses the index's default.
    /// Against a degraded router this fails with
    /// [`ClientError::Partial`]; use [`Client::search_outcome`] to
    /// accept partial answers.
    pub fn query(
        &mut self,
        index: &str,
        k: usize,
        budget: usize,
        probes: usize,
        vector: &[f32],
    ) -> Result<Vec<Neighbor>, ClientError> {
        let req = Request::Query {
            index: index.to_string(),
            k: k as u32,
            budget: budget as u32,
            probes: probes as u32,
            vector: vector.to_vec(),
        };
        match self.call(&req)? {
            Response::Neighbors(ns) => Ok(ns),
            Response::Partial { missing_shards, .. } => Err(ClientError::Partial(missing_shards)),
            _ => Err(ClientError::Unexpected("NEIGHBORS")),
        }
    }

    /// One self-describing search: the full [`SearchRequest`] contract
    /// over the wire — id filter, distance threshold, and (when
    /// `req.fields.stats` is set) the [`SearchStats`] section in the
    /// reply. Distances are bit-exact; a request without filter or
    /// threshold is answered identically to [`Client::query`]. A
    /// degraded router answer fails with [`ClientError::Partial`].
    pub fn search(
        &mut self,
        index: &str,
        vector: &[f32],
        req: &SearchRequest,
    ) -> Result<(Vec<Neighbor>, Option<SearchStats>), ClientError> {
        let out = self.search_outcome(index, vector, req)?;
        if out.missing_shards.is_empty() {
            Ok((out.hits, out.stats))
        } else {
            Err(ClientError::Partial(out.missing_shards))
        }
    }

    /// Like [`Client::search`], but a router's degraded answer comes
    /// back as data ([`SearchOutcome::missing_shards`] non-empty)
    /// instead of an error — the call for availability-first readers.
    pub fn search_outcome(
        &mut self,
        index: &str,
        vector: &[f32],
        req: &SearchRequest,
    ) -> Result<SearchOutcome, ClientError> {
        // A planned request (target set, knobs untouched) sends the
        // 0-sentinels the server expects; a request carrying *both* a
        // target and explicit knobs is transmitted faithfully so the
        // server rejects it with exactly the in-process error text.
        let sentinel = req.target_recall.is_some() && !req.knobs_set;
        let wire = Request::Search {
            index: index.to_string(),
            k: u32::try_from(req.k).unwrap_or(u32::MAX),
            budget: if sentinel { 0 } else { u32::try_from(req.budget).unwrap_or(u32::MAX) },
            probes: if sentinel { 0 } else { u32::try_from(req.probes).unwrap_or(u32::MAX) },
            filter: req.filter.clone(),
            max_dist: req.max_dist,
            want_stats: req.fields.stats,
            target_recall: req.target_recall,
            vector: vector.to_vec(),
        };
        match self.call(&wire)? {
            Response::Search { hits, stats } => {
                Ok(SearchOutcome { hits, stats, missing_shards: Vec::new() })
            }
            Response::Partial { mut lists, missing_shards } => Ok(SearchOutcome {
                hits: lists.pop().unwrap_or_default(),
                stats: None,
                missing_shards,
            }),
            _ => Err(ClientError::Unexpected("SEARCH")),
        }
    }

    /// A whole query batch; the server answers through its parallel
    /// executor and returns one list per query, in request order. A
    /// degraded router answer fails with [`ClientError::Partial`].
    pub fn query_batch(
        &mut self,
        index: &str,
        k: usize,
        budget: usize,
        probes: usize,
        queries: &Dataset,
    ) -> Result<Vec<Vec<Neighbor>>, ClientError> {
        let req = Request::Batch {
            index: index.to_string(),
            k: k as u32,
            budget: budget as u32,
            probes: probes as u32,
            dim: queries.dim() as u32,
            vectors: queries.as_flat().to_vec(),
        };
        match self.call(&req)? {
            Response::Batch(lists) => Ok(lists),
            Response::Partial { missing_shards, .. } => Err(ClientError::Partial(missing_shards)),
            _ => Err(ClientError::Unexpected("BATCH")),
        }
    }

    /// Builds an index server-side from an `ann::spec` grammar string and
    /// a server-local `.fvecs` dataset path, installing it under `name`
    /// (replacing any previous entry of that name). `limit = 0` reads the
    /// whole dataset; the wire field is `u32`, so larger caps saturate at
    /// `u32::MAX` rows instead of silently wrapping. Returns the
    /// installed entry's description, the build wall-time in
    /// microseconds, and the written snapshot path (empty if the server
    /// persisted nothing).
    pub fn build(
        &mut self,
        name: &str,
        spec: &str,
        metric: &str,
        data_path: &str,
        limit: usize,
    ) -> Result<(IndexInfo, u64, String), ClientError> {
        self.build_inner(name, spec, metric, data_path, limit, false, 0, 0, (0, 1))
    }

    /// Like [`Client::build`], but the server installs a *live* (mutable,
    /// LSM-style segmented) index: the dataset becomes the first sealed
    /// segment and the entry then accepts [`Client::insert`] /
    /// [`Client::delete`] / [`Client::flush`]. `seal_threshold` and
    /// `max_segments` tune the seal/compaction policy (`0` = server
    /// default).
    #[allow(clippy::too_many_arguments)]
    pub fn build_live(
        &mut self,
        name: &str,
        spec: &str,
        metric: &str,
        data_path: &str,
        limit: usize,
        seal_threshold: usize,
        max_segments: usize,
    ) -> Result<(IndexInfo, u64, String), ClientError> {
        self.build_inner(
            name,
            spec,
            metric,
            data_path,
            limit,
            true,
            seal_threshold,
            max_segments,
            (0, 1),
        )
    }

    /// [`Client::build_live`] with an explicit id layout: dataset row
    /// `i` gets external id `id_base + i * id_step`. The router builds
    /// shard *s* of an *m*-shard cluster with `(s, m)`, so shard-local
    /// ids are exactly the global ids of its rows.
    #[allow(clippy::too_many_arguments)]
    pub fn build_live_ids(
        &mut self,
        name: &str,
        spec: &str,
        metric: &str,
        data_path: &str,
        seal_threshold: usize,
        max_segments: usize,
        id_base: u32,
        id_step: u32,
    ) -> Result<(IndexInfo, u64, String), ClientError> {
        self.build_inner(
            name,
            spec,
            metric,
            data_path,
            0,
            true,
            seal_threshold,
            max_segments,
            (id_base, id_step),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build_inner(
        &mut self,
        name: &str,
        spec: &str,
        metric: &str,
        data_path: &str,
        limit: usize,
        live: bool,
        seal_threshold: usize,
        max_segments: usize,
        (id_base, id_step): (u32, u32),
    ) -> Result<(IndexInfo, u64, String), ClientError> {
        let req = Request::Build {
            name: name.to_string(),
            spec: spec.to_string(),
            metric: metric.to_string(),
            data_path: data_path.to_string(),
            limit: u32::try_from(limit).unwrap_or(u32::MAX),
            live,
            seal_threshold: u32::try_from(seal_threshold).unwrap_or(u32::MAX),
            max_segments: u32::try_from(max_segments).unwrap_or(u32::MAX),
            id_base,
            id_step,
        };
        match self.call(&req)? {
            Response::Built { info, build_micros, snapshot_path } => {
                Ok((info, build_micros, snapshot_path))
            }
            _ => Err(ClientError::Unexpected("BUILT")),
        }
    }

    /// Inserts rows into a live index, returning the external id assigned
    /// to each row in order. `ids` supplies explicit ids (one per row);
    /// `None` auto-assigns. The write is visible to every later request
    /// on any connection once this call returns (read-your-writes).
    pub fn insert(
        &mut self,
        index: &str,
        rows: &Dataset,
        ids: Option<&[u32]>,
    ) -> Result<Vec<u32>, ClientError> {
        let req = Request::Insert {
            index: index.to_string(),
            dim: rows.dim() as u32,
            vectors: rows.as_flat().to_vec(),
            ids: ids.map(<[u32]>::to_vec).unwrap_or_default(),
        };
        match self.call(&req)? {
            Response::Inserted { ids } => Ok(ids),
            _ => Err(ClientError::Unexpected("INSERTED")),
        }
    }

    /// Deletes ids from a live index; returns how many were live.
    pub fn delete(&mut self, index: &str, ids: &[u32]) -> Result<u64, ClientError> {
        let req = Request::Delete { index: index.to_string(), ids: ids.to_vec() };
        match self.call(&req)? {
            Response::Deleted { removed } => Ok(removed),
            _ => Err(ClientError::Unexpected("DELETED")),
        }
    }

    /// Seals a live index's memtable and persists the whole index as a
    /// `.snap`; returns `(snapshot_path, segments, live_rows)`.
    pub fn flush(&mut self, index: &str) -> Result<(String, u32, u64), ClientError> {
        match self.call(&Request::Flush { index: index.to_string() })? {
            Response::Flushed { snapshot_path, segments, live_rows } => {
                Ok((snapshot_path, segments, live_rows))
            }
            _ => Err(ClientError::Unexpected("FLUSHED")),
        }
    }

    /// Runs the server-side calibration sweep over `index`: the server
    /// samples `sample` of the index's own rows as queries (`0` = server
    /// default), measures recall@`k` (`0` = default) and latency across
    /// its `(budget, probes)` grid, installs the table for
    /// `target_recall` planning, and persists it into the index's
    /// snapshot. Returns `(grid_points, max_recall, sampled_queries)`.
    pub fn calibrate(
        &mut self,
        index: &str,
        sample: usize,
        k: usize,
    ) -> Result<(u32, f64, u32), ClientError> {
        let req = Request::Calibrate {
            index: index.to_string(),
            sample: u32::try_from(sample).unwrap_or(u32::MAX),
            k: u32::try_from(k).unwrap_or(u32::MAX),
        };
        match self.call(&req)? {
            Response::Calibrated { points, max_recall, sample } => {
                Ok((points, max_recall, sample))
            }
            _ => Err(ClientError::Unexpected("CALIBRATED")),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("SHUTTING_DOWN")),
        }
    }
}
