//! The `annd` serving loop: a worker pool over a blocking TCP listener.
//!
//! Connections are accepted by the main thread and handed to a fixed pool
//! of `workers` threads over a channel. Each worker owns one
//! [`ann::Scratch`] per index it has touched and reuses it for every
//! single query it answers — the same allocation amortization the batch
//! executor gets per worker thread. BATCH requests route through
//! [`ann::AnnIndex::query_batch`] (the parallel executor), so one heavy
//! batch saturates the cores even with a single connection.
//!
//! Shutdown is cooperative: a SHUTDOWN request flips a shared flag and
//! pokes the accept loop awake with a loopback connection; the acceptor
//! stops handing out work, the pool drains, and [`Server::run`] returns.

use crate::catalog::{Catalog, ServedIndex};
use crate::protocol::{read_frame, write_frame, Request, Response};
use ann::{Scratch, SearchParams};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Hygiene timeout on connection reads: a peer that goes silent for this
/// long mid-session is dropped so it cannot pin a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    catalog: Arc<Catalog>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) and prepares a
    /// pool of `workers` connection handlers.
    pub fn bind(catalog: Catalog, addr: impl ToSocketAddrs, workers: usize) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            catalog: Arc::new(catalog),
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port when bound with port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served catalog (for printing summaries and final stats around
    /// [`Server::run`]).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// Serves until a SHUTDOWN request arrives, then drains and returns.
    pub fn run(self) -> io::Result<()> {
        let local = self.local_addr()?;
        // Nonblocking accept + short poll: the loop re-checks the shutdown
        // flag every tick, so it can never hang on a lost wake-up, and a
        // transient accept error (ECONNABORTED under load, a brief EMFILE
        // burst) is retried instead of silently terminating the daemon.
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let catalog = self.catalog.clone();
                let shutdown = self.shutdown.clone();
                scope.spawn(move || worker_loop(&rx, &catalog, &shutdown, local));
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Some platforms hand the listener's nonblocking
                        // mode down to accepted sockets; handlers expect
                        // blocking reads with a timeout.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("annd: accept failed (retrying): {e}");
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            drop(tx); // workers drain the queue, then exit
        });
        Ok(())
    }
}

/// Accept-loop poll interval; also the upper bound SHUTDOWN adds to the
/// drain latency when the loopback wake-up poke cannot connect.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    catalog: &Catalog,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    // One scratch per (worker, index): reused across every connection and
    // single query this worker handles.
    let mut scratches: HashMap<String, Scratch> = HashMap::new();
    loop {
        let stream = {
            let guard = rx.lock().expect("receiver poisoned");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, catalog, shutdown, local, &mut scratches),
            Err(_) => break, // channel closed: server is draining
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    catalog: &Catalog,
    shutdown: &AtomicBool,
    local: SocketAddr,
    scratches: &mut HashMap<String, Scratch>,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => return,  // clean close
            Err(_) => return,    // timeout, mid-frame EOF, oversized frame
        };
        let (resp, stop) = match Request::decode(&body) {
            Ok(req) => dispatch(req, catalog, shutdown, local, scratches),
            Err(e) => (Response::Error(format!("bad request: {e}")), true),
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

/// Validates and answers one request. The boolean asks the connection
/// loop to close afterwards.
fn dispatch(
    req: Request,
    catalog: &Catalog,
    shutdown: &AtomicBool,
    local: SocketAddr,
    scratches: &mut HashMap<String, Scratch>,
) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::List => (Response::List(catalog.iter().map(ServedIndex::info).collect()), false),
        Request::Stats => {
            (Response::Stats(catalog.iter().map(|s| s.stats.snapshot(&s.name)).collect()), false)
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop for an instant wake-up; if the connect
            // fails the nonblocking poll observes the flag within
            // ACCEPT_POLL anyway. A wildcard bind is not connectable, so
            // target loopback on the same port.
            let target: SocketAddr = if local.ip().is_unspecified() {
                (std::net::Ipv4Addr::LOCALHOST, local.port()).into()
            } else {
                local
            };
            TcpStream::connect_timeout(&target, Duration::from_millis(100)).ok();
            (Response::ShuttingDown, true)
        }
        Request::Query { index, k, budget, probes, vector } => {
            let served = match lookup(catalog, &index, vector.len(), k) {
                Ok(s) => s,
                Err(e) => return (e, false),
            };
            let params =
                SearchParams::new(k as usize, budget as usize).with_probes(probes as usize);
            let scratch =
                scratches.entry(index).or_insert_with(|| served.index.make_scratch());
            let t0 = Instant::now();
            let neighbors = served.index.query_with(&vector, &params, scratch);
            served.stats.record_query(t0.elapsed().as_micros() as u64);
            (Response::Neighbors(neighbors), false)
        }
        Request::Batch { index, k, budget, probes, dim, vectors } => {
            let served = match lookup(catalog, &index, dim as usize, k) {
                Ok(s) => s,
                Err(e) => return (e, false),
            };
            // The response must fit one frame: nq lists of up to k
            // 12-byte neighbors each (k ≤ n is guaranteed by lookup).
            let nq = vectors.len() / dim.max(1) as usize;
            let resp_bytes = 5 + nq as u64 * (4 + 12 * u64::from(k));
            if resp_bytes > crate::protocol::MAX_FRAME as u64 {
                return (
                    Response::Error(format!(
                        "batch of {nq} queries at k={k} would need a {resp_bytes}-byte \
                         response, over the {}-byte frame cap; split the batch",
                        crate::protocol::MAX_FRAME
                    )),
                    false,
                );
            }
            let params =
                SearchParams::new(k as usize, budget as usize).with_probes(probes as usize);
            let queries = dataset::Dataset::from_flat("batch", dim as usize, vectors);
            let t0 = Instant::now();
            let lists = served.index.query_batch(&queries, &params);
            served.stats.record_batch(queries.len() as u64, t0.elapsed().as_micros() as u64);
            (Response::Batch(lists), false)
        }
    }
}

fn lookup<'a>(
    catalog: &'a Catalog,
    name: &str,
    dim: usize,
    k: u32,
) -> Result<&'a ServedIndex, Response> {
    let served = catalog
        .get(name)
        .ok_or_else(|| Response::Error(format!("no such index {name:?}")))?;
    if k == 0 {
        return Err(Response::Error("k must be at least 1".into()));
    }
    // An untrusted k flows into k-sized allocations (verification heaps);
    // beyond n it cannot return more neighbors anyway.
    if k as u64 > served.data.len() as u64 {
        return Err(Response::Error(format!(
            "k = {k} exceeds the {} indexed vectors of {name:?}",
            served.data.len()
        )));
    }
    if dim != served.data.dim() {
        return Err(Response::Error(format!(
            "dimension mismatch: index {name:?} has dim {}, query has {dim}",
            served.data.dim()
        )));
    }
    Ok(served)
}
