//! The `annd` serving loop: a worker pool over a blocking TCP listener.
//!
//! Connections are accepted by the main thread and handed to a fixed pool
//! of `workers` threads over a channel. Each worker owns one
//! [`ann::Scratch`] per index it has touched and reuses it for every
//! single query it answers — the same allocation amortization the batch
//! executor gets per worker thread. BATCH requests route through
//! [`ann::AnnIndex::query_batch`] (the parallel executor), so one heavy
//! batch saturates the cores even with a single connection.
//!
//! The catalog lives behind an `RwLock`: request paths take short read
//! locks (queries only ever write per-index atomic counters), while the
//! BUILD command — which constructs an index from an [`ann::IndexSpec`]
//! string and a server-local dataset path — does all its expensive work
//! lock-free and takes the write lock only for the final
//! [`Catalog::install`], so installs are atomic with respect to every
//! concurrent reader.
//!
//! Shutdown is cooperative: a SHUTDOWN request flips a shared flag and
//! pokes the accept loop awake with a loopback connection; the acceptor
//! stops handing out work, the pool drains, and [`Server::run`] returns.
//!
//! Since PR 7 the write path is durable and off-request-path (the full
//! contract lives in `docs/durability.md`):
//!
//! - Every acknowledged INSERT/DELETE against a live entry under a
//!   snapshot directory first applies under the entry's write lock,
//!   then appends a CRC-guarded record to the entry's `<name>.wal` and
//!   fsyncs per [`Server::with_wal_sync`] — only then is the response
//!   written. Restart replays the log over the last FLUSH snapshot
//!   ([`Catalog::load_dir`]), so acknowledged writes survive a crash.
//! - Seal and compaction *builds* run on a dedicated background thread:
//!   an insert that crosses the seal threshold only freezes the
//!   memtable and queues the work ([`ann_live::LiveIndex::insert_deferred`]),
//!   the sealer rebuilds segments with no lock held, and each finished
//!   segment is installed under a short write-lock splice — readers are
//!   served throughout.

use crate::catalog::{live_read, panic_message, with_live_write, Backend, Catalog, ServedIndex};
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::snapshot::SnapMeta;
use ann::{AnnIndex, IndexSpec, MutableAnn, Scratch, SearchRequest, SearchResponse};
use ann_live::wal::{wal_path, Wal, WalRecord, WalSync};
use ann_live::{LiveConfig, LiveIndex};
use eval::registry::{self, BuildCtx};
use obs::TraceContext;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Hygiene timeout on connection reads: a peer that goes silent for this
/// long mid-session is dropped so it cannot pin a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Cap on the dataset file a BUILD request may ask the server to load
/// (matches the snapshot loader's 1 GiB vector-section cap).
pub(crate) const MAX_BUILD_DATASET_BYTES: u64 = 1 << 30;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    catalog: Arc<RwLock<Catalog>>,
    snapshot_dir: Option<PathBuf>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    wal_sync: WalSync,
    degrader: plan::Degrader,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) and prepares a
    /// pool of `workers` connection handlers.
    pub fn bind(catalog: Catalog, addr: impl ToSocketAddrs, workers: usize) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            catalog: Arc::new(RwLock::new(catalog)),
            snapshot_dir: None,
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            wal_sync: WalSync::Always,
            degrader: plan::Degrader::off(),
        })
    }

    /// Directory where BUILD persists `.snap` containers for schemes that
    /// support snapshots. Without it BUILD still installs in the catalog,
    /// it just writes nothing.
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Server {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// WAL fsync policy for acknowledged writes (`--wal-sync`): the
    /// default [`WalSync::Always`] fsyncs every record before its ack;
    /// [`WalSync::Batch`] group-commits, trading a bounded window of
    /// acknowledged-but-unsynced records on a *power* failure for much
    /// higher ingest throughput (a process kill alone loses nothing —
    /// the records are already in the kernel). See `docs/durability.md`.
    pub fn with_wal_sync(mut self, sync: WalSync) -> Server {
        self.wal_sync = sync;
        self
    }

    /// Arms the overload dial for recall-targeted requests
    /// (`--recall-floor`): when the serving p99 runs past the bound set
    /// with [`Server::with_p99_bound_micros`], planned targets are
    /// stepped down toward `floor` instead of letting latency grow
    /// unbounded. `0.0` (the default) never degrades.
    pub fn with_recall_floor(mut self, floor: f64) -> Server {
        self.degrader.floor = floor;
        self
    }

    /// The p99 latency bound (µs) that triggers recall-target
    /// degradation (`--p99-bound-us`); `0` (the default) never degrades.
    pub fn with_p99_bound_micros(mut self, bound: u64) -> Server {
        self.degrader.p99_bound_micros = bound;
        self
    }

    /// The bound address (the real port when bound with port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served catalog (for printing summaries and final stats around
    /// [`Server::run`]).
    pub fn catalog(&self) -> Arc<RwLock<Catalog>> {
        self.catalog.clone()
    }

    /// Serves until a SHUTDOWN request arrives, then drains and returns.
    pub fn run(self) -> io::Result<()> {
        let local = self.local_addr()?;
        // Nonblocking accept + short poll: the loop re-checks the shutdown
        // flag every tick, so it can never hang on a lost wake-up, and a
        // transient accept error (ECONNABORTED under load, a brief EMFILE
        // burst) is retried instead of silently terminating the daemon.
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let (seal_tx, seal_rx) = mpsc::channel::<String>();
        let shared = Shared {
            catalog: &self.catalog,
            snapshot_dir: self.snapshot_dir.as_deref(),
            shutdown: &self.shutdown,
            local,
            wal_sync: self.wal_sync,
            sealer: seal_tx,
            degrader: self.degrader,
        };
        std::thread::scope(|scope| {
            {
                // The background seal/compaction worker: one thread per
                // server, fed index names by the write paths.
                let shared = &shared;
                scope.spawn(move || sealer_loop(&seal_rx, shared));
            }
            for _ in 0..self.workers {
                let rx = rx.clone();
                let shared = &shared;
                scope.spawn(move || worker_loop(&rx, shared));
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Some platforms hand the listener's nonblocking
                        // mode down to accepted sockets; handlers expect
                        // blocking reads with a timeout.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        obs::warn!("accept failed, retrying", error = e);
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            drop(tx); // workers drain the queue, then exit
        });
        Ok(())
    }
}

/// Accept-loop poll interval; also the upper bound SHUTDOWN adds to the
/// drain latency when the loopback wake-up poke cannot connect.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// State every worker shares with the accept loop.
struct Shared<'a> {
    catalog: &'a RwLock<Catalog>,
    snapshot_dir: Option<&'a Path>,
    shutdown: &'a AtomicBool,
    local: SocketAddr,
    wal_sync: WalSync,
    /// Feeds the background sealer the name of a live entry whose
    /// insert just froze the memtable (queued seal/compaction work).
    sealer: Sender<String>,
    /// The load-shedding dial for recall-targeted requests.
    degrader: plan::Degrader,
}

/// How often the sealer re-checks the shutdown flag while idle.
const SEALER_POLL: Duration = Duration::from_millis(100);

/// The background seal/compaction loop: waits for index names from the
/// write paths and drains each one's queued builds. Exits when the
/// server is shutting down (pending work is not lost — it is folded
/// back into the memtable by `state()` on FLUSH, or rebuilt after
/// restart from the WAL).
fn sealer_loop(rx: &Receiver<String>, shared: &Shared) {
    loop {
        match rx.recv_timeout(SEALER_POLL) {
            Ok(name) => seal_index(shared, &name),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Drains one live entry's queued seal/compaction builds. Each segment
/// rebuild runs with *no lock held* (the queued op carries its own
/// frozen copy of the rows); only the final install takes the entry's
/// write lock, and only for the pointer swap — readers are served
/// throughout, which the e2e concurrency test pins.
fn seal_index(shared: &Shared, name: &str) {
    loop {
        let pending = {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let Ok(served) = lookup(&catalog, name) else { return };
            let Backend::Live(lock) = &served.backend else { return };
            let Ok(live) = live_read(lock, name) else { return };
            live.pending_build()
        };
        let Some(build) = pending else { return };
        let built = match build.build() {
            Ok(b) => b,
            Err(e) => {
                // Leave the op queued: the next synchronous drain (an
                // insert crossing the threshold, or FLUSH) reports the
                // error to a client instead of retrying silently here.
                obs::error!("background seal failed", index = name, error = e);
                return;
            }
        };
        let catalog = shared.catalog.read().expect("catalog poisoned");
        let Ok(served) = lookup(&catalog, name) else { return };
        let Backend::Live(lock) = &served.backend else { return };
        match with_live_write(lock, name, |live| Ok(live.install_built(built))) {
            Ok(true) => served.stats.record_seal(),
            // Token mismatch: a FLUSH or failed-insert rollback already
            // resolved this op synchronously; check for newer work.
            Ok(false) => {}
            Err(_) => return,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    // One scratch per (worker, index): reused across every connection and
    // single query this worker handles.
    let mut scratches: HashMap<String, Scratch> = HashMap::new();
    loop {
        let stream = {
            let guard = rx.lock().expect("receiver poisoned");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared, &mut scratches),
            Err(_) => break, // channel closed: server is draining
        }
    }
}

/// Process-wide connection counter: every accepted connection gets a
/// stable id for correlating its log lines.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// The catalog entry a request targets, for log fields (`None` for
/// catalog-wide requests like LIST/STATS/METRICS).
fn req_index(req: &Request) -> Option<&str> {
    match req {
        Request::Query { index, .. }
        | Request::Batch { index, .. }
        | Request::Search { index, .. }
        | Request::Insert { index, .. }
        | Request::Delete { index, .. }
        | Request::Calibrate { index, .. }
        | Request::Flush { index } => Some(index),
        Request::Build { name, .. } => Some(name),
        _ => None,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    scratches: &mut HashMap<String, Scratch>,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let conn = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    let peer = stream.peer_addr().map_or_else(|_| "?".to_string(), |a| a.to_string());
    obs::global()
        .counter("ann_connections_total", &[], "Connections accepted by the serving loop")
        .inc();
    obs::debug!("connection open", conn = conn, peer = peer);
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => {
                obs::debug!("connection closed", conn = conn, peer = peer);
                return; // clean close
            }
            Err(e) => {
                // Timeout, mid-frame EOF, oversized frame.
                obs::debug!("connection dropped", conn = conn, peer = peer, error = e);
                return;
            }
        };
        let (resp, stop) = match Request::decode_traced(&body) {
            Ok((req, trace)) => {
                // Requests arriving without a trace context (legacy
                // clients, ad-hoc tools) mint one at this edge so every
                // log line downstream is still correlatable.
                let trace = trace.unwrap_or_else(TraceContext::mint);
                let op = req.op_name();
                let index = req_index(&req).map(str::to_string);
                let t0 = Instant::now();
                let out = dispatch(req, shared, scratches);
                let micros = t0.elapsed().as_micros() as u64;
                obs::debug!(
                    "request",
                    conn = conn,
                    trace = trace,
                    op = op,
                    index = index.as_deref().unwrap_or("-"),
                    us = micros
                );
                if obs::is_slow(micros) {
                    let mut span = obs::SpanRecord::new(op, 0, micros);
                    if let Some(ix) = &index {
                        span = span.field("index", ix);
                    }
                    obs::warn!(
                        "slow request",
                        conn = conn,
                        trace = trace,
                        us = micros,
                        span = span.render()
                    );
                }
                out
            }
            Err(e) => {
                obs::warn!("bad request", conn = conn, peer = peer, error = e);
                (Response::Error(format!("bad request: {e}")), true)
            }
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

/// Validates and answers one request. The boolean asks the connection
/// loop to close afterwards.
fn dispatch(
    req: Request,
    shared: &Shared,
    scratches: &mut HashMap<String, Scratch>,
) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::List => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            (Response::List(catalog.iter().map(ServedIndex::info).collect()), false)
        }
        Request::Stats => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            (Response::Stats(catalog.iter().map(stats_entry).collect()), false)
        }
        Request::Metrics => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let entries: Vec<_> = catalog.iter().map(stats_entry).collect();
            // Live-index internals are sampled at scrape time (they are
            // sizes, not event counters): memtable rows, sealed
            // segments, and queued background ops per live entry.
            // (name, memtable rows, sealed segments, pending ops)
            type LiveRow = (String, u64, u64, u64);
            type GaugeCol = fn(&LiveRow) -> u64;
            let mut live_sizes: Vec<LiveRow> = Vec::new();
            for served in catalog.iter() {
                if let Backend::Live(lock) = &served.backend {
                    if let Ok(live) = live_read(lock, &served.name) {
                        live_sizes.push((
                            served.name.clone(),
                            live.memtable_rows() as u64,
                            live.segment_count() as u64,
                            live.pending_ops() as u64,
                        ));
                    }
                }
            }
            drop(catalog);
            let mut out = obs::PromText::new();
            // Process-global series first (WAL fsync + seal/compaction
            // build histograms, connection counter), then the per-index
            // serving counters, then the sampled live-index gauges.
            obs::global().render_into(&mut out);
            crate::stats::render_prom(&entries, &mut out);
            let gauges: [(&str, &str, GaugeCol); 3] = [
                ("ann_live_memtable_rows", "Rows currently buffered in the live memtable", |r| {
                    r.1
                }),
                ("ann_live_segments", "Sealed segments in the live index", |r| r.2),
                ("ann_live_pending_ops", "Seal/compaction builds queued for the sealer", |r| {
                    r.3
                }),
            ];
            for (name, help, get) in gauges {
                out.header(name, "gauge", help);
                for row in &live_sizes {
                    out.sample(name, &[("index", &row.0)], get(row));
                }
            }
            (Response::Metrics(out.into_string()), false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop for an instant wake-up; if the connect
            // fails the nonblocking poll observes the flag within
            // ACCEPT_POLL anyway. A wildcard bind is not connectable, so
            // target loopback on the same port.
            let target: SocketAddr = if shared.local.ip().is_unspecified() {
                (std::net::Ipv4Addr::LOCALHOST, shared.local.port()).into()
            } else {
                shared.local
            };
            TcpStream::connect_timeout(&target, Duration::from_millis(100)).ok();
            (Response::ShuttingDown, true)
        }
        // QUERY stays on the wire unchanged and is answered as a SEARCH
        // with no optional sections — the search path without a filter or
        // threshold is byte-identical to the pre-redesign query path (the
        // e2e back-compat test pins this).
        Request::Query { index, k, budget, probes, vector } => {
            let req = request_from_knobs(k, budget, probes);
            match answer_search(shared, scratches, &index, &req, &vector) {
                Ok(resp) => (Response::Neighbors(resp.hits), false),
                Err(e) => (Response::Error(e), false),
            }
        }
        Request::Search {
            index,
            k,
            budget,
            probes,
            filter,
            max_dist,
            want_stats,
            target_recall,
            vector,
        } => {
            let mut req = request_from_knobs(k, budget, probes);
            req.filter = filter;
            req.max_dist = max_dist;
            req.fields.stats = want_stats;
            if target_recall.is_some() {
                // A well-formed planned frame carries 0-sentinels for
                // both knobs; anything else counts as "explicit knobs"
                // so validation rejects the combination with exactly
                // the in-process error text.
                req.knobs_set = budget != 0 || probes != 0;
                req.target_recall = target_recall;
            }
            match answer_search(shared, scratches, &index, &req, &vector) {
                Ok(resp) => (
                    Response::Search {
                        hits: resp.hits,
                        stats: want_stats.then_some(resp.stats),
                    },
                    false,
                ),
                Err(e) => (Response::Error(e), false),
            }
        }
        Request::Calibrate { index, sample, k } => {
            (handle_calibrate(shared, &index, sample, k), false)
        }
        Request::Batch { index, k, budget, probes, dim, vectors } => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let served = match lookup(&catalog, &index) {
                Ok(s) => s,
                Err(e) => return (Response::Error(e), false),
            };
            // The response must fit one frame: nq lists of up to k
            // 12-byte neighbors each (k ≤ n is validated per backend).
            let nq = vectors.len() / dim.max(1) as usize;
            let resp_bytes = 5 + nq as u64 * (4 + 12 * u64::from(k));
            if resp_bytes > crate::protocol::MAX_FRAME as u64 {
                return (
                    Response::Error(format!(
                        "batch of {nq} queries at k={k} would need a {resp_bytes}-byte \
                         response, over the {}-byte frame cap; split the batch",
                        crate::protocol::MAX_FRAME
                    )),
                    false,
                );
            }
            let req = request_from_knobs(k, budget, probes);
            let queries = dataset::Dataset::from_flat("batch", dim as usize, vectors);
            let t0 = Instant::now();
            let responses = match &served.backend {
                Backend::Static { index: idx, data } => {
                    if let Err(e) =
                        check_request(&index, &req, dim as usize, idx.len(), data.dim())
                    {
                        return (Response::Error(e), false);
                    }
                    idx.search_batch(&queries, &req)
                }
                Backend::Live(lock) => {
                    let live = match live_read(lock, &index) {
                        Ok(g) => g,
                        Err(e) => return (Response::Error(e), false),
                    };
                    if let Err(e) =
                        check_request(&index, &req, dim as usize, live.live_len(), live.dim())
                    {
                        return (Response::Error(e), false);
                    }
                    live.search_batch(&queries, &req)
                }
            };
            let scanned: u64 = responses.iter().map(|r| r.stats.candidates_scanned).sum();
            let pushes: u64 = responses.iter().map(|r| r.stats.heap_pushes).sum();
            let pruned: u64 = responses.iter().map(|r| r.stats.sq8_pruned).sum();
            let lists: Vec<_> = responses.into_iter().map(|r| r.hits).collect();
            served.stats.record_scanned(scanned);
            served.stats.record_funnel(pushes, pruned);
            served.stats.record_batch(queries.len() as u64, t0.elapsed().as_micros() as u64);
            (Response::Batch(lists), false)
        }
        Request::Build {
            name,
            spec,
            metric,
            data_path,
            limit,
            live,
            seal_threshold,
            max_segments,
            id_base,
            id_step,
        } => {
            let opts = BuildOpts { live, seal_threshold, max_segments, id_base, id_step };
            (handle_build(shared, &name, &spec, &metric, &data_path, limit, opts), false)
        }
        Request::Insert { index, dim, vectors, ids } => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let served = match lookup(&catalog, &index) {
                Ok(s) => s,
                Err(e) => return (Response::Error(e), false),
            };
            let lock = match require_live(served, &index) {
                Ok(l) => l,
                Err(e) => return (Response::Error(e), false),
            };
            // The response echoes one u32 id per row; keep it inside a frame.
            let nq = vectors.len() / dim.max(1) as usize;
            if 5 + nq as u64 * 4 > crate::protocol::MAX_FRAME as u64 {
                return (
                    Response::Error(format!(
                        "insert of {nq} rows would overflow the response frame; split it"
                    )),
                    false,
                );
            }
            let rows = dataset::Dataset::from_flat("insert", dim as usize, vectors);
            let ids_opt = (!ids.is_empty()).then_some(ids.as_slice());
            let t0 = Instant::now();
            // Apply, then log, then ack — all under the entry's write
            // lock, so the WAL's record order is exactly the apply
            // order. Rows are logged as received (pre-normalization):
            // replay re-normalizes identically. A seal crossing only
            // freezes and queues here; the rebuild happens on the
            // sealer thread after the ack.
            let result = with_live_write(lock, &index, |live| {
                let (assigned, froze) =
                    live.insert_deferred(&rows, ids_opt).map_err(|e| e.to_string())?;
                let mut wal = served.wal.lock().expect("wal mutex poisoned");
                if let Some(wal) = wal.as_mut() {
                    let rec = WalRecord::Insert {
                        dim,
                        rows: rows.as_flat().to_vec(),
                        ids: assigned.clone(),
                    };
                    match wal.append(&rec, shared.wal_sync) {
                        Ok(bytes) => served.stats.record_wal(bytes),
                        Err(e) => {
                            // Not durable ⇒ not acknowledged: undo the
                            // in-memory apply so the index never holds
                            // rows the log (and thus a restart) lacks.
                            live.delete(&assigned);
                            return Err(format!("WAL append for {index:?} failed: {e}"));
                        }
                    }
                }
                Ok((assigned, froze))
            });
            match result {
                Ok((assigned, froze)) => {
                    served
                        .stats
                        .record_insert(assigned.len() as u64, t0.elapsed().as_micros() as u64);
                    // The index the table was measured on no longer
                    // exists: keep planning, but report it stale.
                    served.mark_cal_stale();
                    if froze {
                        shared.sealer.send(index.clone()).ok();
                    }
                    (Response::Inserted { ids: assigned }, false)
                }
                Err(e) => (Response::Error(e), false),
            }
        }
        Request::Delete { index, ids } => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let served = match lookup(&catalog, &index) {
                Ok(s) => s,
                Err(e) => return (Response::Error(e), false),
            };
            let lock = match require_live(served, &index) {
                Ok(l) => l,
                Err(e) => return (Response::Error(e), false),
            };
            let t0 = Instant::now();
            let result = with_live_write(lock, &index, |live| {
                let removed = live.delete(&ids);
                // A no-op delete (no requested id was live) changes
                // nothing, so nothing needs to survive a crash.
                if removed > 0 {
                    let mut wal = served.wal.lock().expect("wal mutex poisoned");
                    if let Some(wal) = wal.as_mut() {
                        match wal.append(&WalRecord::Delete { ids: ids.clone() }, shared.wal_sync)
                        {
                            Ok(bytes) => served.stats.record_wal(bytes),
                            Err(e) => {
                                return Err(format!("WAL append for {index:?} failed: {e}"))
                            }
                        }
                    }
                }
                Ok(removed)
            });
            match result {
                Ok(removed) => {
                    served
                        .stats
                        .record_delete(removed as u64, t0.elapsed().as_micros() as u64);
                    if removed > 0 {
                        served.mark_cal_stale();
                    }
                    (Response::Deleted { removed: removed as u64 }, false)
                }
                Err(e) => (Response::Error(e), false),
            }
        }
        Request::Flush { index } => {
            let catalog = shared.catalog.read().expect("catalog poisoned");
            let served = match lookup(&catalog, &index) {
                Ok(s) => s,
                Err(e) => return (Response::Error(e), false),
            };
            let lock = match require_live(served, &index) {
                Ok(l) => l,
                Err(e) => return (Response::Error(e), false),
            };
            let Some(dir) = shared.snapshot_dir else {
                return (
                    Response::Error(
                        "server has no snapshot directory; FLUSH cannot persist".into(),
                    ),
                    false,
                );
            };
            let t0 = Instant::now();
            // Seal AND persist under one inner write-lock critical
            // section: two concurrent FLUSHes of the same entry must not
            // interleave their seal and their `.snap` rename, or the
            // older state could land on disk *after* the newer FLUSH
            // already acknowledged its rows as durable. Readers of this
            // entry wait out the encode+fsync — the price of ordered
            // durability; other entries are unaffected.
            //
            // The WAL truncates in the same critical section, *after*
            // the snapshot rename: the snapshot is committed at a new
            // generation, so if the process dies between rename and
            // truncate, restart sees a log whose generation no longer
            // matches and discards it instead of double-applying — the
            // rename IS the atomic flush point (`docs/durability.md`).
            let flushed = with_live_write(lock, &index, |live| {
                live.seal().map_err(|e| e.to_string())?;
                let old_gen = live.wal_gen();
                live.set_wal_gen(old_gen + 1);
                let state = live.state();
                if state.total_rows() == 0 {
                    live.set_wal_gen(old_gen);
                    return Err(format!("live index {index:?} is empty; nothing to flush"));
                }
                let meta = SnapMeta::of_build(&state.spec, 0.0, state.live_rows() as u64);
                // Persist whatever table the entry holds — stale bit
                // and all — so a restart keeps planning (and keeps
                // reporting the staleness honestly).
                let cal = served
                    .calibration
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone();
                let staged =
                    crate::snapshot::stage_live_snapshot(dir, &index, &state, &meta, cal.as_ref())
                        .and_then(|s| s.commit());
                let path = match staged {
                    Ok(path) => path,
                    Err(e) => {
                        live.set_wal_gen(old_gen);
                        return Err(format!("flushing {index:?}: {e}"));
                    }
                };
                let mut wal = served.wal.lock().expect("wal mutex poisoned");
                if let Some(wal) = wal.as_mut() {
                    if let Err(e) = wal.reset(old_gen + 1) {
                        // Safe to continue: the stale log's generation
                        // mismatches and is discarded on restart.
                        obs::error!("WAL truncate after FLUSH failed", index = index, error = e);
                    }
                }
                Ok((path, state.segments.len() as u32, state.live_rows() as u64))
            });
            match flushed {
                Ok((path, segments, live_rows)) => {
                    served.stats.record_flush(t0.elapsed().as_micros() as u64);
                    (
                        Response::Flushed {
                            snapshot_path: path.display().to_string(),
                            segments,
                            live_rows,
                        },
                        false,
                    )
                }
                Err(e) => (Response::Error(e), false),
            }
        }
    }
}

/// The live-build knobs riding on a BUILD request.
struct BuildOpts {
    live: bool,
    seal_threshold: u32,
    max_segments: u32,
    /// External id of the first dataset row (live only; a router builds
    /// shard *s* of *m* with `(s, m)` so shard-local ids are global).
    id_base: u32,
    /// Stride between consecutive row ids (live only, `>= 1`).
    id_step: u32,
}

/// Resolves a served entry's inner live lock, or explains that the entry
/// is static (writes need a live index).
fn require_live<'a>(
    served: &'a ServedIndex,
    name: &str,
) -> Result<&'a std::sync::RwLock<LiveIndex>, String> {
    match &served.backend {
        Backend::Live(lock) => Ok(lock),
        Backend::Static { .. } => Err(format!(
            "index {name:?} is a static snapshot and read-only; BUILD it with --live true \
             to accept INSERT/DELETE/FLUSH"
        )),
    }
}

/// Builds the in-process request a wire `(k, budget, probes)` triple
/// describes.
fn request_from_knobs(k: u32, budget: u32, probes: u32) -> SearchRequest {
    SearchRequest::top_k(k as usize).budget(budget as usize).probes(probes as usize)
}

/// Shared validation for the query paths: the dimension check plus the
/// workspace-wide request-legality rule ([`SearchRequest::validate`] —
/// the same rule the in-process harness and the live index apply, so a
/// hostile `k` can never reach the k-sized verification heaps).
fn check_request(
    name: &str,
    req: &SearchRequest,
    dim: usize,
    len: usize,
    expect_dim: usize,
) -> Result<(), String> {
    req.validate(len).map_err(|e| format!("index {name:?}: {e}"))?;
    if dim != expect_dim {
        return Err(format!(
            "dimension mismatch: index {name:?} has dim {expect_dim}, query has {dim}"
        ));
    }
    Ok(())
}

/// Answers one single-vector search (the shared implementation behind
/// QUERY and SEARCH): look up the entry, validate, run the backend's
/// `search_with` with this worker's cached scratch, and account the
/// latency + scanned-candidates counters.
fn answer_search(
    shared: &Shared,
    scratches: &mut HashMap<String, Scratch>,
    index: &str,
    req: &SearchRequest,
    vector: &[f32],
) -> Result<SearchResponse, String> {
    let catalog = shared.catalog.read().expect("catalog poisoned");
    let served = lookup(&catalog, index)?;
    // A recall target resolves to concrete knobs *before* the backend
    // sees the request; the backend then runs an ordinary search.
    let planned = plan_request(shared, served, index, req)?;
    let req = planned.as_ref().map_or(req, |(r, _, _)| r);
    let t0 = Instant::now();
    let mut resp = match &served.backend {
        Backend::Static { index: idx, data } => {
            check_request(index, req, vector.len(), idx.len(), data.dim())?;
            let scratch =
                scratches.entry(index.to_string()).or_insert_with(|| idx.make_scratch());
            idx.search_with(vector, req, scratch)
        }
        Backend::Live(lock) => {
            let live = live_read(lock, index)?;
            check_request(index, req, vector.len(), live.live_len(), live.dim())?;
            let scratch = scratches.entry(index.to_string()).or_insert_with(Scratch::empty);
            live.search_with(vector, req, scratch)
        }
    };
    if let Some((_, choice, degraded)) = planned {
        resp.stats.plan = Some(choice);
        served.stats.record_planned(degraded);
    }
    served.stats.record_scanned(resp.stats.candidates_scanned);
    served.stats.record_funnel(resp.stats.heap_pushes, resp.stats.sq8_pruned);
    served.stats.record_query(t0.elapsed().as_micros() as u64);
    Ok(resp)
}

/// Resolves a `target_recall` request against the entry's calibration
/// table: validate the target (identical [`ann::RequestError`] texts to
/// the in-process path), apply the overload dial, and pick the cheapest
/// satisfying `(budget, probes)`. `Ok(None)` when the request carries
/// no target; the `bool` reports whether the dial lowered the target.
fn plan_request(
    shared: &Shared,
    served: &ServedIndex,
    index: &str,
    req: &SearchRequest,
) -> Result<Option<(SearchRequest, ann::PlanChoice, bool)>, String> {
    let Some(requested) = req.target_recall else {
        return Ok(None);
    };
    if !requested.is_finite() || requested <= 0.0 || requested > 1.0 {
        return Err(format!(
            "index {index:?}: {}",
            ann::RequestError::BadTargetRecall(requested)
        ));
    }
    if req.knobs_set {
        return Err(format!("index {index:?}: {}", ann::RequestError::TargetRecallWithKnobs));
    }
    let table = served
        .calibration
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let Some(table) = table else {
        return Err(format!("index {index:?}: {}", plan::PlanError::Uncalibrated));
    };
    let effective = shared.degrader.effective(requested, served.stats.p99_micros());
    let degraded = effective < requested;
    let p = table.plan(effective).map_err(|e| format!("index {index:?}: {e}"))?;
    let choice = ann::PlanChoice {
        budget: p.budget,
        probes: p.probes,
        predicted_recall: p.predicted_recall,
        effective_target: effective,
    };
    let mut planned = req.clone();
    planned.target_recall = None;
    planned.knobs_set = true;
    planned.budget = p.budget as usize;
    planned.probes = p.probes as usize;
    Ok(Some((planned, choice, degraded)))
}

/// One STATS/METRICS row for a served entry: the atomic counters, plus
/// the calibration presence/age that lives on the catalog entry rather
/// than in the counter block.
fn stats_entry(s: &ServedIndex) -> crate::protocol::StatsEntry {
    let mut e = s.stats.snapshot(&s.name, &s.spec, s.load_mode(), s.sq8_active());
    let (cal, cal_age_secs) = s.cal_summary();
    e.cal = cal.to_string();
    e.cal_age_secs = cal_age_secs;
    e
}

/// Default queries sampled by a CALIBRATE with `sample = 0`.
const DEFAULT_CAL_SAMPLE: usize = 64;

/// Default recall depth measured by a CALIBRATE with `k = 0`.
const DEFAULT_CAL_K: usize = 10;

/// CALIBRATE: sweep the entry's own rows through the eval harness's
/// calibration driver, install the measured table on the catalog entry
/// (a mutex swap — concurrent readers plan against the old table until
/// the swap), and persist it into the entry's `.snap` so it survives a
/// restart. The sweep runs under the catalog *read* lock: queries keep
/// flowing, only BUILD installs wait.
fn handle_calibrate(shared: &Shared, name: &str, sample: u32, k: u32) -> Response {
    let cfg_base = eval::calibrate::CalibrateConfig {
        sample: if sample == 0 { DEFAULT_CAL_SAMPLE } else { sample as usize },
        k: if k == 0 { DEFAULT_CAL_K } else { k as usize },
        built_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        ..Default::default()
    };
    let catalog = shared.catalog.read().expect("catalog poisoned");
    let served = match lookup(&catalog, name) {
        Ok(s) => s,
        Err(e) => return Response::Error(e),
    };
    // The scheme's m (when the spec parses and carries one) anchors the
    // budget grid with Theorem 5.1's λ.
    let m_hint = served.spec.parse::<IndexSpec>().ok().and_then(|s| match s.scheme {
        ann::Scheme::Lccs { m } | ann::Scheme::MpLccs { m } => Some(m),
        _ => None,
    });
    let cfg = eval::calibrate::CalibrateConfig { m_hint, ..cfg_base };
    let table = match &served.backend {
        Backend::Static { index: idx, data } => {
            eval::calibrate::sweep(idx.as_ref(), data, &cfg)
        }
        Backend::Live(lock) => {
            let live = match live_read(lock, name) {
                Ok(g) => g,
                Err(e) => return Response::Error(e),
            };
            // Sample queries from the live index's physical rows; the
            // sweep only needs vectors shaped like real data, liveness
            // is irrelevant for a query vector.
            let state = live.state();
            let mut flat = Vec::with_capacity(state.total_rows() * state.dim);
            for unit in state.segments.iter().chain(std::iter::once(&state.memtable)) {
                flat.extend_from_slice(&unit.rows);
            }
            if flat.is_empty() {
                return Response::Error(format!("index {name:?} is empty; nothing to calibrate"));
            }
            let rows = dataset::Dataset::from_flat("calibrate", state.dim, flat);
            eval::calibrate::sweep(&*live, &rows, &cfg)
        }
    };
    let resp = Response::Calibrated {
        points: table.points.len() as u32,
        max_recall: table.max_recall(),
        sample: table.sample_queries,
    };
    *served.calibration.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
        Some(table.clone());
    drop(catalog);
    if let Some(dir) = shared.snapshot_dir {
        let path = dir.join(format!("{name}.{}", crate::snapshot::SNAPSHOT_EXT));
        if path.exists() {
            if let Err(e) = crate::snapshot::attach_calibration(&path, &table) {
                // The table still serves from memory; only restart
                // persistence is lost, which the next CALIBRATE heals.
                obs::error!("persisting calibration failed", index = name, error = e);
            }
        }
    }
    resp
}

/// BUILD: parse the spec, load the dataset, build through the eval
/// registry, optionally snapshot, and atomically install in the catalog.
/// Everything except the final install runs without any lock held.
fn handle_build(
    shared: &Shared,
    name: &str,
    spec_text: &str,
    metric_name: &str,
    data_path: &str,
    limit: u32,
    opts: BuildOpts,
) -> Response {
    // The name becomes a file name under the snapshot dir, so it must be
    // a plain token: no separators, no leading dot — a hostile
    // "../../etc/x" must not escape the directory.
    if !valid_build_name(name) {
        return Response::Error(format!(
            "bad catalog name {name:?}: use letters, digits, '-', '_', '.' (not leading), \
             at most {} bytes",
            crate::protocol::MAX_NAME
        ));
    }
    let spec: IndexSpec = match spec_text.parse() {
        Ok(s) => s,
        Err(e) => return Response::Error(format!("bad spec {spec_text:?}: {e}")),
    };
    let Some(metric) = dataset::Metric::from_name(metric_name) else {
        return Response::Error(format!(
            "unknown metric {metric_name:?} (euclidean, angular, hamming, jaccard)"
        ));
    };
    // Bound what an unauthenticated request can make the daemon read:
    // the file size caps total in-memory growth up front (fvecs stores
    // 4 bytes/element, so memory ≈ file size), and the fvecs reader
    // itself caps per-record dimension headers.
    match std::fs::metadata(data_path) {
        Ok(m) if m.len() > MAX_BUILD_DATASET_BYTES => {
            return Response::Error(format!(
                "dataset {data_path:?} is {} bytes, over the {MAX_BUILD_DATASET_BYTES}-byte \
                 BUILD cap; pass --limit or pre-slice the file",
                m.len()
            ));
        }
        Ok(_) => {}
        Err(e) => return Response::Error(format!("loading dataset {data_path:?}: {e}")),
    }
    if !opts.live && (opts.id_base, opts.id_step) != (0, 1) {
        // Static indexes answer with positional ids; only the live path
        // can honor an explicit id layout.
        return Response::Error(
            "id_base/id_step require a live build (static ids are positional)".into(),
        );
    }
    let limit = if limit == 0 { None } else { Some(limit as usize) };
    let mut data = match dataset::io::read_fvecs(data_path, limit) {
        Ok(d) => d,
        Err(e) => return Response::Error(format!("loading dataset {data_path:?}: {e}")),
    };
    if opts.live {
        // The live path hands raw rows to `LiveIndex`, which normalizes
        // angular inserts itself — pre-normalizing here would round twice.
        return handle_build_live(shared, name, &spec, spec_text, metric, &data, opts);
    }
    if metric.is_angular() {
        data = data.normalized();
    }
    let data = Arc::new(data);

    let t0 = Instant::now();
    // The spec grammar bounds every knob, but individual builders keep
    // their own stricter invariants as asserts (LCCS wants m ≥ 2, a
    // family may reject a degenerate dimension, …). A panic from
    // untrusted BUILD input must become an error response, not a dead
    // worker thread.
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        registry::build_index_persist(&spec, &BuildCtx { data: &data, metric })
    }));
    let (index, payload) = match built {
        Ok(Ok(built)) => built,
        Ok(Err(e)) => return Response::Error(format!("building {spec_text:?}: {e}")),
        Err(panic) => {
            return Response::Error(format!(
                "building {spec_text:?} rejected: {}",
                panic_message(panic)
            ));
        }
    };
    let build_secs = t0.elapsed().as_secs_f64();
    let method = index.name().to_string();

    // Stage the snapshot (encode + write + fsync, the slow part) before
    // taking any lock; persisting before installing means an
    // installed-but-unsnapshotted index can't silently vanish on
    // restart, while the opposite surprise is harmless.
    let staged = match (&payload, shared.snapshot_dir) {
        (Some(payload), Some(dir)) => {
            let meta = SnapMeta::of_build(&spec, build_secs, data.len() as u64);
            match crate::snapshot::stage_built_snapshot(dir, name, &method, &data, payload, &meta)
            {
                Ok(staged) => Some(staged),
                Err(e) => return Response::Error(format!("snapshotting {name:?}: {e}")),
            }
        }
        _ => None,
    };

    // Commit + install under one write lock: two concurrent BUILDs of
    // the same name must not interleave the snapshot rename and the map
    // insert, or disk and catalog would name different indexes after a
    // restart. Only this rename/insert section holds the lock.
    let mut catalog = shared.catalog.write().expect("catalog poisoned");
    let mut snapshot_path = String::new();
    match staged {
        Some(staged) => match staged.commit() {
            Ok(path) => snapshot_path = path.display().to_string(),
            Err(e) => return Response::Error(format!("snapshotting {name:?}: {e}")),
        },
        // A non-persisting scheme writes nothing — but a *stale*
        // snapshot from an earlier BUILD of this name would resurrect
        // the replaced index on restart, so drop it.
        None => {
            if let Some(dir) = shared.snapshot_dir {
                let stale = dir.join(format!("{name}.{}", crate::snapshot::SNAPSHOT_EXT));
                std::fs::remove_file(&stale).ok();
            }
        }
    }
    // A static entry accepts no writes: drop any WAL left by a live
    // entry this BUILD replaces, or a restart would replay it over the
    // wrong index.
    if let Some(dir) = shared.snapshot_dir {
        std::fs::remove_file(wal_path(dir, name)).ok();
    }
    match catalog.install(name.to_string(), method, spec.to_string(), index, data) {
        Ok(_replaced) => {
            let info = catalog.get(name).expect("just installed").info();
            Response::Built {
                info,
                build_micros: (build_secs * 1e6) as u64,
                snapshot_path,
            }
        }
        Err(e) => Response::Error(format!("installing {name:?}: {e}")),
    }
}

/// The live half of BUILD: the dataset becomes the first sealed segment
/// of a fresh [`LiveIndex`], which is snapshotted (LIVE section) and
/// atomically installed as a mutable catalog entry. Same staging
/// discipline as the static path: the expensive build and the disk write
/// run lock-free, only rename + install hold the catalog write lock.
fn handle_build_live(
    shared: &Shared,
    name: &str,
    spec: &IndexSpec,
    spec_text: &str,
    metric: dataset::Metric,
    data: &dataset::Dataset,
    opts: BuildOpts,
) -> Response {
    let defaults = LiveConfig::default();
    let config = LiveConfig {
        seal_threshold: if opts.seal_threshold == 0 {
            defaults.seal_threshold
        } else {
            opts.seal_threshold as usize
        },
        max_segments: if opts.max_segments == 0 {
            defaults.max_segments
        } else {
            opts.max_segments as usize
        },
    };
    // Strided id assignment for routed shard builds: row i gets
    // id_base + i * id_step. Reject layouts that would overflow the id
    // space before touching the builder.
    let ids: Option<Vec<u32>> = if (opts.id_base, opts.id_step) == (0, 1) {
        None
    } else {
        let last = opts.id_base as u64 + (data.len() as u64).saturating_sub(1) * opts.id_step as u64;
        if last >= u32::MAX as u64 {
            return Response::Error(format!(
                "id layout base={} step={} over {} rows reaches id {last}, past the u32 id space",
                opts.id_base,
                opts.id_step,
                data.len()
            ));
        }
        Some((0..data.len() as u32).map(|i| opts.id_base + i * opts.id_step).collect())
    };
    let t0 = Instant::now();
    // Builder invariants may assert on hostile specs, exactly like the
    // static path: catch, answer, keep the worker.
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &ids {
        None => LiveIndex::build_from(*spec, metric, data, config),
        Some(ids) => LiveIndex::build_from_ids(*spec, metric, data, config, ids),
    }));
    let live = match built {
        Ok(Ok(live)) => live,
        Ok(Err(e)) => return Response::Error(format!("building live {spec_text:?}: {e}")),
        Err(panic) => {
            return Response::Error(format!(
                "building live {spec_text:?} rejected: {}",
                panic_message(panic)
            ));
        }
    };
    let build_secs = t0.elapsed().as_secs_f64();

    let staged = match shared.snapshot_dir {
        Some(dir) => {
            let state = live.state();
            let meta = SnapMeta::of_build(spec, build_secs, state.live_rows() as u64);
            match crate::snapshot::stage_live_snapshot(dir, name, &state, &meta, None) {
                Ok(staged) => Some(staged),
                Err(e) => return Response::Error(format!("snapshotting {name:?}: {e}")),
            }
        }
        None => None,
    };

    let mut catalog = shared.catalog.write().expect("catalog poisoned");
    let mut snapshot_path = String::new();
    if let Some(staged) = staged {
        match staged.commit() {
            Ok(path) => snapshot_path = path.display().to_string(),
            Err(e) => return Response::Error(format!("snapshotting {name:?}: {e}")),
        }
    }
    match catalog.install_live(name.to_string(), spec.to_string(), live) {
        Ok(_replaced) => {
            let served = catalog.get(name).expect("just installed");
            // A fresh live entry starts a fresh log at generation 0 —
            // matching the snapshot just committed — truncating any WAL
            // a replaced entry left behind. Without a snapshot dir the
            // entry serves without durability (like FLUSH, which also
            // needs the dir).
            if let Some(dir) = shared.snapshot_dir {
                match Wal::create(&wal_path(dir, name), 0) {
                    Ok(wal) => *served.wal.lock().expect("wal mutex poisoned") = Some(wal),
                    Err(e) => obs::error!("creating WAL failed", index = name, error = e),
                }
            }
            let info = served.info();
            Response::Built { info, build_micros: (build_secs * 1e6) as u64, snapshot_path }
        }
        Err(e) => Response::Error(format!("installing {name:?}: {e}")),
    }
}

/// BUILD names double as snapshot file names: plain tokens only.
pub(crate) fn valid_build_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= crate::protocol::MAX_NAME
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// The error side is the message for a `Response::Error` (not the
/// response itself: `Response` grew large enough with BUILT that clippy
/// rightly objects to it riding in every `Err`). Request validation
/// lives in [`check_request`] — it needs the backend's (possibly
/// locked) length.
fn lookup<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a ServedIndex, String> {
    catalog.get(name).ok_or_else(|| format!("no such index {name:?}"))
}
