//! Lock-free per-index serving counters behind the STATS command.
//!
//! The log2-bucket scheme and quantile estimator that started here are
//! now the workspace-wide ones in the `obs` crate; this module keeps
//! thin aliases so existing callers (the router's shard aggregation,
//! `ann-cli stats`) don't churn.

use crate::protocol::StatsEntry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in the log2 query-latency histogram: bucket `i` counts
/// requests whose wall time fell in `[2^i, 2^(i+1))` microseconds
/// (bucket 0 also absorbs sub-µs requests, the last bucket is
/// open-ended at ~134 s — far beyond the 30 s connection read timeout).
pub const HIST_BUCKETS: usize = obs::HIST_BUCKETS;

/// Histogram bucket for a latency: `floor(log2(micros))`, clamped to
/// the bucket range.
fn bucket(micros: u64) -> usize {
    obs::bucket_index(micros)
}

/// Estimates a quantile (`q` in `[0, 1]`) from a log2 latency
/// histogram, returning the *upper bound* of the bucket holding the
/// q-th sample — a deterministic, slightly pessimistic estimate that
/// is exact to within a factor of two. Returns 0 for an empty
/// histogram. Shared by the STATS snapshot, the router's per-shard
/// aggregation, `ann-cli stats`, and the annd exit summary.
pub fn hist_quantile(hist: &[u64], q: f64) -> u64 {
    obs::hist_quantile(hist, q)
}

/// Counters one served index accumulates across all connections. All
/// fields are relaxed atomics: they are monotone counters read only by
/// STATS, so cross-field consistency is not required.
///
/// The write-path counters (`inserts`, `deletes`, `flushes`) only ever
/// move for live catalog entries — a static snapshot-backed index serves
/// reads only, and its write counters stay at zero.
#[derive(Debug, Default)]
pub struct IndexStats {
    queries: AtomicU64,
    batch_requests: AtomicU64,
    batch_queries: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    flushes: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    seals: AtomicU64,
    candidates_scanned: AtomicU64,
    heap_pushes: AtomicU64,
    sq8_pruned: AtomicU64,
    planned: AtomicU64,
    degraded: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    /// Query-path latencies only (QUERY/BATCH/SEARCH); write latencies
    /// roll into `total_micros`/`max_micros` but not the histogram, so
    /// p50/p99 describe read tail latency — the number the ROADMAP's
    /// interference work cares about.
    latency_hist: [AtomicU64; HIST_BUCKETS],
}

impl IndexStats {
    fn record_latency(&self, micros: u64) {
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn record_query_latency(&self, micros: u64) {
        self.record_latency(micros);
        self.latency_hist[bucket(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one single-query request.
    pub fn record_query(&self, micros: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.record_query_latency(micros);
    }

    /// Records one batch request covering `nq` queries.
    pub fn record_batch(&self, nq: u64, micros: u64) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        self.batch_queries.fetch_add(nq, Ordering::Relaxed);
        self.record_query_latency(micros);
    }

    /// Records one INSERT request that landed `rows` rows.
    pub fn record_insert(&self, rows: u64, micros: u64) {
        self.inserts.fetch_add(rows, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one DELETE request that removed `rows` live rows.
    pub fn record_delete(&self, rows: u64, micros: u64) {
        self.deletes.fetch_add(rows, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one FLUSH request.
    pub fn record_flush(&self, micros: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one WAL append of `bytes` framed bytes (a durable
    /// INSERT/DELETE acknowledgement).
    pub fn record_wal(&self, bytes: u64) {
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one background seal/compaction build installed off the
    /// request path.
    pub fn record_seal(&self) {
        self.seals.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates candidates scanned while answering (from
    /// [`ann::SearchStats`]), so the budget knob's real cost is visible
    /// in serving, not just in the eval harness.
    pub fn record_scanned(&self, candidates: u64) {
        self.candidates_scanned.fetch_add(candidates, Ordering::Relaxed);
    }

    /// Accumulates the rest of the search funnel next to
    /// [`record_scanned`](IndexStats::record_scanned): result-heap
    /// insertions (the "kept" side) and candidates the SQ8 skip bound
    /// pruned before a full-width distance was computed.
    pub fn record_funnel(&self, heap_pushes: u64, sq8_pruned: u64) {
        self.heap_pushes.fetch_add(heap_pushes, Ordering::Relaxed);
        self.sq8_pruned.fetch_add(sq8_pruned, Ordering::Relaxed);
    }

    /// Records one search whose knobs came from the recall planner;
    /// `degraded` marks whether the overload dial lowered the target
    /// before planning.
    pub fn record_planned(&self, degraded: bool) {
        self.planned.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current p99 query latency estimate in microseconds — the
    /// overload signal the degradation dial reads on the request path
    /// (one pass over the relaxed histogram, no locks).
    pub fn p99_micros(&self) -> u64 {
        let hist: Vec<u64> = self.latency_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        hist_quantile(&hist, 0.99)
    }

    /// A wire-ready snapshot of the counters. `spec` is the served
    /// entry's spec string (empty when unknown); `load_mode` and `sq8`
    /// describe the serving path ([`crate::catalog::ServedIndex`]).
    pub fn snapshot(&self, name: &str, spec: &str, load_mode: &str, sq8: bool) -> StatsEntry {
        let latency_hist: Vec<u64> =
            self.latency_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let p50_micros = hist_quantile(&latency_hist, 0.50);
        let p99_micros = hist_quantile(&latency_hist, 0.99);
        StatsEntry {
            name: name.to_string(),
            spec: spec.to_string(),
            load_mode: load_mode.to_string(),
            sq8,
            queries: self.queries.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            seals: self.seals.load(Ordering::Relaxed),
            candidates_scanned: self.candidates_scanned.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
            latency_hist,
            p50_micros,
            p99_micros,
            heap_pushes: self.heap_pushes.load(Ordering::Relaxed),
            sq8_pruned: self.sq8_pruned.load(Ordering::Relaxed),
            planned: self.planned.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            // Calibration state lives on the catalog entry, not in the
            // counters; the server overwrites these before replying.
            cal: "none".to_string(),
            cal_age_secs: 0,
        }
    }
}

/// Renders one stats entry as the canonical tab-separated counter line —
/// the single format `ann-cli stats` prints and the annd exit summary
/// reuses, so the two can never drift apart.
pub fn render_entry(e: &StatsEntry) -> String {
    format!(
        "{}\tspec={}\tload={}\tsq8={}\tqueries={}\tbatches={}\tbatch_queries={}\tinserts={}\
         \tdeletes={}\tflushes={}\twal_records={}\twal_bytes={}\tseals={}\tscanned={}\
         \tpushes={}\tpruned={}\tplanned={}\tdegraded={}\tcal={}\tcal_age_s={}\ttotal_us={}\
         \tmax_us={}\tp50_us={}\tp99_us={}",
        e.name,
        if e.spec.is_empty() { "unknown" } else { &e.spec },
        e.load_mode,
        if e.sq8 { "on" } else { "off" },
        e.queries,
        e.batch_requests,
        e.batch_queries,
        e.inserts,
        e.deletes,
        e.flushes,
        e.wal_records,
        e.wal_bytes,
        e.seals,
        e.candidates_scanned,
        e.heap_pushes,
        e.sq8_pruned,
        e.planned,
        e.degraded,
        if e.cal.is_empty() { "none" } else { &e.cal },
        e.cal_age_secs,
        e.total_micros,
        e.max_micros,
        e.p50_micros,
        e.p99_micros
    )
}

/// Appends the Prometheus series of a set of stats entries to `out`,
/// one `index`-labeled sample per entry per metric. The `_sum` of the
/// latency histogram is `total_micros`, which also includes write-path
/// requests (the buckets are query-path only; see
/// [`StatsEntry::latency_hist`]).
pub fn render_prom(entries: &[StatsEntry], out: &mut obs::PromText) {
    type Col = fn(&StatsEntry) -> u64;
    let counters: [(&str, &str, Col); 14] = [
        ("ann_queries_total", "Single QUERY/SEARCH requests answered", |e| e.queries),
        ("ann_batch_requests_total", "BATCH requests answered", |e| e.batch_requests),
        ("ann_batch_queries_total", "Queries answered inside BATCH requests", |e| {
            e.batch_queries
        }),
        ("ann_inserts_total", "Rows inserted (live indexes)", |e| e.inserts),
        ("ann_deletes_total", "Rows deleted (live indexes)", |e| e.deletes),
        ("ann_flushes_total", "FLUSH requests served", |e| e.flushes),
        ("ann_wal_records_total", "Write-ahead-log records appended", |e| e.wal_records),
        ("ann_wal_bytes_total", "Write-ahead-log bytes appended", |e| e.wal_bytes),
        ("ann_seals_total", "Background seal/compaction builds installed", |e| e.seals),
        (
            "ann_candidates_scanned_total",
            "Candidates the verification loops scanned",
            |e| e.candidates_scanned,
        ),
        ("ann_heap_pushes_total", "Result-heap insertions while answering", |e| {
            e.heap_pushes
        }),
        (
            "ann_sq8_pruned_total",
            "Candidates pruned by the SQ8 certified skip bound",
            |e| e.sq8_pruned,
        ),
        // The plan funnel: of the searches answered, how many asked for
        // a recall target, and of those, how many had their target
        // stepped down by the overload dial.
        ("ann_planned_total", "Searches whose knobs came from the recall planner", |e| {
            e.planned
        }),
        (
            "ann_degraded_total",
            "Planned searches whose recall target was degraded under load",
            |e| e.degraded,
        ),
    ];
    for (name, help, get) in counters {
        out.header(name, "counter", help);
        for e in entries {
            out.sample(name, &[("index", &e.name)], get(e));
        }
    }
    out.header("ann_request_max_micros", "gauge", "Slowest single request, microseconds");
    for e in entries {
        out.sample("ann_request_max_micros", &[("index", &e.name)], e.max_micros);
    }
    out.header(
        "ann_calibration_age_seconds",
        "gauge",
        "Seconds since the index's calibration sweep ran (0 when uncalibrated)",
    );
    for e in entries {
        out.sample(
            "ann_calibration_age_seconds",
            &[("index", &e.name), ("state", if e.cal.is_empty() { "none" } else { &e.cal })],
            e.cal_age_secs,
        );
    }
    out.header(
        "ann_search_latency_micros",
        "histogram",
        "Query-path (QUERY/BATCH/SEARCH) request latency, microseconds",
    );
    for e in entries {
        out.histogram_samples(
            "ann_search_latency_micros",
            &[("index", &e.name)],
            &e.latency_hist,
            e.total_micros,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IndexStats::default();
        s.record_query(10);
        s.record_query(30);
        s.record_batch(64, 500);
        s.record_scanned(128);
        s.record_scanned(72);
        let snap = s.snapshot("x", "lccs:m=8", "mapped", true);
        assert_eq!(snap.name, "x");
        assert_eq!(snap.spec, "lccs:m=8");
        assert_eq!(snap.load_mode, "mapped");
        assert!(snap.sq8);
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.batch_requests, 1);
        assert_eq!(snap.batch_queries, 64);
        assert_eq!(snap.candidates_scanned, 200, "scanned counts accumulate across requests");
        assert_eq!(snap.total_micros, 540);
        assert_eq!(snap.max_micros, 500);
        assert_eq!((snap.inserts, snap.deletes, snap.flushes), (0, 0, 0));
    }

    #[test]
    fn write_counters_accumulate() {
        let s = IndexStats::default();
        s.record_insert(100, 20);
        s.record_insert(1, 5);
        s.record_delete(3, 2);
        s.record_flush(1_000);
        s.record_wal(640);
        s.record_wal(32);
        s.record_seal();
        let snap = s.snapshot("live", "lccs:m=8", "owned", false);
        assert_eq!(snap.inserts, 101, "insert counter counts rows, not requests");
        assert_eq!(snap.deletes, 3);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.wal_records, 2, "one WAL record per acknowledged write request");
        assert_eq!(snap.wal_bytes, 672);
        assert_eq!(snap.seals, 1);
        assert_eq!(snap.total_micros, 1_027, "write latency rolls into the totals");
        assert_eq!(snap.max_micros, 1_000);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(1023), 9);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1, "huge latencies clamp to the last bucket");
    }

    #[test]
    fn histogram_tracks_query_latency_only() {
        let s = IndexStats::default();
        s.record_query(3); // bucket 1
        s.record_query(5); // bucket 2
        s.record_batch(10, 700); // bucket 9
        s.record_insert(100, 1 << 20); // writes stay out of the histogram
        s.record_flush(1 << 20);
        let snap = s.snapshot("x", "", "owned", false);
        assert_eq!(snap.latency_hist.len(), HIST_BUCKETS);
        assert_eq!(snap.latency_hist.iter().sum::<u64>(), 3, "3 query-path requests recorded");
        assert_eq!(snap.latency_hist[1], 1);
        assert_eq!(snap.latency_hist[2], 1);
        assert_eq!(snap.latency_hist[9], 1);
        // p50 = 2nd of 3 samples -> bucket 2, upper bound 2^3-1.
        assert_eq!(snap.p50_micros, 7);
        // p99 = 3rd sample -> bucket 9, upper bound 2^10-1.
        assert_eq!(snap.p99_micros, 1023);
    }

    #[test]
    fn funnel_counters_accumulate() {
        let s = IndexStats::default();
        s.record_scanned(100);
        s.record_funnel(12, 40);
        s.record_funnel(3, 0);
        let snap = s.snapshot("x", "", "mapped", true);
        assert_eq!(snap.candidates_scanned, 100);
        assert_eq!(snap.heap_pushes, 15);
        assert_eq!(snap.sq8_pruned, 40);
    }

    #[test]
    fn rendered_entry_keeps_the_pinned_tokens() {
        let s = IndexStats::default();
        s.record_query(10);
        s.record_insert(1, 5);
        s.record_delete(1, 2);
        s.record_wal(64);
        s.record_scanned(9);
        s.record_funnel(4, 2);
        s.record_planned(true);
        s.record_planned(false);
        let line = render_entry(&s.snapshot("smoke", "", "mapped", true));
        // The exact fields scripts and operators grep for.
        assert!(line.starts_with("smoke\t"));
        for token in [
            "spec=unknown",
            "load=mapped",
            "sq8=on",
            "queries=1",
            "inserts=1",
            "deletes=1",
            "wal_records=1",
            "scanned=9",
            "pushes=4",
            "pruned=2",
            "planned=2",
            "degraded=1",
            "cal=none",
            "cal_age_s=0",
            "p50_us=15",
            "p99_us=15",
        ] {
            assert!(line.contains(token), "{token:?} missing from {line:?}");
        }
    }

    #[test]
    fn planner_counters_accumulate_and_render() {
        let s = IndexStats::default();
        s.record_planned(false);
        s.record_planned(false);
        s.record_planned(true);
        let snap = s.snapshot("planned", "", "mapped", false);
        assert_eq!(snap.planned, 3);
        assert_eq!(snap.degraded, 1, "only the degraded plan bumps the second counter");
        let mut out = obs::PromText::new();
        render_prom(&[snap], &mut out);
        let text = out.into_string();
        assert!(text.contains("ann_planned_total{index=\"planned\"} 3\n"));
        assert!(text.contains("ann_degraded_total{index=\"planned\"} 1\n"));
        assert!(text.contains("ann_calibration_age_seconds{index=\"planned\",state=\"none\"} 0\n"));
    }

    #[test]
    fn p99_accessor_matches_the_snapshot() {
        let s = IndexStats::default();
        assert_eq!(s.p99_micros(), 0, "empty histogram reports 0");
        for _ in 0..100 {
            s.record_query(3);
        }
        s.record_query(5000);
        assert_eq!(s.p99_micros(), s.snapshot("x", "", "owned", false).p99_micros);
    }

    #[test]
    fn prom_render_covers_every_entry() {
        let a = IndexStats::default();
        a.record_query(10);
        a.record_scanned(50);
        a.record_funnel(7, 3);
        let b = IndexStats::default();
        b.record_batch(4, 900);
        let entries =
            [a.snapshot("alpha", "", "mapped", true), b.snapshot("beta", "", "owned", false)];
        let mut out = obs::PromText::new();
        render_prom(&entries, &mut out);
        let text = out.into_string();
        assert_eq!(text.matches("# TYPE ann_queries_total counter").count(), 1);
        assert!(text.contains("ann_queries_total{index=\"alpha\"} 1\n"));
        assert!(text.contains("ann_queries_total{index=\"beta\"} 0\n"));
        assert!(text.contains("ann_batch_queries_total{index=\"beta\"} 4\n"));
        assert!(text.contains("ann_heap_pushes_total{index=\"alpha\"} 7\n"));
        assert!(text.contains("ann_sq8_pruned_total{index=\"alpha\"} 3\n"));
        assert!(text.contains("ann_search_latency_micros_count{index=\"alpha\"} 1\n"));
        assert!(text.contains("ann_search_latency_micros_sum{index=\"beta\"} 900\n"));
        assert!(text.contains("ann_search_latency_micros_bucket{index=\"beta\",le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn quantiles_of_empty_and_single_histograms() {
        assert_eq!(hist_quantile(&[], 0.5), 0);
        assert_eq!(hist_quantile(&[0, 0, 0], 0.99), 0);
        // One sample in bucket 4: every quantile reports its bucket cap.
        let mut h = vec![0u64; HIST_BUCKETS];
        h[4] = 1;
        assert_eq!(hist_quantile(&h, 0.0), 31);
        assert_eq!(hist_quantile(&h, 0.5), 31);
        assert_eq!(hist_quantile(&h, 1.0), 31);
        // 100 samples in bucket 0, one straggler in bucket 20: p50 stays
        // low, p99 still low (rank 100 of 101), p100 catches the tail.
        let mut h = vec![0u64; HIST_BUCKETS];
        h[0] = 100;
        h[20] = 1;
        assert_eq!(hist_quantile(&h, 0.5), 1);
        assert_eq!(hist_quantile(&h, 0.99), 1);
        assert_eq!(hist_quantile(&h, 1.0), (1 << 21) - 1);
    }
}
