//! Lock-free per-index serving counters behind the STATS command.

use crate::protocol::StatsEntry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters one served index accumulates across all connections. All
/// fields are relaxed atomics: they are monotone counters read only by
/// STATS, so cross-field consistency is not required.
///
/// The write-path counters (`inserts`, `deletes`, `flushes`) only ever
/// move for live catalog entries — a static snapshot-backed index serves
/// reads only, and its write counters stay at zero.
#[derive(Debug, Default)]
pub struct IndexStats {
    queries: AtomicU64,
    batch_requests: AtomicU64,
    batch_queries: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    flushes: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    seals: AtomicU64,
    candidates_scanned: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl IndexStats {
    fn record_latency(&self, micros: u64) {
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records one single-query request.
    pub fn record_query(&self, micros: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one batch request covering `nq` queries.
    pub fn record_batch(&self, nq: u64, micros: u64) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        self.batch_queries.fetch_add(nq, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one INSERT request that landed `rows` rows.
    pub fn record_insert(&self, rows: u64, micros: u64) {
        self.inserts.fetch_add(rows, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one DELETE request that removed `rows` live rows.
    pub fn record_delete(&self, rows: u64, micros: u64) {
        self.deletes.fetch_add(rows, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one FLUSH request.
    pub fn record_flush(&self, micros: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.record_latency(micros);
    }

    /// Records one WAL append of `bytes` framed bytes (a durable
    /// INSERT/DELETE acknowledgement).
    pub fn record_wal(&self, bytes: u64) {
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one background seal/compaction build installed off the
    /// request path.
    pub fn record_seal(&self) {
        self.seals.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates candidates scanned while answering (from
    /// [`ann::SearchStats`]), so the budget knob's real cost is visible
    /// in serving, not just in the eval harness.
    pub fn record_scanned(&self, candidates: u64) {
        self.candidates_scanned.fetch_add(candidates, Ordering::Relaxed);
    }

    /// A wire-ready snapshot of the counters. `spec` is the served
    /// entry's spec string (empty when unknown); `load_mode` and `sq8`
    /// describe the serving path ([`crate::catalog::ServedIndex`]).
    pub fn snapshot(&self, name: &str, spec: &str, load_mode: &str, sq8: bool) -> StatsEntry {
        StatsEntry {
            name: name.to_string(),
            spec: spec.to_string(),
            load_mode: load_mode.to_string(),
            sq8,
            queries: self.queries.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            seals: self.seals.load(Ordering::Relaxed),
            candidates_scanned: self.candidates_scanned.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IndexStats::default();
        s.record_query(10);
        s.record_query(30);
        s.record_batch(64, 500);
        s.record_scanned(128);
        s.record_scanned(72);
        let snap = s.snapshot("x", "lccs:m=8", "mapped", true);
        assert_eq!(snap.name, "x");
        assert_eq!(snap.spec, "lccs:m=8");
        assert_eq!(snap.load_mode, "mapped");
        assert!(snap.sq8);
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.batch_requests, 1);
        assert_eq!(snap.batch_queries, 64);
        assert_eq!(snap.candidates_scanned, 200, "scanned counts accumulate across requests");
        assert_eq!(snap.total_micros, 540);
        assert_eq!(snap.max_micros, 500);
        assert_eq!((snap.inserts, snap.deletes, snap.flushes), (0, 0, 0));
    }

    #[test]
    fn write_counters_accumulate() {
        let s = IndexStats::default();
        s.record_insert(100, 20);
        s.record_insert(1, 5);
        s.record_delete(3, 2);
        s.record_flush(1_000);
        s.record_wal(640);
        s.record_wal(32);
        s.record_seal();
        let snap = s.snapshot("live", "lccs:m=8", "owned", false);
        assert_eq!(snap.inserts, 101, "insert counter counts rows, not requests");
        assert_eq!(snap.deletes, 3);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.wal_records, 2, "one WAL record per acknowledged write request");
        assert_eq!(snap.wal_bytes, 672);
        assert_eq!(snap.seals, 1);
        assert_eq!(snap.total_micros, 1_027, "write latency rolls into the totals");
        assert_eq!(snap.max_micros, 1_000);
    }
}
