//! Shared bounds-checked byte reader for the crate's two decoders
//! (frame bodies in [`crate::protocol`], snapshot containers in
//! [`crate::snapshot`]). Network and disk input must never panic, and
//! the vendored `bytes` shim asserts on underrun — so both decode paths
//! go through this cursor, which reports [`Short`] instead.

/// The cursor ran past the end of the input.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Short;

/// A consuming cursor over a byte slice; every accessor is
/// bounds-checked.
pub(crate) struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader(buf)
    }

    /// Unread bytes.
    pub(crate) fn remaining(&self) -> usize {
        self.0.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], Short> {
        if self.0.len() < n {
            return Err(Short);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, Short> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, Short> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// A `u16`-length-prefixed byte run — the string framing shared by
    /// the protocol and the snapshot container (each layer applies its
    /// own UTF-8/emptiness policy on top).
    pub(crate) fn take16(&mut self) -> Result<&'a [u8], Short> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, Short> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, Short> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, Short> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// `count` f32 values, bit-exact (via u32 bits).
    pub(crate) fn f32s(&mut self, count: usize) -> Result<Vec<f32>, Short> {
        let raw = self.take(count.checked_mul(4).ok_or(Short)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect())
    }
}

/// Writes the `u16`-length-prefixed string [`Reader::take16`] reads.
///
/// # Panics
/// Panics if `s` exceeds `u16::MAX` bytes — callers validate first.
pub(crate) fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string of {} bytes exceeds u16", s.len());
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str16_round_trips() {
        let mut buf = Vec::new();
        put_str16(&mut buf, "hé");
        put_str16(&mut buf, "");
        let mut r = Reader::new(&buf);
        assert_eq!(r.take16(), Ok("hé".as_bytes()));
        assert_eq!(r.take16(), Ok(&b""[..]));
        assert_eq!(r.take16(), Err(Short));
    }

    #[test]
    fn reads_and_reports_short() {
        let buf = [7u8, 1, 0, 0, 0, 0xff];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u32(), Ok(1));
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u16(), Err(Short));
        assert_eq!(r.u8(), Ok(0xff));
        assert_eq!(r.u8(), Err(Short));
    }

    #[test]
    fn f32s_overflow_guard() {
        let mut r = Reader::new(&[0u8; 16]);
        assert_eq!(r.f32s(usize::MAX), Err(Short));
        assert_eq!(r.f32s(4).unwrap(), vec![0.0; 4]);
    }
}
