//! Snapshot-backed ANN serving (`annd`).
//!
//! This crate separates index *construction* from index *serving*, the
//! split production ANN deployments (and the HTAP designs in PAPERS.md)
//! converge on: an index is built once, written to an immutable snapshot
//! container, and any number of serving processes restore it instantly —
//! `core::persist` skips the `O(m n log n)` CSA rebuild — and answer
//! queries over a length-prefixed binary TCP protocol.
//!
//! Since PR 3 construction is also remotely drivable: the BUILD command
//! carries an [`ann::spec`] grammar string plus a server-local dataset
//! path, and `annd` builds through `eval::registry`, embeds the spec in
//! the written snapshot's meta section, and atomically installs the index
//! in its catalog — the full build → snapshot → serve lifecycle over one
//! socket.
//!
//! Since PR 4 `annd` is also *writable*: a BUILD with the live flag
//! installs an [`ann_live::LiveIndex`] — an LSM-style segmented mutable
//! index — and the INSERT / DELETE / FLUSH commands mutate it over the
//! same socket. Live entries sit behind an inner `RwLock` (single-writer
//! mutation, shared-read queries); static entries keep the lock-free
//! read path. FLUSH persists the live structure as a back-compatible
//! LIVE section in the `.snap` container, so a restarted daemon reloads
//! the index and answers identically.
//!
//! * [`snapshot`] — the on-disk container (name + method + vectors +
//!   [`ann::PersistAnn`] payload + optional spec/provenance meta section
//!   + optional live-structure section) and its atomic writer.
//! * [`catalog`] — the multi-index catalog a server holds; restored
//!   through `eval::registry` by method name, extended by BUILD installs;
//!   entries are static (frozen) or live (mutable).
//! * [`protocol`] — the wire format: framing, requests, responses.
//! * [`server`] — the worker-pool serving loop behind the `annd` binary:
//!   one scratch per (worker, index), batches through the parallel
//!   executor, per-index latency counters, cooperative shutdown.
//! * [`client`] — the blocking client behind `ann-cli`, the tests, and
//!   the router's shard pool (pooled connections, reconnect-on-EOF with
//!   one retry for idempotent requests).
//! * [`router`] — the sharded-cluster front: one `annd --router`
//!   process that hash-partitions writes over unmodified shard daemons
//!   (`id % n_shards`), scatter-gathers top-k byte-identically to a
//!   single-node index over the union of rows, round-robins reads over
//!   replicas, and degrades to typed partial results when a shard dies.
//! * [`placement`] — the routed-catalog file freezing each index's
//!   placement modulus and auto-id high-water mark across restarts.
//!
//! Everything runs on `std::net` — no new dependencies, in keeping with
//! the workspace's fully-vendored offline build.
//!
//! ```no_run
//! use serve::{catalog::Catalog, client::Client, server::Server};
//!
//! let catalog = Catalog::load_dir(std::path::Path::new("snapshots"))?;
//! let server = Server::bind(catalog, "127.0.0.1:0", 4)?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let hits = client.query("demo", 10, 128, 0, &vec![0.0; 32]).unwrap();
//! # let _ = hits;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Where this crate sits in the workspace — and the full durable write
//! path it implements — is mapped in `docs/architecture.md` and
//! `docs/durability.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod placement;
pub mod protocol;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod stats;
mod wire;
