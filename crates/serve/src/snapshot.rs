//! The on-disk snapshot container `annd` serves from.
//!
//! A snapshot file bundles everything a serving process needs to answer
//! queries for one index without rebuilding anything: the catalog name,
//! the method name (which selects the restorer in
//! [`eval::registry::snapshot_entries`]), the raw vectors, and the
//! method's own [`ann::PersistAnn`] payload (parameters + CSA).
//!
//! Writers emit the **v3** layout (all little-endian):
//!
//! ```text
//! magic    b"ANNSNP03"                    8 bytes
//! name     u16 length + UTF-8 bytes       catalog name
//! method   u16 length + UTF-8 bytes       e.g. "LCCS-LSH"
//! n        u64                            vector count
//! dim      u32                            dimensionality
//! vec_len  u64                            vector block bytes (= n·dim·4)
//! pad      0–7 zero bytes                 8-aligns the vector block
//! vectors  n * dim * f32                  row-major raw bits
//! pad      0–7 zero bytes                 8-aligns the payload prefix
//! payload  u64 length + bytes             PersistAnn payload
//! sq8c     (optional) b"SQ8C" + u32 len   SQ8 code table, see below
//! meta     (optional) b"META" + u32 len   build provenance, see below
//! live     (optional) b"LIVE" + u32 len   mutable-index structure, see below
//! calb     (optional) b"CALB" + u32 len   recall-calibration table, see below
//! ```
//!
//! The explicit length prefix and the alignment pads are what make
//! zero-copy serving possible: the vector block sits at an 8-aligned
//! file offset, so [`Snapshot::open_mapped`] can hand the mapped bytes
//! straight to [`mm::FloatBlock`] as an `&[f32]` without copying, and
//! [`Snapshot::read_from`] can likewise slice its read buffer in place.
//! **v1** files (magic `ANNSNP01`, no `vec_len`, no pads, no SQ8C
//! section — everything written before this layout existed) still load
//! byte-identically through the same decoder; they are simply always
//! copied into owned memory.
//!
//! The **SQ8C section** persists the dataset's [`dataset::Sq8`] code
//! table (per-dimension scalar quantization) so a restart restores the
//! scan pre-filter without retraining:
//!
//! ```text
//! flags   u8                              bit 0: every row unit-norm
//! dim     u32                             must equal the container dim
//! rows    u64                             must equal the container n
//! mins    dim × f32                       per-dimension offsets
//! scales  dim × f32                       per-dimension scales
//! codes   rows × dim bytes                row-major u8 codes
//! ```
//!
//! The trailing **meta section** (added in PR 3, backward compatible: a
//! container that ends after `payload` — everything written before the
//! section existed — still decodes, with [`Snapshot::meta`] `None`)
//! records where the index came from:
//!
//! ```text
//! spec        u16 length + UTF-8 bytes    canonical ann::spec grammar string
//! w           f64 bits                    bucket width used
//! seed        u64                         RNG seed used
//! build_secs  f64 bits                    indexing wall-clock seconds
//! source_rows u64                         rows of the source dataset
//! ```
//!
//! The **LIVE section** (PR 4, same back-compat story as META: older
//! containers without it decode with [`Snapshot::live`] `None`) makes a
//! mutable [`ann_live::LiveIndex`] restartable. For a live container the
//! base `vectors` block holds *every* physical row — each sealed
//! segment's rows (live **and** tombstoned: an LSH segment's answers
//! depend on every row it was built over), then the memtable's — and the
//! section maps structure onto that block:
//!
//! ```text
//! spec            u16 length + UTF-8      segment-build ann::spec string
//! metric          u16 length + UTF-8      metric name
//! dim             u32                     row dimensionality
//! seal_threshold  u64                     seal policy
//! max_segments    u64                     compaction policy
//! next_id         u32                     next auto-assigned external id
//! seg_count       u32
//! per unit (each segment, then the memtable):
//!   rows          u64                     row count (consumes the next
//!                                         rows × dim base vectors)
//!   ids           rows × u32              external id per slot
//!   dead          u32 count + count × u32 tombstoned slots
//! wal_gen         u64                     WAL generation this snapshot
//!                                         covers (PR 7; absent on older
//!                                         files, which decode as gen 0)
//! ```
//!
//! The **CALB section** (PR 10, same back-compat story: pre-calibration
//! containers without it load byte-identically with
//! [`Snapshot::calibration`] `None`) persists the index's measured
//! recall/latency grid — a [`plan::CalibrationTable`] in its own `CALT`
//! codec — so a restarted server can keep planning `target_recall`
//! requests without re-sweeping. BUILD and FLUSH writers only attach a
//! table the serving process already holds;
//! [`attach_calibration`] swaps the section on an existing file.
//!
//! Segment *indexes* are not stored: each is rebuilt deterministically
//! from `(spec, rows, metric)` at load time — the spec carries the RNG
//! seed, so the reloaded index answers bit-identically (the serve e2e
//! test pins this across a daemon restart).
//!
//! Snapshot files use the `.snap` extension; a snapshot directory is just
//! a flat directory of them, loaded in name order by
//! [`crate::catalog::Catalog::load_dir`].

use ann::PersistAnn;
use ann_live::{LiveState, UnitState};
use dataset::{Dataset, Metric, Sq8};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic + version prefix written by current encoders (v3: length-
/// prefixed, 8-aligned vector block; optional SQ8C section).
pub const MAGIC: &[u8; 8] = b"ANNSNP03";

/// Magic of legacy v1/v2 containers (unaligned vector block, no SQ8C);
/// still decoded, always into owned memory.
pub const MAGIC_V1: &[u8; 8] = b"ANNSNP01";

/// Extension of snapshot files inside a `--snapshot-dir`.
pub const SNAPSHOT_EXT: &str = "snap";

/// Cap on the declared vector payload (guards against a corrupted header
/// making the loader allocate terabytes): 1 GiB of f32s.
const MAX_VECTOR_BYTES: u64 = 1 << 30;

/// Errors raised while reading or writing snapshot containers.
#[derive(Debug)]
pub enum SnapError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The container is structurally broken (message explains what).
    Malformed(String),
    /// The container decoded, but the index payload could not be restored.
    Restore(eval::registry::RestoreError),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapError::Restore(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// Marker opening the optional SQ8 code-table section.
pub const SQ8_MARKER: &[u8; 4] = b"SQ8C";

/// Marker opening the optional build-provenance section.
pub const META_MARKER: &[u8; 4] = b"META";

/// Marker opening the optional live-index structure section.
pub const LIVE_MARKER: &[u8; 4] = b"LIVE";

/// Marker opening the optional recall-calibration table section.
pub const CAL_MARKER: &[u8; 4] = b"CALB";

/// Build provenance carried in the snapshot's optional meta section: the
/// originating [`ann::IndexSpec`] (as its canonical grammar string) plus
/// the measurements `describe` and LIST report.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapMeta {
    /// Canonical `ann::spec` grammar string (e.g. `mp-lccs:m=64,seed=7`).
    pub spec: String,
    /// Bucket width the build used.
    pub w: f64,
    /// RNG seed the build used.
    pub seed: u64,
    /// Indexing wall-clock seconds.
    pub build_secs: f64,
    /// Rows of the source dataset the index was built over.
    pub source_rows: u64,
}

impl SnapMeta {
    /// Provenance of a freshly built index: the spec supplies the string,
    /// `w` and `seed`; the caller supplies its measurements.
    pub fn of_build(spec: &ann::IndexSpec, build_secs: f64, source_rows: u64) -> SnapMeta {
        SnapMeta {
            spec: spec.to_string(),
            w: spec.build.w,
            seed: spec.build.seed,
            build_secs,
            source_rows,
        }
    }
}

/// A decoded (but not yet restored) snapshot container.
pub struct Snapshot {
    /// Catalog name the index is served under.
    pub name: String,
    /// Method name selecting the restorer (e.g. `"MP-LCCS-LSH"`, or
    /// [`ann_live::LIVE_METHOD`] for a mutable index).
    pub method: String,
    /// The raw vectors the index was built over (for a live container:
    /// every physical row, segments first, memtable last).
    pub data: Dataset,
    /// The method's [`PersistAnn`] payload (empty for live containers).
    pub payload: Vec<u8>,
    /// Build provenance; `None` for pre-meta (PR-2 era) containers.
    pub meta: Option<SnapMeta>,
    /// Live-index structure; `None` for frozen (static) containers.
    pub live: Option<LiveState>,
    /// Measured recall-calibration table; `None` for uncalibrated (and
    /// every pre-calibration) container.
    pub calibration: Option<plan::CalibrationTable>,
}

/// Container strings reject emptiness before handing off to the shared
/// [`crate::wire::put_str16`] framing.
fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), SnapError> {
    if s.is_empty() || s.len() > u16::MAX as usize {
        return Err(SnapError::Malformed(format!("bad name length {}", s.len())));
    }
    crate::wire::put_str16(out, s);
    Ok(())
}

/// Maps a [`wire::Short`] underrun onto a contextual decode error.
fn ctx<T>(res: Result<T, crate::wire::Short>, what: &str) -> Result<T, SnapError> {
    res.map_err(|_| SnapError::Malformed(format!("truncated in {what}")))
}

fn get_str16(r: &mut crate::wire::Reader, what: &str) -> Result<String, SnapError> {
    let raw = ctx(r.take16(), what)?;
    if raw.is_empty() {
        return Err(SnapError::Malformed(format!("empty {what}")));
    }
    String::from_utf8(raw.to_vec())
        .map_err(|_| SnapError::Malformed(format!("{what} is not UTF-8")))
}

/// The shared serializer behind [`Snapshot::encode`] and
/// [`write_built_snapshot`]: borrowing the dataset means the build path
/// never clones the vectors just to write them out.
fn encode_parts(
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: Option<&SnapMeta>,
    live: Option<&LiveState>,
    calibration: Option<&plan::CalibrationTable>,
) -> Result<Vec<u8>, SnapError> {
    let flat = data.as_flat();
    let mut out = Vec::with_capacity(80 + flat.len() * 4 + payload.len());
    out.extend_from_slice(MAGIC);
    put_str16(&mut out, name)?;
    put_str16(&mut out, method)?;
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(data.dim() as u32).to_le_bytes());
    out.extend_from_slice(&(flat.len() as u64 * 4).to_le_bytes());
    pad8(&mut out); // the vector block starts at an 8-aligned offset
    for v in flat {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    pad8(&mut out); // ... and so does the payload length prefix
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    // A code table is persisted only when it covers exactly the rows
    // being written — a cache primed for a different row count would
    // deserialize into an unusable (and rejected) section.
    if let Some(sq) = data.sq8_if_built().filter(|sq| sq.rows() == data.len()) {
        let mut section =
            Vec::with_capacity(13 + sq.dim() * 8 + sq.codes().len());
        section.push(u8::from(sq.unit_rows()));
        section.extend_from_slice(&(sq.dim() as u32).to_le_bytes());
        section.extend_from_slice(&(sq.rows() as u64).to_le_bytes());
        for v in sq.mins().iter().chain(sq.scales()) {
            section.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        section.extend_from_slice(sq.codes());
        push_section(&mut out, SQ8_MARKER, &section);
    }
    if let Some(meta) = meta {
        let mut section = Vec::with_capacity(40 + meta.spec.len());
        put_str16(&mut section, &meta.spec)?;
        section.extend_from_slice(&meta.w.to_bits().to_le_bytes());
        section.extend_from_slice(&meta.seed.to_le_bytes());
        section.extend_from_slice(&meta.build_secs.to_bits().to_le_bytes());
        section.extend_from_slice(&meta.source_rows.to_le_bytes());
        push_section(&mut out, META_MARKER, &section);
    }
    if let Some(state) = live {
        let mut section = Vec::with_capacity(64 + state.total_rows() * 4);
        put_str16(&mut section, &state.spec.to_string())?;
        put_str16(&mut section, state.metric.name())?;
        section.extend_from_slice(&(state.dim as u32).to_le_bytes());
        section.extend_from_slice(&(state.config.seal_threshold as u64).to_le_bytes());
        section.extend_from_slice(&(state.config.max_segments as u64).to_le_bytes());
        section.extend_from_slice(&state.next_id.to_le_bytes());
        section.extend_from_slice(&(state.segments.len() as u32).to_le_bytes());
        for unit in state.segments.iter().chain(std::iter::once(&state.memtable)) {
            section.extend_from_slice(&(unit.ids.len() as u64).to_le_bytes());
            for id in &unit.ids {
                section.extend_from_slice(&id.to_le_bytes());
            }
            section.extend_from_slice(&(unit.dead.len() as u32).to_le_bytes());
            for slot in &unit.dead {
                section.extend_from_slice(&slot.to_le_bytes());
            }
        }
        section.extend_from_slice(&state.wal_gen.to_le_bytes());
        push_section(&mut out, LIVE_MARKER, &section);
    }
    if let Some(table) = calibration {
        push_section(&mut out, CAL_MARKER, &table.encode());
    }
    Ok(out)
}

fn push_section(out: &mut Vec<u8>, marker: &[u8; 4], section: &[u8]) {
    out.extend_from_slice(marker);
    out.extend_from_slice(&(section.len() as u32).to_le_bytes());
    out.extend_from_slice(section);
}

/// Zero-pads `out` to the next 8-byte boundary. `out` holds the whole
/// file from offset 0, so `out.len()` *is* the file offset.
fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Consumes the v3 alignment padding at the reader's current position
/// (`raw_len` − remaining = absolute offset) and rejects non-zero fill.
fn skip_pad8(r: &mut crate::wire::Reader, raw_len: usize, what: &str) -> Result<(), SnapError> {
    let pos = raw_len - r.remaining();
    let pad = (8 - pos % 8) % 8;
    if ctx(r.take(pad), what)?.iter().any(|&b| b != 0) {
        return Err(SnapError::Malformed(format!("non-zero {what}")));
    }
    Ok(())
}

/// Parses the LIVE section body, slicing each unit's rows out of the
/// base vector block (`flat`, `dim`).
fn parse_live_section(
    sr: &mut crate::wire::Reader,
    flat: &[f32],
    dim: usize,
) -> Result<LiveState, SnapError> {
    let spec_text = get_str16(sr, "live spec")?;
    let spec = spec_text
        .parse()
        .map_err(|e| SnapError::Malformed(format!("live spec {spec_text:?}: {e}")))?;
    let metric_name = get_str16(sr, "live metric")?;
    let metric = Metric::from_name(&metric_name)
        .ok_or_else(|| SnapError::Malformed(format!("unknown live metric {metric_name:?}")))?;
    let live_dim = ctx(sr.u32(), "live dim")? as usize;
    if live_dim != dim {
        return Err(SnapError::Malformed(format!(
            "live dim {live_dim} disagrees with the vector block dim {dim}"
        )));
    }
    let seal_threshold = ctx(sr.u64(), "live seal_threshold")? as usize;
    let max_segments = ctx(sr.u64(), "live max_segments")? as usize;
    let next_id = ctx(sr.u32(), "live next_id")?;
    let total_rows = flat.len() / dim;
    let seg_count = ctx(sr.u32(), "live segment count")? as usize;
    if seg_count > total_rows {
        return Err(SnapError::Malformed(format!(
            "{seg_count} segments over {total_rows} rows"
        )));
    }
    let mut row_cursor = 0usize;
    let mut take_unit = |sr: &mut crate::wire::Reader, what: &str| -> Result<UnitState, SnapError> {
        let rows = ctx(sr.u64(), what)? as usize;
        if rows > total_rows - row_cursor {
            return Err(SnapError::Malformed(format!(
                "{what} declares {rows} rows, {} remain in the vector block",
                total_rows - row_cursor
            )));
        }
        let mut ids = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(ctx(sr.u32(), what)?);
        }
        let dead_count = ctx(sr.u32(), what)? as usize;
        if dead_count > rows {
            return Err(SnapError::Malformed(format!(
                "{what} declares {dead_count} dead slots over {rows} rows"
            )));
        }
        let mut dead = Vec::with_capacity(dead_count);
        for _ in 0..dead_count {
            dead.push(ctx(sr.u32(), what)?);
        }
        let unit_flat = flat[row_cursor * dim..(row_cursor + rows) * dim].to_vec();
        row_cursor += rows;
        Ok(UnitState { rows: unit_flat, ids, dead })
    };
    let mut segments = Vec::with_capacity(seg_count);
    for i in 0..seg_count {
        segments.push(take_unit(sr, &format!("live segment {i}"))?);
    }
    let memtable = take_unit(sr, "live memtable")?;
    if row_cursor != total_rows {
        return Err(SnapError::Malformed(format!(
            "LIVE section covers {row_cursor} of {total_rows} rows"
        )));
    }
    // Trailing WAL generation (PR 7). Absent on older containers — they
    // predate the WAL entirely, so generation 0 (= "no log expected").
    let wal_gen = if sr.remaining() >= 8 { ctx(sr.u64(), "live wal_gen")? } else { 0 };
    Ok(LiveState {
        spec,
        metric,
        dim,
        config: ann_live::LiveConfig { seal_threshold, max_segments },
        next_id,
        segments,
        memtable,
        wal_gen,
    })
}

/// Writes `bytes` to `path` atomically (tmp file + rename).
fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

impl Snapshot {
    /// Builds a container from a built index and its dataset. The method
    /// name is taken from [`ann::AnnIndex::name`]; no provenance is
    /// attached — chain [`Snapshot::with_meta`] when the spec is known.
    pub fn of_index(name: &str, index: &dyn PersistAnn, data: &Dataset) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            method: index.name().to_string(),
            data: data.clone(),
            payload: index.snapshot_bytes(),
            meta: None,
            live: None,
            calibration: None,
        }
    }

    /// Builds a live container from a [`LiveState`]
    /// ([`ann_live::LiveIndex::state`]): the base vector block is the
    /// concatenation of every unit's physical rows, the method is
    /// [`ann_live::LIVE_METHOD`], and the structure rides in the LIVE
    /// section. An index with zero physical rows cannot be containerized.
    pub fn of_live(name: &str, state: &LiveState) -> Result<Snapshot, SnapError> {
        Ok(Snapshot {
            name: name.to_string(),
            method: ann_live::LIVE_METHOD.to_string(),
            data: live_base_block(name, state)?,
            payload: Vec::new(),
            meta: None,
            live: Some(state.clone()),
            calibration: None,
        })
    }

    /// Attaches build provenance (written as the optional meta section).
    pub fn with_meta(mut self, meta: SnapMeta) -> Snapshot {
        self.meta = Some(meta);
        self
    }

    /// Serializes the container.
    pub fn encode(&self) -> Result<Vec<u8>, SnapError> {
        encode_parts(
            &self.name,
            &self.method,
            &self.data,
            &self.payload,
            self.meta.as_ref(),
            self.live.as_ref(),
            self.calibration.as_ref(),
        )
    }

    /// Decodes a container produced by [`Snapshot::encode`] — current v3
    /// files and legacy v1/v2 (pre-meta / pre-LIVE) files alike — into
    /// owned memory.
    pub fn decode(raw: &[u8]) -> Result<Snapshot, SnapError> {
        let parts = parse(raw)?;
        Ok(assemble_owned(parts, raw))
    }

    /// [`Snapshot::decode`], but taking ownership of the read buffer so
    /// the vector block of a v3 container is *sliced in place* instead
    /// of copied — the buffer itself becomes the dataset's backing
    /// store ([`dataset::StorageKind::SharedBytes`]). Falls back to an
    /// owned copy for v1 files, live containers (their rows are
    /// re-assembled per unit anyway), and buffers whose vector region
    /// happens to be misaligned for `f32`.
    pub fn decode_owned(raw: Vec<u8>) -> Result<Snapshot, SnapError> {
        let parts = parse(&raw)?;
        if parts.zero_copy && parts.live.is_none() {
            let (off, count) = (parts.vec_off, parts.n * parts.dim);
            match mm::FloatBlock::from_bytes(raw, off, count) {
                Ok(block) => return Ok(assemble_shared(parts, Arc::new(block))),
                Err(raw) => return Ok(assemble_owned(parts, &raw)),
            }
        }
        Ok(assemble_owned(parts, &raw))
    }

    /// Opens a container by memory-mapping it: the vector block is
    /// served straight from the page cache ([`dataset::StorageKind::Mapped`]),
    /// so restart cost is O(page faults), not O(bytes copied). Falls
    /// back to the owned [`Snapshot::read_from`] path — byte-identical
    /// results — when mapping is unsupported (non-unix), the file is
    /// legacy v1 (unaligned vector block), or the container is live.
    pub fn open_mapped(path: &Path) -> Result<Snapshot, SnapError> {
        let file = fs::File::open(path)?;
        match mm::map_file(&file) {
            Ok(map) => {
                let parts = parse(&map)?;
                if parts.zero_copy && parts.live.is_none() {
                    let (off, count) = (parts.vec_off, parts.n * parts.dim);
                    match mm::FloatBlock::from_mmap(map, off, count) {
                        Ok(block) => Ok(assemble_shared(parts, Arc::new(block))),
                        Err(map) => Ok(assemble_owned(parts, &map)),
                    }
                } else {
                    Ok(assemble_owned(parts, &map))
                }
            }
            Err(mm::MapError::Unsupported | mm::MapError::Empty) => Snapshot::read_from(path),
            Err(mm::MapError::Io(e)) => Err(SnapError::Io(e)),
        }
    }

    /// Writes the container to `path` atomically (tmp file + rename, so a
    /// crashed writer never leaves a half-written `.snap` for `annd`).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapError> {
        write_bytes_atomic(path, &self.encode()?)
    }

    /// Reads a container from disk. The read buffer is handed to
    /// [`Snapshot::decode_owned`], so v3 vector blocks are sliced out
    /// of it in place rather than copied a second time.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapError> {
        Snapshot::decode_owned(fs::read(path)?)
    }
}

/// Everything [`parse`] pulls out of a container except the vector
/// block itself, which stays behind as its byte offset so each caller
/// can choose the backing (copy, adopted buffer, or mapping).
struct Parsed {
    name: String,
    method: String,
    n: usize,
    dim: usize,
    /// Absolute byte offset of the vector block in the raw input.
    vec_off: usize,
    /// v3 container: the vector block offset is 8-aligned by layout.
    zero_copy: bool,
    payload: Vec<u8>,
    sq8: Option<Arc<Sq8>>,
    meta: Option<SnapMeta>,
    live: Option<LiveState>,
    calibration: Option<plan::CalibrationTable>,
}

/// The shared v1/v3 container parser behind every decode entry point.
fn parse(raw: &[u8]) -> Result<Parsed, SnapError> {
    let mut r = crate::wire::Reader::new(raw);
    let magic = ctx(r.take(MAGIC.len()), "magic")?;
    let v3 = magic == MAGIC;
    if !v3 && magic != MAGIC_V1 {
        return Err(SnapError::Malformed("not an ANNSNP01/ANNSNP03 container".into()));
    }
    let name = get_str16(&mut r, "name")?;
    let method = get_str16(&mut r, "method")?;
    let n = ctx(r.u64(), "vector count")?;
    let dim = ctx(r.u32(), "dim")?;
    if n == 0 || dim == 0 {
        return Err(SnapError::Malformed(format!("empty shape {n}x{dim}")));
    }
    let vec_bytes = n
        .checked_mul(u64::from(dim))
        .and_then(|c| c.checked_mul(4))
        .filter(|&b| b <= MAX_VECTOR_BYTES)
        .ok_or_else(|| SnapError::Malformed(format!("vector section {n}x{dim} too large")))?;
    if v3 {
        let declared = ctx(r.u64(), "vector block length")?;
        if declared != vec_bytes {
            return Err(SnapError::Malformed(format!(
                "vector block length {declared} disagrees with shape {n}x{dim}"
            )));
        }
        skip_pad8(&mut r, raw.len(), "vector block padding")?;
    }
    let vec_off = raw.len() - r.remaining();
    let vec_raw = ctx(r.take(vec_bytes as usize), "vector section")?;
    if v3 {
        skip_pad8(&mut r, raw.len(), "payload padding")?;
    }
    let payload_len = ctx(r.u64(), "payload length")?;
    let payload = ctx(r.take(payload_len as usize), "payload")?.to_vec();
    // Optional trailing sections: absent on old containers (clean EOF
    // here), each present at most once as marker + length + body.
    // Pre-META (PR-2) files end after the payload; pre-LIVE (PR-3)
    // files end after META — both still decode.
    let mut sq8 = None;
    let mut meta = None;
    let mut live = None;
    let mut calibration = None;
    while r.remaining() > 0 {
        let marker = ctx(r.take(4), "section marker")?;
        let len = ctx(r.u32(), "section length")? as usize;
        let body = ctx(r.take(len), "section body")?;
        let mut sr = crate::wire::Reader::new(body);
        if marker == SQ8_MARKER {
            if sq8.is_some() {
                return Err(SnapError::Malformed("duplicate SQ8C section".into()));
            }
            sq8 = Some(parse_sq8_section(&mut sr, n as usize, dim as usize)?);
        } else if marker == META_MARKER {
            if meta.is_some() {
                return Err(SnapError::Malformed("duplicate META section".into()));
            }
            let spec = get_str16(&mut sr, "meta spec")?;
            let w = ctx(sr.f64(), "meta w")?;
            let seed = ctx(sr.u64(), "meta seed")?;
            let build_secs = ctx(sr.f64(), "meta build_secs")?;
            let source_rows = ctx(sr.u64(), "meta source_rows")?;
            meta = Some(SnapMeta { spec, w, seed, build_secs, source_rows });
        } else if marker == LIVE_MARKER {
            if live.is_some() {
                return Err(SnapError::Malformed("duplicate LIVE section".into()));
            }
            // Live rows are re-assembled into per-unit owned buffers, so
            // the section parser gets a decoded copy of the block.
            let flat = read_f32s(vec_raw);
            live = Some(parse_live_section(&mut sr, &flat, dim as usize)?);
        } else if marker == CAL_MARKER {
            if calibration.is_some() {
                return Err(SnapError::Malformed("duplicate CALB section".into()));
            }
            // The table codec validates the whole body itself (magic,
            // version, point ranges, trailing bytes).
            calibration = Some(
                plan::CalibrationTable::decode(body)
                    .map_err(|e| SnapError::Malformed(format!("CALB section: {e}")))?,
            );
            ctx(sr.take(len), "CALB body")?;
        } else {
            return Err(SnapError::Malformed(format!(
                "unknown trailing section marker {marker:?}"
            )));
        }
        if sr.remaining() != 0 {
            return Err(SnapError::Malformed(format!(
                "{} trailing bytes inside {}",
                sr.remaining(),
                String::from_utf8_lossy(marker)
            )));
        }
    }
    Ok(Parsed {
        name,
        method,
        n: n as usize,
        dim: dim as usize,
        vec_off,
        zero_copy: v3,
        payload,
        sq8,
        meta,
        live,
        calibration,
    })
}

/// Decodes little-endian f32 bytes into an owned buffer (bit-exact).
fn read_f32s(raw: &[u8]) -> Vec<f32> {
    raw.chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
        .collect()
}

/// Parses the SQ8C section body, validating its shape against the
/// container's vector block.
fn parse_sq8_section(
    sr: &mut crate::wire::Reader,
    n: usize,
    dim: usize,
) -> Result<Arc<Sq8>, SnapError> {
    let flags = ctx(sr.u8(), "sq8 flags")?;
    if flags & !1 != 0 {
        return Err(SnapError::Malformed(format!("unknown sq8 flags {flags:#x}")));
    }
    let sq_dim = ctx(sr.u32(), "sq8 dim")? as usize;
    let sq_rows = ctx(sr.u64(), "sq8 rows")? as usize;
    if sq_dim != dim || sq_rows != n {
        return Err(SnapError::Malformed(format!(
            "sq8 shape {sq_rows}x{sq_dim} disagrees with the vector block {n}x{dim}"
        )));
    }
    let mins = ctx(sr.f32s(dim), "sq8 mins")?;
    let scales = ctx(sr.f32s(dim), "sq8 scales")?;
    let codes = ctx(sr.take(n * dim), "sq8 codes")?.to_vec();
    Ok(Arc::new(Sq8::from_parts(dim, mins, scales, codes, flags & 1 != 0)))
}

/// Materializes a [`Snapshot`] by copying the vector block out of the
/// raw input (the v1 path, and every fallback).
fn assemble_owned(parts: Parsed, raw: &[u8]) -> Snapshot {
    let flat = read_f32s(&raw[parts.vec_off..parts.vec_off + parts.n * parts.dim * 4]);
    let data = Dataset::from_flat(parts.name.clone(), parts.dim, flat);
    finish(parts, data)
}

/// Materializes a [`Snapshot`] over a zero-copy backing (an adopted
/// read buffer or a file mapping).
fn assemble_shared(parts: Parsed, block: Arc<mm::FloatBlock>) -> Snapshot {
    let data = Dataset::from_shared(parts.name.clone(), parts.dim, block);
    finish(parts, data)
}

fn finish(parts: Parsed, data: Dataset) -> Snapshot {
    if let Some(sq) = parts.sq8 {
        data.set_sq8(sq);
    }
    Snapshot {
        name: parts.name,
        method: parts.method,
        data,
        payload: parts.payload,
        meta: parts.meta,
        live: parts.live,
        calibration: parts.calibration,
    }
}

/// Snapshots `index` into `dir/<name>.snap` and returns the path written.
/// `meta` attaches build provenance when the originating spec is known.
pub fn write_index_snapshot(
    dir: &Path,
    name: &str,
    index: &dyn PersistAnn,
    data: &Dataset,
    meta: Option<SnapMeta>,
) -> Result<PathBuf, SnapError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    let bytes = encode_parts(
        name,
        index.name(),
        data,
        &index.snapshot_bytes(),
        meta.as_ref(),
        None,
        None,
    )?;
    write_bytes_atomic(&path, &bytes)?;
    Ok(path)
}

/// Attaches (or replaces) a recall-calibration table on an existing
/// snapshot file: the container is decoded, its CALB section swapped
/// for `table`, and the file rewritten atomically. Everything else —
/// vectors, payload, SQ8C, META, LIVE — round-trips through the
/// decoder unchanged.
pub fn attach_calibration(
    path: &Path,
    table: &plan::CalibrationTable,
) -> Result<(), SnapError> {
    let mut snap = Snapshot::read_from(path)?;
    snap.calibration = Some(table.clone());
    snap.write_to(path)
}

/// A built snapshot fully written to a unique temp file, awaiting an
/// atomic [`StagedSnapshot::commit`] (a rename) into its final name.
///
/// The split lets `annd`'s BUILD do the expensive encode + write +
/// fsync without holding the catalog lock, then commit the rename and
/// the catalog install together under it — so concurrent BUILDs of the
/// same name can never leave disk and catalog naming different indexes.
pub struct StagedSnapshot {
    tmp: PathBuf,
    path: PathBuf,
}

impl StagedSnapshot {
    /// Renames the staged file into place, returning the final path.
    pub fn commit(self) -> Result<PathBuf, SnapError> {
        fs::rename(&self.tmp, &self.path)?;
        Ok(self.path)
    }

    /// Discards the staged file.
    pub fn abort(self) {
        fs::remove_file(&self.tmp).ok();
    }
}

/// Encodes and writes a freshly built index's container to a unique
/// temp file in `dir` — payload captured by
/// `eval::registry::build_index_persist`, provenance from the spec, and
/// no dataset clone (the vectors are streamed straight from `data`).
pub fn stage_built_snapshot(
    dir: &Path,
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: &SnapMeta,
) -> Result<StagedSnapshot, SnapError> {
    let bytes = encode_parts(name, method, data, payload, Some(meta), None, None)?;
    stage_bytes(dir, name, &bytes)
}

/// The base vector block of a live container: every unit's physical
/// rows, segments first, memtable last. An index with zero physical
/// rows cannot be containerized.
fn live_base_block(name: &str, state: &LiveState) -> Result<Dataset, SnapError> {
    if state.total_rows() == 0 {
        return Err(SnapError::Malformed("live index holds no rows".into()));
    }
    let mut flat = Vec::with_capacity(state.total_rows() * state.dim);
    for unit in state.segments.iter().chain(std::iter::once(&state.memtable)) {
        flat.extend_from_slice(&unit.rows);
    }
    Ok(Dataset::from_flat(name, state.dim, flat))
}

/// Encodes and stages a *live* index's container — base vector block plus
/// the LIVE structure section — for the FLUSH command and live BUILDs.
/// Same staged-commit discipline as [`stage_built_snapshot`]. Encodes
/// straight from the borrowed state (no [`Snapshot`] intermediary: that
/// would deep-clone every row a second time just to drop it).
pub fn stage_live_snapshot(
    dir: &Path,
    name: &str,
    state: &LiveState,
    meta: &SnapMeta,
    calibration: Option<&plan::CalibrationTable>,
) -> Result<StagedSnapshot, SnapError> {
    let data = live_base_block(name, state)?;
    let bytes = encode_parts(
        name,
        ann_live::LIVE_METHOD,
        &data,
        &[],
        Some(meta),
        Some(state),
        calibration,
    )?;
    stage_bytes(dir, name, &bytes)
}

fn stage_bytes(dir: &Path, name: &str, bytes: &[u8]) -> Result<StagedSnapshot, SnapError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static STAGE_TAG: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    // Unique per staging call, so concurrent builders of the same name
    // never clobber each other's half-written temp file. The extension
    // is not `.snap`, so `load_dir` ignores stragglers.
    let tag = STAGE_TAG.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("{name}.snap-stage-{}-{tag}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    Ok(StagedSnapshot { tmp, path })
}

/// [`stage_built_snapshot`] + immediate commit, for offline writers
/// (`ann-cli demo`) with no catalog to synchronize with.
pub fn write_built_snapshot(
    dir: &Path,
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: &SnapMeta,
) -> Result<PathBuf, SnapError> {
    stage_built_snapshot(dir, name, method, data, payload, meta)?.commit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams};
    use std::sync::Arc;

    fn built() -> (Arc<Dataset>, LccsLsh) {
        let data = Arc::new(SynthSpec::new("snap", 200, 12).with_clusters(4).generate(5));
        let idx = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(8),
        );
        (data, idx)
    }

    #[test]
    fn container_round_trips_bit_exactly() {
        let (data, idx) = built();
        let snap = Snapshot::of_index("demo", &idx, &data);
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.name, "demo");
        assert_eq!(back.method, "LCCS-LSH");
        assert_eq!(back.data.as_flat(), data.as_flat());
        assert_eq!(back.payload, snap.payload);
        assert_eq!(back.meta, None, "of_index attaches no provenance");
    }

    #[test]
    fn meta_section_round_trips() {
        let (data, idx) = built();
        let spec: ann::IndexSpec = "lccs:m=8,w=8,seed=42".parse().unwrap();
        let meta = SnapMeta::of_build(&spec, 1.25, data.len() as u64);
        let snap = Snapshot::of_index("demo", &idx, &data).with_meta(meta.clone());
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        let got = back.meta.expect("meta survives");
        assert_eq!(got, meta);
        assert_eq!(got.spec, "lccs:m=8,w=8,seed=42");
        assert_eq!(got.w, 8.0);
        assert_eq!(got.seed, 42);
        assert_eq!(got.source_rows, 200);
    }

    /// Byte-for-byte reproduction of the legacy v1 encoding (magic
    /// `ANNSNP01`, no length prefix, no pads, no SQ8C) — what every
    /// pre-v3 writer produced. Kept as a fixture so compatibility is
    /// tested against the real old layout, not today's encoder.
    fn encode_v1_legacy(
        name: &str,
        method: &str,
        data: &Dataset,
        payload: &[u8],
        meta: Option<&SnapMeta>,
    ) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        crate::wire::put_str16(&mut out, name);
        crate::wire::put_str16(&mut out, method);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(data.dim() as u32).to_le_bytes());
        for v in data.as_flat() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        if let Some(meta) = meta {
            let mut section = Vec::new();
            crate::wire::put_str16(&mut section, &meta.spec);
            section.extend_from_slice(&meta.w.to_bits().to_le_bytes());
            section.extend_from_slice(&meta.seed.to_le_bytes());
            section.extend_from_slice(&meta.build_secs.to_bits().to_le_bytes());
            section.extend_from_slice(&meta.source_rows.to_le_bytes());
            push_section(&mut out, META_MARKER, &section);
        }
        out
    }

    #[test]
    fn pre_v3_containers_still_load() {
        // Legacy v1 files (and v2: v1 + META) must keep decoding into
        // exactly what today's v3 decoding of the same index yields —
        // modulo the physical backing, which legacy files can't share.
        let (data, idx) = built();
        let snap = Snapshot::of_index("old", &idx, &data);
        let v1 = encode_v1_legacy("old", &snap.method, &data, &snap.payload, None);
        let back = Snapshot::decode(&v1).unwrap();
        assert_eq!(back.name, "old");
        assert_eq!(back.method, snap.method);
        assert_eq!(back.data.as_flat(), data.as_flat(), "vectors bit-identical");
        assert_eq!(back.payload, snap.payload);
        assert!(back.meta.is_none(), "pre-v2 snapshots have no spec");
        assert!(
            back.data.sq8_if_built().is_none(),
            "legacy files carry no code table"
        );
        // v2 = v1 + META.
        let spec: ann::IndexSpec = "lccs:m=8,w=8,seed=42".parse().unwrap();
        let meta = SnapMeta::of_build(&spec, 1.0, data.len() as u64);
        let v2 = encode_v1_legacy("old", &snap.method, &data, &snap.payload, Some(&meta));
        let back = Snapshot::decode(&v2).unwrap();
        assert_eq!(back.meta, Some(meta));
        assert_eq!(back.data.as_flat(), data.as_flat());
    }

    #[test]
    fn v3_and_v1_decodes_agree() {
        // Cross-load: the same index written as v3 and as legacy v1
        // decodes to identical logical content through every entry
        // point (decode borrows, decode_owned adopts the buffer).
        let (data, idx) = built();
        let spec: ann::IndexSpec = "lccs:m=8,w=8,seed=42".parse().unwrap();
        let meta = SnapMeta::of_build(&spec, 0.5, data.len() as u64);
        let snap = Snapshot::of_index("x", &idx, &data).with_meta(meta.clone());
        let v3 = snap.encode().unwrap();
        let v1 = encode_v1_legacy("x", &snap.method, &data, &snap.payload, Some(&meta));
        let a = Snapshot::decode(&v3).unwrap();
        let b = Snapshot::decode(&v1).unwrap();
        let c = Snapshot::decode_owned(v3.clone()).unwrap();
        let d = Snapshot::decode_owned(v1).unwrap();
        for other in [&b, &c, &d] {
            assert_eq!(a.data, other.data, "logical dataset equality");
            assert_eq!(a.payload, other.payload);
            assert_eq!(a.meta, other.meta);
        }
        use dataset::StorageKind;
        assert_eq!(a.data.storage(), StorageKind::Owned, "borrowed decode copies");
        assert_eq!(d.data.storage(), StorageKind::Owned, "v1 always copies");
        // decode_owned of a v3 buffer slices in place when the buffer
        // happens to be f32-aligned (1-aligned heap buffers fall back).
        assert!(matches!(
            c.data.storage(),
            StorageKind::SharedBytes | StorageKind::Owned
        ));
    }

    #[test]
    fn v3_layout_is_aligned_and_sq8_round_trips() {
        let (data, idx) = built();
        data.sq8(); // prime the code table so encode persists it
        let raw = Snapshot::of_index("demo", &idx, &data).encode().unwrap();
        assert_eq!(&raw[..8], MAGIC);
        // The vector block offset is 8-aligned: magic 8 + name (2+4) +
        // method (2+8) + n 8 + dim 4 + vec_len 8 = 44, padded to 48.
        let hdr = 8 + (2 + 4) + (2 + "LCCS-LSH".len()) + 8 + 4 + 8;
        let vec_off = hdr.div_ceil(8) * 8;
        assert_eq!(raw[hdr..vec_off], vec![0u8; vec_off - hdr][..], "zero fill");
        assert_eq!(
            f32::from_bits(u32::from_le_bytes(raw[vec_off..vec_off + 4].try_into().unwrap())),
            data.as_flat()[0],
            "vector block starts at the aligned offset"
        );
        let back = Snapshot::decode(&raw).unwrap();
        let sq = back.data.sq8_if_built().expect("SQ8C section restores the code table");
        assert_eq!(sq.as_ref(), data.sq8().as_ref(), "codes bit-identical");
        // Corrupting the SQ8C shape is rejected, not mis-restored.
        let marker_at = raw
            .windows(4)
            .position(|w| w == SQ8_MARKER)
            .expect("SQ8C section present");
        let mut bad = raw.clone();
        bad[marker_at + 8 + 1..marker_at + 8 + 5].copy_from_slice(&999u32.to_le_bytes());
        assert!(Snapshot::decode(&bad).is_err(), "sq8 dim mismatch rejected");
    }

    #[test]
    fn open_mapped_serves_without_copying() {
        let (data, idx) = built();
        data.sq8();
        let dir = std::env::temp_dir().join(format!("snapmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.snap");
        Snapshot::of_index("demo", &idx, &data).write_to(&path).unwrap();
        let snap = Snapshot::open_mapped(&path).unwrap();
        if cfg!(unix) {
            assert_eq!(
                snap.data.storage(),
                dataset::StorageKind::Mapped,
                "v3 + unix must serve from the mapping"
            );
        }
        assert_eq!(snap.data.as_flat(), data.as_flat(), "mapped reads are bit-identical");
        assert!(snap.data.sq8_if_built().is_some());
        // A legacy v1 file falls back to the owned path, same content.
        let v1_path = dir.join("old.snap");
        let v1 = encode_v1_legacy("demo", &snap.method, &data, &snap.payload, None);
        std::fs::write(&v1_path, &v1).unwrap();
        let old = Snapshot::open_mapped(&v1_path).unwrap();
        assert_eq!(old.data.storage(), dataset::StorageKind::Owned);
        assert_eq!(old.data.as_flat(), data.as_flat());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_meta_sections_are_rejected() {
        let (data, idx) = built();
        let spec: ann::IndexSpec = "lccs:m=8".parse().unwrap();
        let good = Snapshot::of_index("demo", &idx, &data)
            .with_meta(SnapMeta::of_build(&spec, 0.5, 200))
            .encode()
            .unwrap();
        // Any truncation inside the meta section fails cleanly.
        for cut in 1..41 {
            assert!(Snapshot::decode(&good[..good.len() - cut]).is_err(), "cut {cut}");
        }
        // A wrong marker is not silently skipped.
        let mut bad = good.clone();
        let marker_at = good.len() - 8 - 4 - (2 + spec.to_string().len()) - 8 - 8 - 8 - 4;
        bad[marker_at] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        // Trailing garbage after the section is rejected.
        let mut bad = good;
        bad.push(0);
        assert!(Snapshot::decode(&bad).is_err());
    }

    fn cal_table() -> plan::CalibrationTable {
        plan::CalibrationTable {
            sample_queries: 64,
            k: 10,
            rows: 200,
            built_unix: 1_700_000_000,
            stale: false,
            points: vec![
                plan::CalPoint { budget: 32, probes: 0, recall: 0.71, micros: 90 },
                plan::CalPoint { budget: 64, probes: 4, recall: 0.93, micros: 240 },
                plan::CalPoint { budget: 128, probes: 8, recall: 0.99, micros: 610 },
            ],
        }
    }

    #[test]
    fn calibration_section_round_trips_and_is_optional() {
        let (data, idx) = built();
        let mut snap = Snapshot::of_index("demo", &idx, &data);
        // Uncalibrated containers carry no CALB section at all — the
        // encoding is byte-identical to the pre-calibration layout.
        let plain = snap.encode().unwrap();
        assert!(!plain.windows(4).any(|w| w == CAL_MARKER));
        assert!(Snapshot::decode(&plain).unwrap().calibration.is_none());
        let table = cal_table();
        snap.calibration = Some(table.clone());
        let raw = snap.encode().unwrap();
        let back = Snapshot::decode(&raw).unwrap();
        assert_eq!(back.calibration, Some(table.clone()));
        assert_eq!(back.data.as_flat(), data.as_flat());
        // Truncations inside the CALB section fail cleanly.
        for cut in 1..30 {
            assert!(Snapshot::decode(&raw[..raw.len() - cut]).is_err(), "cut {cut}");
        }
        // A corrupted table body (bad CALT magic) is rejected, not skipped.
        let calb_at = raw.windows(4).position(|w| w == CAL_MARKER).unwrap();
        let mut bad = raw.clone();
        bad[calb_at + 8] = b'X'; // first body byte = table magic
        match Snapshot::decode(&bad) {
            Err(SnapError::Malformed(m)) => assert!(m.contains("CALB"), "{m}"),
            other => panic!("bad table accepted: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn attach_calibration_swaps_the_section_in_place() {
        let (data, idx) = built();
        let dir = std::env::temp_dir().join(format!("snapcal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.snap");
        let spec: ann::IndexSpec = "lccs:m=8,w=8,seed=42".parse().unwrap();
        let meta = SnapMeta::of_build(&spec, 0.5, data.len() as u64);
        data.sq8();
        Snapshot::of_index("demo", &idx, &data)
            .with_meta(meta.clone())
            .write_to(&path)
            .unwrap();
        let table = cal_table();
        attach_calibration(&path, &table).unwrap();
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.calibration, Some(table));
        assert_eq!(back.meta, Some(meta), "META survives the rewrite");
        assert!(back.data.sq8_if_built().is_some(), "SQ8C survives the rewrite");
        assert_eq!(back.data.as_flat(), data.as_flat());
        // Attaching again replaces, never duplicates, the section.
        let mut newer = cal_table();
        newer.stale = true;
        newer.built_unix += 60;
        attach_calibration(&path, &newer).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(raw.windows(4).filter(|w| *w == CAL_MARKER).count(), 1);
        assert_eq!(Snapshot::decode(&raw).unwrap().calibration, Some(newer));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let (data, idx) = built();
        let good = Snapshot::of_index("demo", &idx, &data).encode().unwrap();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        // Truncations anywhere fail cleanly.
        for cut in [0usize, 7, 12, good.len() / 2, good.len() - 1] {
            assert!(Snapshot::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(7);
        assert!(Snapshot::decode(&bad).is_err());
        // Absurd declared shape is rejected before allocation.
        let mut bad = good.clone();
        let shape_off = 8 + 2 + 4 + 2 + "LCCS-LSH".len(); // magic + name + method
        bad[shape_off..shape_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::decode(&bad).is_err());
    }

    #[test]
    fn live_section_round_trips() {
        use ann::MutableAnn;
        use ann_live::{LiveConfig, LiveIndex};
        let data = SynthSpec::new("live", 60, 8).with_clusters(4).generate(11);
        let mut live = LiveIndex::build_from(
            "lccs:m=8,w=8,seed=3".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig { seal_threshold: 100, max_segments: 4 },
        )
        .unwrap();
        live.insert(&SynthSpec::new("extra", 5, 8).generate(12), None).unwrap();
        live.delete(&[2, 61]);
        let state = live.state();
        let snap = Snapshot::of_live("demo-live", &state).unwrap();
        assert_eq!(snap.method, ann_live::LIVE_METHOD);
        assert_eq!(snap.data.len(), 65, "base block holds every physical row");
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.name, "demo-live");
        assert_eq!(back.method, ann_live::LIVE_METHOD);
        assert!(back.payload.is_empty());
        let got = back.live.expect("LIVE section survives");
        assert_eq!(got, state, "state round-trips exactly");
        // And the reassembled index answers like the original.
        let rebuilt = LiveIndex::from_state(got).unwrap();
        let p = ann::SearchParams::new(5, 64);
        use ann::AnnIndex;
        for i in [0usize, 30, 59] {
            assert_eq!(rebuilt.query(data.get(i), &p), live.query(data.get(i), &p));
        }
    }

    #[test]
    fn corrupt_live_sections_are_rejected() {
        use ann::MutableAnn;
        use ann_live::{LiveConfig, LiveIndex};
        let data = SynthSpec::new("live", 30, 6).generate(13);
        let mut live = LiveIndex::build_from(
            "linear".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig { seal_threshold: 100, max_segments: 4 },
        )
        .unwrap();
        live.delete(&[7]);
        let state = live.state();
        let good = Snapshot::of_live("x", &state).unwrap().encode().unwrap();
        assert!(Snapshot::decode(&good).is_ok());
        // Truncations anywhere inside the section fail cleanly.
        for cut in 1..60 {
            assert!(Snapshot::decode(&good[..good.len() - cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage after the section is rejected.
        let mut bad = good.clone();
        bad.extend_from_slice(b"junk");
        assert!(Snapshot::decode(&bad).is_err());
        // An empty live index cannot be containerized at all.
        let empty = LiveIndex::new(
            "linear".parse().unwrap(),
            Metric::Euclidean,
            6,
            LiveConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            Snapshot::of_live("x", &empty.state()),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn write_read_disk_round_trip() {
        let (data, idx) = built();
        let dir = std::env::temp_dir().join(format!("snaptest-{}", std::process::id()));
        let path = write_index_snapshot(&dir, "demo", &idx, &data, None).unwrap();
        assert!(path.ends_with("demo.snap"));
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.method, "LCCS-LSH");
        std::fs::remove_dir_all(&dir).ok();
    }
}
