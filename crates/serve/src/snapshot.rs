//! The on-disk snapshot container `annd` serves from.
//!
//! A snapshot file bundles everything a serving process needs to answer
//! queries for one index without rebuilding anything: the catalog name,
//! the method name (which selects the restorer in
//! [`eval::registry::snapshot_entries`]), the raw vectors, and the
//! method's own [`ann::PersistAnn`] payload (parameters + CSA). Layout,
//! all little-endian:
//!
//! ```text
//! magic    b"ANNSNP01"                    8 bytes
//! name     u16 length + UTF-8 bytes       catalog name
//! method   u16 length + UTF-8 bytes       e.g. "LCCS-LSH"
//! n        u64                            vector count
//! dim      u32                            dimensionality
//! vectors  n * dim * f32                  row-major raw bits
//! payload  u64 length + bytes             PersistAnn payload
//! ```
//!
//! Snapshot files use the `.snap` extension; a snapshot directory is just
//! a flat directory of them, loaded in name order by
//! [`crate::catalog::Catalog::load_dir`].

use ann::PersistAnn;
use dataset::Dataset;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic + version prefix of a snapshot container.
pub const MAGIC: &[u8; 8] = b"ANNSNP01";

/// Extension of snapshot files inside a `--snapshot-dir`.
pub const SNAPSHOT_EXT: &str = "snap";

/// Cap on the declared vector payload (guards against a corrupted header
/// making the loader allocate terabytes): 1 GiB of f32s.
const MAX_VECTOR_BYTES: u64 = 1 << 30;

/// Errors raised while reading or writing snapshot containers.
#[derive(Debug)]
pub enum SnapError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The container is structurally broken (message explains what).
    Malformed(String),
    /// The container decoded, but the index payload could not be restored.
    Restore(eval::registry::RestoreError),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapError::Restore(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// A decoded (but not yet restored) snapshot container.
pub struct Snapshot {
    /// Catalog name the index is served under.
    pub name: String,
    /// Method name selecting the restorer (e.g. `"MP-LCCS-LSH"`).
    pub method: String,
    /// The raw vectors the index was built over.
    pub data: Dataset,
    /// The method's [`PersistAnn`] payload.
    pub payload: Vec<u8>,
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), SnapError> {
    if s.is_empty() || s.len() > u16::MAX as usize {
        return Err(SnapError::Malformed(format!("bad name length {}", s.len())));
    }
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Maps a [`wire::Short`] underrun onto a contextual decode error.
fn ctx<T>(res: Result<T, crate::wire::Short>, what: &str) -> Result<T, SnapError> {
    res.map_err(|_| SnapError::Malformed(format!("truncated in {what}")))
}

fn get_str16(r: &mut crate::wire::Reader, what: &str) -> Result<String, SnapError> {
    let len = ctx(r.u16(), what)? as usize;
    if len == 0 {
        return Err(SnapError::Malformed(format!("empty {what}")));
    }
    String::from_utf8(ctx(r.take(len), what)?.to_vec())
        .map_err(|_| SnapError::Malformed(format!("{what} is not UTF-8")))
}

impl Snapshot {
    /// Builds a container from a built index and its dataset. The method
    /// name is taken from [`ann::AnnIndex::name`].
    pub fn of_index(name: &str, index: &dyn PersistAnn, data: &Dataset) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            method: index.name().to_string(),
            data: data.clone(),
            payload: index.snapshot_bytes(),
        }
    }

    /// Serializes the container.
    pub fn encode(&self) -> Result<Vec<u8>, SnapError> {
        let flat = self.data.as_flat();
        let mut out = Vec::with_capacity(64 + flat.len() * 4 + self.payload.len());
        out.extend_from_slice(MAGIC);
        put_str16(&mut out, &self.name)?;
        put_str16(&mut out, &self.method)?;
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.data.dim() as u32).to_le_bytes());
        for v in flat {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Decodes a container produced by [`Snapshot::encode`].
    pub fn decode(raw: &[u8]) -> Result<Snapshot, SnapError> {
        let mut r = crate::wire::Reader::new(raw);
        if ctx(r.take(MAGIC.len()), "magic")? != MAGIC {
            return Err(SnapError::Malformed("not an ANNSNP01 container".into()));
        }
        let name = get_str16(&mut r, "name")?;
        let method = get_str16(&mut r, "method")?;
        let n = ctx(r.u64(), "vector count")?;
        let dim = ctx(r.u32(), "dim")?;
        if n == 0 || dim == 0 {
            return Err(SnapError::Malformed(format!("empty shape {n}x{dim}")));
        }
        n.checked_mul(u64::from(dim))
            .and_then(|c| c.checked_mul(4))
            .filter(|&b| b <= MAX_VECTOR_BYTES)
            .ok_or_else(|| SnapError::Malformed(format!("vector section {n}x{dim} too large")))?;
        let flat = ctx(r.f32s((n * u64::from(dim)) as usize), "vector section")?;
        let payload_len = ctx(r.u64(), "payload length")?;
        let payload = ctx(r.take(payload_len as usize), "payload")?.to_vec();
        if r.remaining() != 0 {
            return Err(SnapError::Malformed(format!("{} trailing bytes", r.remaining())));
        }
        let data = Dataset::from_flat(name.clone(), dim as usize, flat);
        Ok(Snapshot { name, method, data, payload })
    }

    /// Writes the container to `path` atomically (tmp file + rename, so a
    /// crashed writer never leaves a half-written `.snap` for `annd`).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapError> {
        let bytes = self.encode()?;
        let tmp = path.with_extension("snap.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a container from disk.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapError> {
        Snapshot::decode(&fs::read(path)?)
    }
}

/// Snapshots `index` into `dir/<name>.snap` and returns the path written.
pub fn write_index_snapshot(
    dir: &Path,
    name: &str,
    index: &dyn PersistAnn,
    data: &Dataset,
) -> Result<PathBuf, SnapError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    Snapshot::of_index(name, index, data).write_to(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams};
    use std::sync::Arc;

    fn built() -> (Arc<Dataset>, LccsLsh) {
        let data = Arc::new(SynthSpec::new("snap", 200, 12).with_clusters(4).generate(5));
        let idx = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(8),
        );
        (data, idx)
    }

    #[test]
    fn container_round_trips_bit_exactly() {
        let (data, idx) = built();
        let snap = Snapshot::of_index("demo", &idx, &data);
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.name, "demo");
        assert_eq!(back.method, "LCCS-LSH");
        assert_eq!(back.data.as_flat(), data.as_flat());
        assert_eq!(back.payload, snap.payload);
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let (data, idx) = built();
        let good = Snapshot::of_index("demo", &idx, &data).encode().unwrap();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        // Truncations anywhere fail cleanly.
        for cut in [0usize, 7, 12, good.len() / 2, good.len() - 1] {
            assert!(Snapshot::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(7);
        assert!(Snapshot::decode(&bad).is_err());
        // Absurd declared shape is rejected before allocation.
        let mut bad = good.clone();
        let shape_off = 8 + 2 + 4 + 2 + "LCCS-LSH".len(); // magic + name + method
        bad[shape_off..shape_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::decode(&bad).is_err());
    }

    #[test]
    fn write_read_disk_round_trip() {
        let (data, idx) = built();
        let dir = std::env::temp_dir().join(format!("snaptest-{}", std::process::id()));
        let path = write_index_snapshot(&dir, "demo", &idx, &data).unwrap();
        assert!(path.ends_with("demo.snap"));
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.method, "LCCS-LSH");
        std::fs::remove_dir_all(&dir).ok();
    }
}
