//! The on-disk snapshot container `annd` serves from.
//!
//! A snapshot file bundles everything a serving process needs to answer
//! queries for one index without rebuilding anything: the catalog name,
//! the method name (which selects the restorer in
//! [`eval::registry::snapshot_entries`]), the raw vectors, and the
//! method's own [`ann::PersistAnn`] payload (parameters + CSA). Layout,
//! all little-endian:
//!
//! ```text
//! magic    b"ANNSNP01"                    8 bytes
//! name     u16 length + UTF-8 bytes       catalog name
//! method   u16 length + UTF-8 bytes       e.g. "LCCS-LSH"
//! n        u64                            vector count
//! dim      u32                            dimensionality
//! vectors  n * dim * f32                  row-major raw bits
//! payload  u64 length + bytes             PersistAnn payload
//! meta     (optional) b"META" + u32 len   build provenance, see below
//! live     (optional) b"LIVE" + u32 len   mutable-index structure, see below
//! ```
//!
//! The trailing **meta section** (added in PR 3, backward compatible: a
//! container that ends after `payload` — everything written before the
//! section existed — still decodes, with [`Snapshot::meta`] `None`)
//! records where the index came from:
//!
//! ```text
//! spec        u16 length + UTF-8 bytes    canonical ann::spec grammar string
//! w           f64 bits                    bucket width used
//! seed        u64                         RNG seed used
//! build_secs  f64 bits                    indexing wall-clock seconds
//! source_rows u64                         rows of the source dataset
//! ```
//!
//! The **LIVE section** (PR 4, same back-compat story as META: older
//! containers without it decode with [`Snapshot::live`] `None`) makes a
//! mutable [`ann_live::LiveIndex`] restartable. For a live container the
//! base `vectors` block holds *every* physical row — each sealed
//! segment's rows (live **and** tombstoned: an LSH segment's answers
//! depend on every row it was built over), then the memtable's — and the
//! section maps structure onto that block:
//!
//! ```text
//! spec            u16 length + UTF-8      segment-build ann::spec string
//! metric          u16 length + UTF-8      metric name
//! dim             u32                     row dimensionality
//! seal_threshold  u64                     seal policy
//! max_segments    u64                     compaction policy
//! next_id         u32                     next auto-assigned external id
//! seg_count       u32
//! per unit (each segment, then the memtable):
//!   rows          u64                     row count (consumes the next
//!                                         rows × dim base vectors)
//!   ids           rows × u32              external id per slot
//!   dead          u32 count + count × u32 tombstoned slots
//! ```
//!
//! Segment *indexes* are not stored: each is rebuilt deterministically
//! from `(spec, rows, metric)` at load time — the spec carries the RNG
//! seed, so the reloaded index answers bit-identically (the serve e2e
//! test pins this across a daemon restart).
//!
//! Snapshot files use the `.snap` extension; a snapshot directory is just
//! a flat directory of them, loaded in name order by
//! [`crate::catalog::Catalog::load_dir`].

use ann::PersistAnn;
use ann_live::{LiveState, UnitState};
use dataset::{Dataset, Metric};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic + version prefix of a snapshot container.
pub const MAGIC: &[u8; 8] = b"ANNSNP01";

/// Extension of snapshot files inside a `--snapshot-dir`.
pub const SNAPSHOT_EXT: &str = "snap";

/// Cap on the declared vector payload (guards against a corrupted header
/// making the loader allocate terabytes): 1 GiB of f32s.
const MAX_VECTOR_BYTES: u64 = 1 << 30;

/// Errors raised while reading or writing snapshot containers.
#[derive(Debug)]
pub enum SnapError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The container is structurally broken (message explains what).
    Malformed(String),
    /// The container decoded, but the index payload could not be restored.
    Restore(eval::registry::RestoreError),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapError::Restore(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// Marker opening the optional build-provenance section.
pub const META_MARKER: &[u8; 4] = b"META";

/// Marker opening the optional live-index structure section.
pub const LIVE_MARKER: &[u8; 4] = b"LIVE";

/// Build provenance carried in the snapshot's optional meta section: the
/// originating [`ann::IndexSpec`] (as its canonical grammar string) plus
/// the measurements `describe` and LIST report.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapMeta {
    /// Canonical `ann::spec` grammar string (e.g. `mp-lccs:m=64,seed=7`).
    pub spec: String,
    /// Bucket width the build used.
    pub w: f64,
    /// RNG seed the build used.
    pub seed: u64,
    /// Indexing wall-clock seconds.
    pub build_secs: f64,
    /// Rows of the source dataset the index was built over.
    pub source_rows: u64,
}

impl SnapMeta {
    /// Provenance of a freshly built index: the spec supplies the string,
    /// `w` and `seed`; the caller supplies its measurements.
    pub fn of_build(spec: &ann::IndexSpec, build_secs: f64, source_rows: u64) -> SnapMeta {
        SnapMeta {
            spec: spec.to_string(),
            w: spec.build.w,
            seed: spec.build.seed,
            build_secs,
            source_rows,
        }
    }
}

/// A decoded (but not yet restored) snapshot container.
pub struct Snapshot {
    /// Catalog name the index is served under.
    pub name: String,
    /// Method name selecting the restorer (e.g. `"MP-LCCS-LSH"`, or
    /// [`ann_live::LIVE_METHOD`] for a mutable index).
    pub method: String,
    /// The raw vectors the index was built over (for a live container:
    /// every physical row, segments first, memtable last).
    pub data: Dataset,
    /// The method's [`PersistAnn`] payload (empty for live containers).
    pub payload: Vec<u8>,
    /// Build provenance; `None` for pre-meta (PR-2 era) containers.
    pub meta: Option<SnapMeta>,
    /// Live-index structure; `None` for frozen (static) containers.
    pub live: Option<LiveState>,
}

/// Container strings reject emptiness before handing off to the shared
/// [`crate::wire::put_str16`] framing.
fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), SnapError> {
    if s.is_empty() || s.len() > u16::MAX as usize {
        return Err(SnapError::Malformed(format!("bad name length {}", s.len())));
    }
    crate::wire::put_str16(out, s);
    Ok(())
}

/// Maps a [`wire::Short`] underrun onto a contextual decode error.
fn ctx<T>(res: Result<T, crate::wire::Short>, what: &str) -> Result<T, SnapError> {
    res.map_err(|_| SnapError::Malformed(format!("truncated in {what}")))
}

fn get_str16(r: &mut crate::wire::Reader, what: &str) -> Result<String, SnapError> {
    let raw = ctx(r.take16(), what)?;
    if raw.is_empty() {
        return Err(SnapError::Malformed(format!("empty {what}")));
    }
    String::from_utf8(raw.to_vec())
        .map_err(|_| SnapError::Malformed(format!("{what} is not UTF-8")))
}

/// The shared serializer behind [`Snapshot::encode`] and
/// [`write_built_snapshot`]: borrowing the dataset means the build path
/// never clones the vectors just to write them out.
fn encode_parts(
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: Option<&SnapMeta>,
    live: Option<&LiveState>,
) -> Result<Vec<u8>, SnapError> {
    let flat = data.as_flat();
    let mut out = Vec::with_capacity(64 + flat.len() * 4 + payload.len());
    out.extend_from_slice(MAGIC);
    put_str16(&mut out, name)?;
    put_str16(&mut out, method)?;
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(data.dim() as u32).to_le_bytes());
    for v in flat {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    if let Some(meta) = meta {
        let mut section = Vec::with_capacity(40 + meta.spec.len());
        put_str16(&mut section, &meta.spec)?;
        section.extend_from_slice(&meta.w.to_bits().to_le_bytes());
        section.extend_from_slice(&meta.seed.to_le_bytes());
        section.extend_from_slice(&meta.build_secs.to_bits().to_le_bytes());
        section.extend_from_slice(&meta.source_rows.to_le_bytes());
        push_section(&mut out, META_MARKER, &section);
    }
    if let Some(state) = live {
        let mut section = Vec::with_capacity(64 + state.total_rows() * 4);
        put_str16(&mut section, &state.spec.to_string())?;
        put_str16(&mut section, state.metric.name())?;
        section.extend_from_slice(&(state.dim as u32).to_le_bytes());
        section.extend_from_slice(&(state.config.seal_threshold as u64).to_le_bytes());
        section.extend_from_slice(&(state.config.max_segments as u64).to_le_bytes());
        section.extend_from_slice(&state.next_id.to_le_bytes());
        section.extend_from_slice(&(state.segments.len() as u32).to_le_bytes());
        for unit in state.segments.iter().chain(std::iter::once(&state.memtable)) {
            section.extend_from_slice(&(unit.ids.len() as u64).to_le_bytes());
            for id in &unit.ids {
                section.extend_from_slice(&id.to_le_bytes());
            }
            section.extend_from_slice(&(unit.dead.len() as u32).to_le_bytes());
            for slot in &unit.dead {
                section.extend_from_slice(&slot.to_le_bytes());
            }
        }
        push_section(&mut out, LIVE_MARKER, &section);
    }
    Ok(out)
}

fn push_section(out: &mut Vec<u8>, marker: &[u8; 4], section: &[u8]) {
    out.extend_from_slice(marker);
    out.extend_from_slice(&(section.len() as u32).to_le_bytes());
    out.extend_from_slice(section);
}

/// Parses the LIVE section body, slicing each unit's rows out of the
/// base vector block (`flat`, `dim`).
fn parse_live_section(
    sr: &mut crate::wire::Reader,
    flat: &[f32],
    dim: usize,
) -> Result<LiveState, SnapError> {
    let spec_text = get_str16(sr, "live spec")?;
    let spec = spec_text
        .parse()
        .map_err(|e| SnapError::Malformed(format!("live spec {spec_text:?}: {e}")))?;
    let metric_name = get_str16(sr, "live metric")?;
    let metric = Metric::from_name(&metric_name)
        .ok_or_else(|| SnapError::Malformed(format!("unknown live metric {metric_name:?}")))?;
    let live_dim = ctx(sr.u32(), "live dim")? as usize;
    if live_dim != dim {
        return Err(SnapError::Malformed(format!(
            "live dim {live_dim} disagrees with the vector block dim {dim}"
        )));
    }
    let seal_threshold = ctx(sr.u64(), "live seal_threshold")? as usize;
    let max_segments = ctx(sr.u64(), "live max_segments")? as usize;
    let next_id = ctx(sr.u32(), "live next_id")?;
    let total_rows = flat.len() / dim;
    let seg_count = ctx(sr.u32(), "live segment count")? as usize;
    if seg_count > total_rows {
        return Err(SnapError::Malformed(format!(
            "{seg_count} segments over {total_rows} rows"
        )));
    }
    let mut row_cursor = 0usize;
    let mut take_unit = |sr: &mut crate::wire::Reader, what: &str| -> Result<UnitState, SnapError> {
        let rows = ctx(sr.u64(), what)? as usize;
        if rows > total_rows - row_cursor {
            return Err(SnapError::Malformed(format!(
                "{what} declares {rows} rows, {} remain in the vector block",
                total_rows - row_cursor
            )));
        }
        let mut ids = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(ctx(sr.u32(), what)?);
        }
        let dead_count = ctx(sr.u32(), what)? as usize;
        if dead_count > rows {
            return Err(SnapError::Malformed(format!(
                "{what} declares {dead_count} dead slots over {rows} rows"
            )));
        }
        let mut dead = Vec::with_capacity(dead_count);
        for _ in 0..dead_count {
            dead.push(ctx(sr.u32(), what)?);
        }
        let unit_flat = flat[row_cursor * dim..(row_cursor + rows) * dim].to_vec();
        row_cursor += rows;
        Ok(UnitState { rows: unit_flat, ids, dead })
    };
    let mut segments = Vec::with_capacity(seg_count);
    for i in 0..seg_count {
        segments.push(take_unit(sr, &format!("live segment {i}"))?);
    }
    let memtable = take_unit(sr, "live memtable")?;
    if row_cursor != total_rows {
        return Err(SnapError::Malformed(format!(
            "LIVE section covers {row_cursor} of {total_rows} rows"
        )));
    }
    Ok(LiveState {
        spec,
        metric,
        dim,
        config: ann_live::LiveConfig { seal_threshold, max_segments },
        next_id,
        segments,
        memtable,
    })
}

/// Writes `bytes` to `path` atomically (tmp file + rename).
fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

impl Snapshot {
    /// Builds a container from a built index and its dataset. The method
    /// name is taken from [`ann::AnnIndex::name`]; no provenance is
    /// attached — chain [`Snapshot::with_meta`] when the spec is known.
    pub fn of_index(name: &str, index: &dyn PersistAnn, data: &Dataset) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            method: index.name().to_string(),
            data: data.clone(),
            payload: index.snapshot_bytes(),
            meta: None,
            live: None,
        }
    }

    /// Builds a live container from a [`LiveState`]
    /// ([`ann_live::LiveIndex::state`]): the base vector block is the
    /// concatenation of every unit's physical rows, the method is
    /// [`ann_live::LIVE_METHOD`], and the structure rides in the LIVE
    /// section. An index with zero physical rows cannot be containerized.
    pub fn of_live(name: &str, state: &LiveState) -> Result<Snapshot, SnapError> {
        Ok(Snapshot {
            name: name.to_string(),
            method: ann_live::LIVE_METHOD.to_string(),
            data: live_base_block(name, state)?,
            payload: Vec::new(),
            meta: None,
            live: Some(state.clone()),
        })
    }

    /// Attaches build provenance (written as the optional meta section).
    pub fn with_meta(mut self, meta: SnapMeta) -> Snapshot {
        self.meta = Some(meta);
        self
    }

    /// Serializes the container.
    pub fn encode(&self) -> Result<Vec<u8>, SnapError> {
        encode_parts(
            &self.name,
            &self.method,
            &self.data,
            &self.payload,
            self.meta.as_ref(),
            self.live.as_ref(),
        )
    }

    /// Decodes a container produced by [`Snapshot::encode`] — including
    /// pre-meta (PR-2 era) containers, which yield `meta: None`.
    pub fn decode(raw: &[u8]) -> Result<Snapshot, SnapError> {
        let mut r = crate::wire::Reader::new(raw);
        if ctx(r.take(MAGIC.len()), "magic")? != MAGIC {
            return Err(SnapError::Malformed("not an ANNSNP01 container".into()));
        }
        let name = get_str16(&mut r, "name")?;
        let method = get_str16(&mut r, "method")?;
        let n = ctx(r.u64(), "vector count")?;
        let dim = ctx(r.u32(), "dim")?;
        if n == 0 || dim == 0 {
            return Err(SnapError::Malformed(format!("empty shape {n}x{dim}")));
        }
        n.checked_mul(u64::from(dim))
            .and_then(|c| c.checked_mul(4))
            .filter(|&b| b <= MAX_VECTOR_BYTES)
            .ok_or_else(|| SnapError::Malformed(format!("vector section {n}x{dim} too large")))?;
        let flat = ctx(r.f32s((n * u64::from(dim)) as usize), "vector section")?;
        let payload_len = ctx(r.u64(), "payload length")?;
        let payload = ctx(r.take(payload_len as usize), "payload")?.to_vec();
        // Optional trailing sections: absent on old containers (clean EOF
        // here), each present at most once as marker + length + body.
        // Pre-META (PR-2) files end after the payload; pre-LIVE (PR-3)
        // files end after META — both still decode.
        let mut meta = None;
        let mut live = None;
        while r.remaining() > 0 {
            let marker = ctx(r.take(4), "section marker")?;
            let len = ctx(r.u32(), "section length")? as usize;
            let body = ctx(r.take(len), "section body")?;
            let mut sr = crate::wire::Reader::new(body);
            if marker == META_MARKER {
                if meta.is_some() {
                    return Err(SnapError::Malformed("duplicate META section".into()));
                }
                let spec = get_str16(&mut sr, "meta spec")?;
                let w = ctx(sr.f64(), "meta w")?;
                let seed = ctx(sr.u64(), "meta seed")?;
                let build_secs = ctx(sr.f64(), "meta build_secs")?;
                let source_rows = ctx(sr.u64(), "meta source_rows")?;
                if sr.remaining() != 0 {
                    return Err(SnapError::Malformed(format!(
                        "{} trailing bytes inside META",
                        sr.remaining()
                    )));
                }
                meta = Some(SnapMeta { spec, w, seed, build_secs, source_rows });
            } else if marker == LIVE_MARKER {
                if live.is_some() {
                    return Err(SnapError::Malformed("duplicate LIVE section".into()));
                }
                let state = parse_live_section(&mut sr, &flat, dim as usize)?;
                if sr.remaining() != 0 {
                    return Err(SnapError::Malformed(format!(
                        "{} trailing bytes inside LIVE",
                        sr.remaining()
                    )));
                }
                live = Some(state);
            } else {
                return Err(SnapError::Malformed(format!(
                    "unknown trailing section marker {marker:?}"
                )));
            }
        }
        let data = Dataset::from_flat(name.clone(), dim as usize, flat);
        Ok(Snapshot { name, method, data, payload, meta, live })
    }

    /// Writes the container to `path` atomically (tmp file + rename, so a
    /// crashed writer never leaves a half-written `.snap` for `annd`).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapError> {
        write_bytes_atomic(path, &self.encode()?)
    }

    /// Reads a container from disk.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapError> {
        Snapshot::decode(&fs::read(path)?)
    }
}

/// Snapshots `index` into `dir/<name>.snap` and returns the path written.
/// `meta` attaches build provenance when the originating spec is known.
pub fn write_index_snapshot(
    dir: &Path,
    name: &str,
    index: &dyn PersistAnn,
    data: &Dataset,
    meta: Option<SnapMeta>,
) -> Result<PathBuf, SnapError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    let bytes =
        encode_parts(name, index.name(), data, &index.snapshot_bytes(), meta.as_ref(), None)?;
    write_bytes_atomic(&path, &bytes)?;
    Ok(path)
}

/// A built snapshot fully written to a unique temp file, awaiting an
/// atomic [`StagedSnapshot::commit`] (a rename) into its final name.
///
/// The split lets `annd`'s BUILD do the expensive encode + write +
/// fsync without holding the catalog lock, then commit the rename and
/// the catalog install together under it — so concurrent BUILDs of the
/// same name can never leave disk and catalog naming different indexes.
pub struct StagedSnapshot {
    tmp: PathBuf,
    path: PathBuf,
}

impl StagedSnapshot {
    /// Renames the staged file into place, returning the final path.
    pub fn commit(self) -> Result<PathBuf, SnapError> {
        fs::rename(&self.tmp, &self.path)?;
        Ok(self.path)
    }

    /// Discards the staged file.
    pub fn abort(self) {
        fs::remove_file(&self.tmp).ok();
    }
}

/// Encodes and writes a freshly built index's container to a unique
/// temp file in `dir` — payload captured by
/// `eval::registry::build_index_persist`, provenance from the spec, and
/// no dataset clone (the vectors are streamed straight from `data`).
pub fn stage_built_snapshot(
    dir: &Path,
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: &SnapMeta,
) -> Result<StagedSnapshot, SnapError> {
    let bytes = encode_parts(name, method, data, payload, Some(meta), None)?;
    stage_bytes(dir, name, &bytes)
}

/// The base vector block of a live container: every unit's physical
/// rows, segments first, memtable last. An index with zero physical
/// rows cannot be containerized.
fn live_base_block(name: &str, state: &LiveState) -> Result<Dataset, SnapError> {
    if state.total_rows() == 0 {
        return Err(SnapError::Malformed("live index holds no rows".into()));
    }
    let mut flat = Vec::with_capacity(state.total_rows() * state.dim);
    for unit in state.segments.iter().chain(std::iter::once(&state.memtable)) {
        flat.extend_from_slice(&unit.rows);
    }
    Ok(Dataset::from_flat(name, state.dim, flat))
}

/// Encodes and stages a *live* index's container — base vector block plus
/// the LIVE structure section — for the FLUSH command and live BUILDs.
/// Same staged-commit discipline as [`stage_built_snapshot`]. Encodes
/// straight from the borrowed state (no [`Snapshot`] intermediary: that
/// would deep-clone every row a second time just to drop it).
pub fn stage_live_snapshot(
    dir: &Path,
    name: &str,
    state: &LiveState,
    meta: &SnapMeta,
) -> Result<StagedSnapshot, SnapError> {
    let data = live_base_block(name, state)?;
    let bytes =
        encode_parts(name, ann_live::LIVE_METHOD, &data, &[], Some(meta), Some(state))?;
    stage_bytes(dir, name, &bytes)
}

fn stage_bytes(dir: &Path, name: &str, bytes: &[u8]) -> Result<StagedSnapshot, SnapError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static STAGE_TAG: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    // Unique per staging call, so concurrent builders of the same name
    // never clobber each other's half-written temp file. The extension
    // is not `.snap`, so `load_dir` ignores stragglers.
    let tag = STAGE_TAG.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("{name}.snap-stage-{}-{tag}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    Ok(StagedSnapshot { tmp, path })
}

/// [`stage_built_snapshot`] + immediate commit, for offline writers
/// (`ann-cli demo`) with no catalog to synchronize with.
pub fn write_built_snapshot(
    dir: &Path,
    name: &str,
    method: &str,
    data: &Dataset,
    payload: &[u8],
    meta: &SnapMeta,
) -> Result<PathBuf, SnapError> {
    stage_built_snapshot(dir, name, method, data, payload, meta)?.commit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Metric, SynthSpec};
    use lccs_lsh::{LccsLsh, LccsParams};
    use std::sync::Arc;

    fn built() -> (Arc<Dataset>, LccsLsh) {
        let data = Arc::new(SynthSpec::new("snap", 200, 12).with_clusters(4).generate(5));
        let idx = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(8),
        );
        (data, idx)
    }

    #[test]
    fn container_round_trips_bit_exactly() {
        let (data, idx) = built();
        let snap = Snapshot::of_index("demo", &idx, &data);
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.name, "demo");
        assert_eq!(back.method, "LCCS-LSH");
        assert_eq!(back.data.as_flat(), data.as_flat());
        assert_eq!(back.payload, snap.payload);
        assert_eq!(back.meta, None, "of_index attaches no provenance");
    }

    #[test]
    fn meta_section_round_trips() {
        let (data, idx) = built();
        let spec: ann::IndexSpec = "lccs:m=8,w=8,seed=42".parse().unwrap();
        let meta = SnapMeta::of_build(&spec, 1.25, data.len() as u64);
        let snap = Snapshot::of_index("demo", &idx, &data).with_meta(meta.clone());
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        let got = back.meta.expect("meta survives");
        assert_eq!(got, meta);
        assert_eq!(got.spec, "lccs:m=8,w=8,seed=42");
        assert_eq!(got.w, 8.0);
        assert_eq!(got.seed, 42);
        assert_eq!(got.source_rows, 200);
    }

    #[test]
    fn pre_meta_containers_still_load() {
        // A PR-2-era container is exactly today's encoding minus the META
        // section (meta: None reproduces it byte for byte); it must decode
        // with meta: None rather than erroring on the missing section.
        let (data, idx) = built();
        let v1 = Snapshot::of_index("old", &idx, &data).encode().unwrap();
        let back = Snapshot::decode(&v1).unwrap();
        assert_eq!(back.name, "old");
        assert!(back.meta.is_none(), "pre-v2 snapshots have no spec");
    }

    #[test]
    fn corrupt_meta_sections_are_rejected() {
        let (data, idx) = built();
        let spec: ann::IndexSpec = "lccs:m=8".parse().unwrap();
        let good = Snapshot::of_index("demo", &idx, &data)
            .with_meta(SnapMeta::of_build(&spec, 0.5, 200))
            .encode()
            .unwrap();
        // Any truncation inside the meta section fails cleanly.
        for cut in 1..41 {
            assert!(Snapshot::decode(&good[..good.len() - cut]).is_err(), "cut {cut}");
        }
        // A wrong marker is not silently skipped.
        let mut bad = good.clone();
        let marker_at = good.len() - 8 - 4 - (2 + spec.to_string().len()) - 8 - 8 - 8 - 4;
        bad[marker_at] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        // Trailing garbage after the section is rejected.
        let mut bad = good;
        bad.push(0);
        assert!(Snapshot::decode(&bad).is_err());
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let (data, idx) = built();
        let good = Snapshot::of_index("demo", &idx, &data).encode().unwrap();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Snapshot::decode(&bad).is_err());
        // Truncations anywhere fail cleanly.
        for cut in [0usize, 7, 12, good.len() / 2, good.len() - 1] {
            assert!(Snapshot::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(7);
        assert!(Snapshot::decode(&bad).is_err());
        // Absurd declared shape is rejected before allocation.
        let mut bad = good.clone();
        let shape_off = 8 + 2 + 4 + 2 + "LCCS-LSH".len(); // magic + name + method
        bad[shape_off..shape_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::decode(&bad).is_err());
    }

    #[test]
    fn live_section_round_trips() {
        use ann::MutableAnn;
        use ann_live::{LiveConfig, LiveIndex};
        let data = SynthSpec::new("live", 60, 8).with_clusters(4).generate(11);
        let mut live = LiveIndex::build_from(
            "lccs:m=8,w=8,seed=3".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig { seal_threshold: 100, max_segments: 4 },
        )
        .unwrap();
        live.insert(&SynthSpec::new("extra", 5, 8).generate(12), None).unwrap();
        live.delete(&[2, 61]);
        let state = live.state();
        let snap = Snapshot::of_live("demo-live", &state).unwrap();
        assert_eq!(snap.method, ann_live::LIVE_METHOD);
        assert_eq!(snap.data.len(), 65, "base block holds every physical row");
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.name, "demo-live");
        assert_eq!(back.method, ann_live::LIVE_METHOD);
        assert!(back.payload.is_empty());
        let got = back.live.expect("LIVE section survives");
        assert_eq!(got, state, "state round-trips exactly");
        // And the reassembled index answers like the original.
        let rebuilt = LiveIndex::from_state(got).unwrap();
        let p = ann::SearchParams::new(5, 64);
        use ann::AnnIndex;
        for i in [0usize, 30, 59] {
            assert_eq!(rebuilt.query(data.get(i), &p), live.query(data.get(i), &p));
        }
    }

    #[test]
    fn corrupt_live_sections_are_rejected() {
        use ann::MutableAnn;
        use ann_live::{LiveConfig, LiveIndex};
        let data = SynthSpec::new("live", 30, 6).generate(13);
        let mut live = LiveIndex::build_from(
            "linear".parse().unwrap(),
            Metric::Euclidean,
            &data,
            LiveConfig { seal_threshold: 100, max_segments: 4 },
        )
        .unwrap();
        live.delete(&[7]);
        let state = live.state();
        let good = Snapshot::of_live("x", &state).unwrap().encode().unwrap();
        assert!(Snapshot::decode(&good).is_ok());
        // Truncations anywhere inside the section fail cleanly.
        for cut in 1..60 {
            assert!(Snapshot::decode(&good[..good.len() - cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage after the section is rejected.
        let mut bad = good.clone();
        bad.extend_from_slice(b"junk");
        assert!(Snapshot::decode(&bad).is_err());
        // An empty live index cannot be containerized at all.
        let empty = LiveIndex::new(
            "linear".parse().unwrap(),
            Metric::Euclidean,
            6,
            LiveConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            Snapshot::of_live("x", &empty.state()),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn write_read_disk_round_trip() {
        let (data, idx) = built();
        let dir = std::env::temp_dir().join(format!("snaptest-{}", std::process::id()));
        let path = write_index_snapshot(&dir, "demo", &idx, &data, None).unwrap();
        assert!(path.ends_with("demo.snap"));
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.method, "LCCS-LSH");
        std::fs::remove_dir_all(&dir).ok();
    }
}
