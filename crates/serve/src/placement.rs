//! Routed-catalog persistence for the cluster router: which indexes are
//! sharded, over how many shards, and where auto-id assignment resumes.
//!
//! The placement rule itself is a single line — row `id` lives on shard
//! `id % n_shards` — but two numbers must survive a router restart for
//! that line to keep routing identically:
//!
//! * the **placement modulus** each index was built with (frozen at
//!   BUILD time, so growing the shard list later never scrambles the
//!   placement of existing indexes), and
//! * the **next auto-assigned id**, so INSERTs without explicit ids
//!   resume above every id ever handed out instead of colliding.
//!
//! Both live in a tiny dependency-free text file (one header line, one
//! line per index) written with the same atomic temp-file + rename
//! discipline as `.snap` containers. Routers configured without a
//! `--router-dir` keep the table in memory only and log a warning: they
//! re-learn placement from shard LISTs but cannot know `next_id` across
//! a restart, so explicit-id inserts are the safe mode there.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Magic first line of the routed-catalog file; versioned so a future
/// layout can be detected instead of misparsed.
const HEADER: &str = "annd-router-catalog v1";

/// Placement state for one routed index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The modulus rows are hashed with: row `id` lives on shard
    /// `id % mod_shards`. Frozen when the index is built.
    pub mod_shards: u32,
    /// Next id to auto-assign for INSERTs that carry no explicit ids.
    pub next_id: u32,
}

/// The router's per-index placement table, optionally backed by a file.
#[derive(Debug)]
pub struct PlacementTable {
    /// `BTreeMap` so the file is written in a stable order (byte-equal
    /// files for equal states — easy to diff, easy to test).
    entries: BTreeMap<String, Placement>,
    path: Option<PathBuf>,
}

impl PlacementTable {
    /// An in-memory table (no persistence).
    pub fn in_memory() -> PlacementTable {
        PlacementTable { entries: BTreeMap::new(), path: None }
    }

    /// Opens (or prepares to create) the table at
    /// `<dir>/router-catalog.txt`. A missing file is an empty table; a
    /// present one must parse, so a corrupt catalog fails loudly at
    /// startup instead of silently re-routing.
    pub fn open(dir: &Path) -> io::Result<PlacementTable> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("router-catalog.txt");
        let entries = match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("routed catalog {}: {e}", path.display()),
                )
            })?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e),
        };
        Ok(PlacementTable { entries, path: Some(path) })
    }

    /// Looks up one index's placement.
    pub fn get(&self, index: &str) -> Option<Placement> {
        self.entries.get(index).copied()
    }

    /// Iterates `(name, placement)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Placement)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Largest placement modulus on record (0 when empty) — the minimum
    /// shard count a restarted router must be configured with.
    pub fn max_mod(&self) -> u32 {
        self.entries.values().map(|p| p.mod_shards).max().unwrap_or(0)
    }

    /// Records (or replaces) one index's placement and persists.
    pub fn set(&mut self, index: &str, placement: Placement) -> io::Result<()> {
        self.entries.insert(index.to_string(), placement);
        self.persist()
    }

    /// Bumps `next_id` for an index to at least `next_id` and persists.
    /// (Monotone: concurrent bumps can only move it forward.)
    pub fn bump_next_id(&mut self, index: &str, next_id: u32) -> io::Result<()> {
        if let Some(p) = self.entries.get_mut(index) {
            if next_id > p.next_id {
                p.next_id = next_id;
                return self.persist();
            }
        }
        Ok(())
    }

    /// Atomic write-through: serialize, write `<path>.tmp`, fsync,
    /// rename over the old file — a crash leaves either the old catalog
    /// or the new one, never a torn file.
    fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let mut text = String::from(HEADER);
        text.push('\n');
        for (name, p) in &self.entries {
            writeln!(text, "index\t{name}\t{}\t{}", p.mod_shards, p.next_id)
                .expect("string write is infallible");
        }
        let tmp = path.with_extension("txt.tmp");
        std::fs::write(&tmp, text.as_bytes())?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    }
}

fn parse(text: &str) -> Result<BTreeMap<String, Placement>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        Some(h) => return Err(format!("unknown header {h:?} (expected {HEADER:?})")),
        None => return Err("empty file".into()),
    }
    let mut entries = BTreeMap::new();
    for (no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let [kind, name, mod_shards, next_id] = fields[..] else {
            return Err(format!("line {}: expected 4 tab-separated fields", no + 2));
        };
        if kind != "index" {
            return Err(format!("line {}: unknown record kind {kind:?}", no + 2));
        }
        let mod_shards: u32 =
            mod_shards.parse().map_err(|_| format!("line {}: bad modulus", no + 2))?;
        let next_id: u32 =
            next_id.parse().map_err(|_| format!("line {}: bad next_id", no + 2))?;
        if mod_shards == 0 {
            return Err(format!("line {}: zero-shard placement", no + 2));
        }
        if entries.insert(name.to_string(), Placement { mod_shards, next_id }).is_some() {
            return Err(format!("line {}: duplicate index {name:?}", no + 2));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_file() {
        let dir = std::env::temp_dir().join(format!("router-cat-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut t = PlacementTable::open(&dir).unwrap();
            assert!(t.get("vectors").is_none(), "missing file is an empty table");
            t.set("vectors", Placement { mod_shards: 3, next_id: 900 }).unwrap();
            t.set("other", Placement { mod_shards: 2, next_id: 10 }).unwrap();
            t.bump_next_id("vectors", 950).unwrap();
            t.bump_next_id("vectors", 940).unwrap(); // monotone: no-op
        }
        let t = PlacementTable::open(&dir).unwrap();
        assert_eq!(t.get("vectors"), Some(Placement { mod_shards: 3, next_id: 950 }));
        assert_eq!(t.get("other"), Some(Placement { mod_shards: 2, next_id: 10 }));
        assert_eq!(t.max_mod(), 3);
        assert_eq!(t.iter().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_catalogs_fail_loudly() {
        for bad in [
            "",                                   // empty
            "annd-router-catalog v999\n",         // future version
            "annd-router-catalog v1\nindex\tx\n", // short line
            "annd-router-catalog v1\nindex\tx\t0\t5\n", // zero shards
            "annd-router-catalog v1\nindex\tx\t2\t5\nindex\tx\t2\t5\n", // dup
            "annd-router-catalog v1\nshard\tx\t2\t5\n", // unknown kind
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // Blank trailing lines are tolerated (trailing newline).
        let ok = "annd-router-catalog v1\nindex\tx\t2\t5\n\n";
        assert_eq!(parse(ok).unwrap().len(), 1);
    }

    #[test]
    fn in_memory_table_skips_persistence() {
        let mut t = PlacementTable::in_memory();
        t.set("x", Placement { mod_shards: 4, next_id: 0 }).unwrap();
        assert_eq!(t.get("x").unwrap().mod_shards, 4);
    }
}
