//! `annd` — the snapshot-backed ANN serving daemon, and (in `--router`
//! mode) the sharded-cluster front that speaks the same protocol.
//!
//! ```text
//! annd --snapshot-dir DIR [--addr 127.0.0.1:7700] [--workers N]
//!      [--wal-sync always|batch]
//! annd --router SHARD,SHARD[,rN@REPLICA]… [--addr 127.0.0.1:7700]
//!      [--workers N] [--router-dir DIR] [--require-all]
//!      [--shard-timeout-ms 5000]
//!
//! observability (both modes):
//!      [--log-level error|warn|info|debug] [--log-json]
//!      [--slow-query-ms N]
//!
//! recall-target degradation (both modes, off unless both are set):
//!      [--recall-floor 0.7] [--p99-bound-us N]
//! ```
//!
//! Diagnostics go to stderr as structured logfmt lines (`--log-json`
//! switches to JSON); `--slow-query-ms` logs a span-tree breakdown of
//! any request that runs past the threshold (see
//! `docs/observability.md`). The Prometheus scrape surface is the
//! METRICS opcode (`ann-cli metrics`).
//!
//! Loads every `*.snap` container in `--snapshot-dir`, binds `--addr`
//! (port `0` picks an ephemeral port), and serves the binary protocol
//! until a SHUTDOWN request arrives (`ann-cli shutdown --addr …`). BUILD
//! requests (`ann-cli build --spec …`) construct new indexes at runtime
//! and persist them back into `--snapshot-dir`, so a built index survives
//! a restart. A BUILD with `--live true` installs a *mutable* LSM-style
//! index that then accepts INSERT/DELETE over the wire. Every
//! acknowledged write is appended to the entry's `<name>.wal` in the
//! snapshot dir and fsynced per `--wal-sync` (`always`, the default,
//! fsyncs before each ack; `batch` group-commits — see
//! `docs/durability.md`), so even an un-FLUSHed write survives `kill
//! -9`: restart replays the log over the last FLUSH snapshot. FLUSH
//! persists the full structure (LIVE snapshot section) and truncates
//! the log. The bound address is printed as `annd: listening on ADDR`
//! so scripts can discover ephemeral ports; final per-index counters
//! (including the p50/p99 of the query-latency histogram) are printed
//! on exit.
//!
//! `--router` starts no local catalog at all: the process fronts the
//! listed shard daemons, hash-partitioning writes by `id % n_shards`
//! and scatter-gathering reads so results are byte-identical to a
//! single-node index over the union of rows. `rN@host:port` attaches a
//! read-only replica to shard `N`. `--router-dir` persists the routed
//! catalog (placement modulus + auto-id high-water mark per index) so a
//! restarted router routes identically; `--require-all` turns degraded
//! reads into errors instead of typed partial results. See
//! `docs/cluster.md`.
//!
//! `--recall-floor` + `--p99-bound-us` arm the overload dial for
//! `target_recall` requests: when the process's p99 query latency runs
//! past the bound, requested targets are stepped down (never below the
//! floor) before planning, and the step-down is reported in SearchStats
//! and METRICS instead of silently breaching the latency bound. See
//! `docs/planning.md`.

use serve::catalog::Catalog;
use serve::router::{parse_topology, Router, RouterConfig};
use serve::server::Server;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Opts {
    snapshot_dir: Option<PathBuf>,
    addr: String,
    workers: usize,
    wal_sync: ann_live::wal::WalSync,
    router: Option<String>,
    router_dir: Option<PathBuf>,
    require_all: bool,
    shard_timeout_ms: u64,
    log_level: obs::Level,
    log_json: bool,
    slow_query_ms: u64,
    recall_floor: f64,
    p99_bound_us: u64,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7700".to_string();
    let mut workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
    let mut wal_sync = ann_live::wal::WalSync::Always;
    let mut router: Option<String> = None;
    let mut router_dir: Option<PathBuf> = None;
    let mut require_all = false;
    let mut shard_timeout_ms = 5000u64;
    let mut log_level = obs::Level::Info;
    let mut log_json = false;
    let mut slow_query_ms = 0u64;
    let mut recall_floor = 0.0f64;
    let mut p99_bound_us = 0u64;
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        let mut take =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match a.as_str() {
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(take("--snapshot-dir"))),
            "--addr" => addr = take("--addr"),
            "--workers" => {
                workers = take("--workers").parse().expect("--workers wants an integer")
            }
            "--wal-sync" => {
                wal_sync = take("--wal-sync")
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--wal-sync: {e}"))
            }
            "--router" => router = Some(take("--router")),
            "--router-dir" => router_dir = Some(PathBuf::from(take("--router-dir"))),
            "--require-all" => require_all = true,
            "--shard-timeout-ms" => {
                shard_timeout_ms = take("--shard-timeout-ms")
                    .parse()
                    .expect("--shard-timeout-ms wants an integer")
            }
            "--log-level" => {
                log_level = take("--log-level")
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--log-level: {e}"))
            }
            "--log-json" => log_json = true,
            "--slow-query-ms" => {
                slow_query_ms = take("--slow-query-ms")
                    .parse()
                    .expect("--slow-query-ms wants an integer")
            }
            "--recall-floor" => {
                recall_floor = take("--recall-floor")
                    .parse()
                    .expect("--recall-floor wants a number in (0, 1]");
                assert!(
                    recall_floor > 0.0 && recall_floor <= 1.0,
                    "--recall-floor wants a number in (0, 1]"
                );
            }
            "--p99-bound-us" => {
                p99_bound_us = take("--p99-bound-us")
                    .parse()
                    .expect("--p99-bound-us wants an integer")
            }
            other => panic!(
                "unknown flag {other}; known: --snapshot-dir --addr --workers --wal-sync \
                 --router --router-dir --require-all --shard-timeout-ms --log-level \
                 --log-json --slow-query-ms --recall-floor --p99-bound-us"
            ),
        }
    }
    if router.is_some() && snapshot_dir.is_some() {
        panic!("--router and --snapshot-dir are mutually exclusive: a router holds no indexes");
    }
    Opts {
        snapshot_dir,
        addr,
        workers: workers.max(1),
        wal_sync,
        router,
        router_dir,
        require_all,
        shard_timeout_ms,
        log_level,
        log_json,
        slow_query_ms,
        recall_floor,
        p99_bound_us,
    }
}

fn run_router(opts: &Opts, topology: &str) -> ExitCode {
    let shards = match parse_topology(topology) {
        Ok(s) => s,
        Err(e) => {
            obs::error!("bad --router topology", error = e);
            return ExitCode::FAILURE;
        }
    };
    let n_replicas: usize = shards.iter().map(|s| s.replicas.len()).sum();
    let config = RouterConfig {
        shards,
        require_all: opts.require_all,
        dir: opts.router_dir.clone(),
        shard_timeout: Duration::from_millis(opts.shard_timeout_ms.max(1)),
        recall_floor: opts.recall_floor,
        p99_bound_micros: opts.p99_bound_us,
    };
    if config.dir.is_none() {
        obs::warn!(
            "router has no --router-dir; placement will be re-learned from shard LISTs on \
             restart and auto-id INSERTs will be refused for adopted indexes"
        );
    }
    let n_shards = config.shards.len();
    let router = match Router::bind(config, opts.addr.as_str(), opts.workers) {
        Ok(r) => r,
        Err(e) => {
            obs::error!("failed to start router", addr = opts.addr, error = e);
            return ExitCode::FAILURE;
        }
    };
    match router.local_addr() {
        Ok(addr) => println!(
            "annd: listening on {addr} (router: {n_shards} shard(s), {n_replicas} replica(s), \
             {} workers, require-all={})",
            opts.workers, opts.require_all
        ),
        Err(e) => {
            obs::error!("no local addr", error = e);
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = router.run() {
        obs::error!("router loop failed", error = e);
        return ExitCode::FAILURE;
    }
    println!("annd: router shutting down (shards keep running; stop them individually)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_opts(std::env::args().skip(1));
    obs::set_level(opts.log_level);
    obs::set_log_json(opts.log_json);
    obs::set_slow_query_micros(opts.slow_query_ms.saturating_mul(1000));
    if let Some(topology) = opts.router.clone() {
        return run_router(&opts, &topology);
    }
    let Some(snapshot_dir) = opts.snapshot_dir.clone() else {
        obs::error!("pass --snapshot-dir DIR (serve mode) or --router SHARDS (router mode)");
        return ExitCode::FAILURE;
    };
    let catalog = match Catalog::load_dir(&snapshot_dir) {
        Ok(c) => c,
        Err(e) => {
            obs::error!("failed to load snapshot dir", dir = snapshot_dir.display(), error = e);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "annd: serving {} index(es) from {}",
        catalog.len(),
        snapshot_dir.display()
    );
    for served in catalog.iter() {
        let info = served.info();
        println!(
            "annd:   {}  method={}  spec={}  n={}  dim={}  index={} KiB  load={}  sq8={}",
            info.name,
            info.method,
            if info.spec.is_empty() { "unknown" } else { &info.spec },
            info.len,
            info.dim,
            info.index_bytes / 1024,
            info.load_mode,
            if info.sq8 { "on" } else { "off" }
        );
    }
    let server = match Server::bind(catalog, opts.addr.as_str(), opts.workers) {
        Ok(s) => s
            .with_snapshot_dir(&snapshot_dir)
            .with_wal_sync(opts.wal_sync)
            .with_recall_floor(opts.recall_floor)
            .with_p99_bound_micros(opts.p99_bound_us),
        Err(e) => {
            obs::error!("failed to bind", addr = opts.addr, error = e);
            return ExitCode::FAILURE;
        }
    };
    let catalog = server.catalog();
    match server.local_addr() {
        Ok(addr) => println!(
            "annd: listening on {addr} ({} workers, wal-sync={})",
            opts.workers,
            opts.wal_sync.name()
        ),
        Err(e) => {
            obs::error!("no local addr", error = e);
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        obs::error!("serving loop failed", error = e);
        return ExitCode::FAILURE;
    }
    println!("annd: shutting down; final counters:");
    for served in catalog.read().expect("catalog poisoned").iter() {
        let s = served.stats.snapshot(
            &served.name,
            &served.spec,
            served.load_mode(),
            served.sq8_active(),
        );
        // Same line `ann-cli stats` prints — one renderer, no drift.
        println!("annd:   {}", serve::stats::render_entry(&s));
    }
    ExitCode::SUCCESS
}
