//! `annd` — the snapshot-backed ANN serving daemon.
//!
//! ```text
//! annd --snapshot-dir DIR [--addr 127.0.0.1:7700] [--workers N]
//!      [--wal-sync always|batch]
//! ```
//!
//! Loads every `*.snap` container in `--snapshot-dir`, binds `--addr`
//! (port `0` picks an ephemeral port), and serves the binary protocol
//! until a SHUTDOWN request arrives (`ann-cli shutdown --addr …`). BUILD
//! requests (`ann-cli build --spec …`) construct new indexes at runtime
//! and persist them back into `--snapshot-dir`, so a built index survives
//! a restart. A BUILD with `--live true` installs a *mutable* LSM-style
//! index that then accepts INSERT/DELETE over the wire. Every
//! acknowledged write is appended to the entry's `<name>.wal` in the
//! snapshot dir and fsynced per `--wal-sync` (`always`, the default,
//! fsyncs before each ack; `batch` group-commits — see
//! `docs/durability.md`), so even an un-FLUSHed write survives `kill
//! -9`: restart replays the log over the last FLUSH snapshot. FLUSH
//! persists the full structure (LIVE snapshot section) and truncates
//! the log. The bound address is printed as `annd: listening on ADDR`
//! so scripts can discover ephemeral ports; final per-index counters are
//! printed on exit.

use serve::catalog::Catalog;
use serve::server::Server;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    snapshot_dir: PathBuf,
    addr: String,
    workers: usize,
    wal_sync: ann_live::wal::WalSync,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7700".to_string();
    let mut workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
    let mut wal_sync = ann_live::wal::WalSync::Always;
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        let mut take =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match a.as_str() {
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(take("--snapshot-dir"))),
            "--addr" => addr = take("--addr"),
            "--workers" => {
                workers = take("--workers").parse().expect("--workers wants an integer")
            }
            "--wal-sync" => {
                wal_sync = take("--wal-sync")
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--wal-sync: {e}"))
            }
            other => panic!(
                "unknown flag {other}; known: --snapshot-dir --addr --workers --wal-sync"
            ),
        }
    }
    Opts {
        snapshot_dir: snapshot_dir.expect("--snapshot-dir is required"),
        addr,
        workers: workers.max(1),
        wal_sync,
    }
}

fn main() -> ExitCode {
    let opts = parse_opts(std::env::args().skip(1));
    let catalog = match Catalog::load_dir(&opts.snapshot_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("annd: failed to load {}: {e}", opts.snapshot_dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "annd: serving {} index(es) from {}",
        catalog.len(),
        opts.snapshot_dir.display()
    );
    for served in catalog.iter() {
        let info = served.info();
        println!(
            "annd:   {}  method={}  spec={}  n={}  dim={}  index={} KiB  load={}  sq8={}",
            info.name,
            info.method,
            if info.spec.is_empty() { "unknown" } else { &info.spec },
            info.len,
            info.dim,
            info.index_bytes / 1024,
            info.load_mode,
            if info.sq8 { "on" } else { "off" }
        );
    }
    let server = match Server::bind(catalog, opts.addr.as_str(), opts.workers) {
        Ok(s) => s.with_snapshot_dir(&opts.snapshot_dir).with_wal_sync(opts.wal_sync),
        Err(e) => {
            eprintln!("annd: failed to bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let catalog = server.catalog();
    match server.local_addr() {
        Ok(addr) => println!(
            "annd: listening on {addr} ({} workers, wal-sync={})",
            opts.workers,
            opts.wal_sync.name()
        ),
        Err(e) => {
            eprintln!("annd: no local addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("annd: serving loop failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("annd: shutting down; final counters:");
    for served in catalog.read().expect("catalog poisoned").iter() {
        let s = served.stats.snapshot(
            &served.name,
            &served.spec,
            served.load_mode(),
            served.sq8_active(),
        );
        println!(
            "annd:   {}  queries={}  batches={} ({} queries)  inserts={}  deletes={}  \
             flushes={}  wal={} ({} B)  seals={}  scanned={}  total={}us  max={}us",
            s.name,
            s.queries,
            s.batch_requests,
            s.batch_queries,
            s.inserts,
            s.deletes,
            s.flushes,
            s.wal_records,
            s.wal_bytes,
            s.seals,
            s.candidates_scanned,
            s.total_micros,
            s.max_micros
        );
    }
    ExitCode::SUCCESS
}
