//! `ann-cli` — client and snapshot tooling for `annd`.
//!
//! ```text
//! ann-cli demo --out DIR [--n 2000] [--dim 32] [--m 16] [--seed 42]
//! ann-cli gen --out FILE.fvecs [--n 2000] [--dim 32] [--seed 42] [--clusters 16]
//! ann-cli spec-help
//! ann-cli describe --snap FILE.snap
//! ann-cli ping --addr ADDR
//! ann-cli list --addr ADDR
//! ann-cli stats --addr ADDR
//! ann-cli metrics --addr ADDR
//! ann-cli build --addr ADDR --index NAME --spec SPEC --data FILE.fvecs
//!               [--metric euclidean] [--limit 0]
//!               [--live true] [--seal-threshold 0] [--max-segments 0]
//! ann-cli query --addr ADDR --index NAME --k K --budget B [--probes P] --vec 1.0,2.0,…
//! ann-cli search --addr ADDR --index NAME [--k 10] [--budget 128] [--probes 0]
//!                [--target-recall 0.9]
//!                [--filter ids.txt | --deny ids.txt] [--max-dist 1.5] [--stats true]
//!                (--vec 1.0,2.0,… | --from queries.fvecs [--limit 0])
//! ann-cli calibrate --addr ADDR --index NAME [--sample 0] [--k 0]
//! ann-cli insert --addr ADDR --index NAME (--vec 1.0,2.0,… | --data FILE.fvecs)
//!                [--ids 7,8,…] [--limit 0]
//! ann-cli delete --addr ADDR --index NAME --ids 7,8,…
//! ann-cli flush --addr ADDR --index NAME
//! ann-cli shutdown --addr ADDR
//! ```
//!
//! `demo` is the offline build half of the build-once/serve-many split:
//! it builds both LCCS schemes from spec strings and snapshots them into
//! `--out`, ready for `annd --snapshot-dir`. `build` is the same thing
//! over the wire: the server parses the spec, builds, snapshots, and
//! serves the result without restarting — pass `--live true` for a
//! mutable LSM-style index that then accepts `insert` / `delete` /
//! `flush`. `describe` prints a snapshot's header, including the
//! originating spec and (for live containers) the segment layout.
//!
//! `calibrate` runs the server-side recall/latency sweep that backs
//! `search --target-recall` (recall-targeted planning — see
//! `docs/planning.md`): the table is installed immediately and attached
//! to the index's snapshot. `--sample 0` / `--k 0` take the server
//! defaults.

use dataset::{Metric, SynthSpec};
use eval::registry::{self, BuildCtx};
use serve::client::Client;
use serve::snapshot::{write_built_snapshot, SnapMeta, Snapshot};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: ann-cli <demo|gen|spec-help|describe|ping|list|stats|metrics|build|query|search|calibrate|insert|delete|flush|shutdown> [flags]
  demo      --out DIR [--n 2000] [--dim 32] [--m 16] [--seed 42]
  gen       --out FILE.fvecs [--n 2000] [--dim 32] [--seed 42] [--clusters 16]
  spec-help
  describe  --snap FILE.snap
  ping      --addr HOST:PORT
  list      --addr HOST:PORT
  stats     --addr HOST:PORT
  metrics   --addr HOST:PORT
  build     --addr HOST:PORT --index NAME --spec SPEC --data FILE.fvecs [--metric euclidean] [--limit 0]
            [--live true] [--seal-threshold 0] [--max-segments 0]
  query     --addr HOST:PORT --index NAME [--k 10] [--budget 128] [--probes 0] --vec F,F,…
  search    --addr HOST:PORT --index NAME [--k 10] [--budget 128] [--probes 0]
            [--target-recall R] [--filter IDS.txt | --deny IDS.txt] [--max-dist D] [--stats true]
            (--vec F,F,… | --from FILE.fvecs [--limit 0])
  calibrate --addr HOST:PORT --index NAME [--sample 0] [--k 0]
  insert    --addr HOST:PORT --index NAME (--vec F,F,… | --data FILE.fvecs) [--ids N,N,…] [--limit 0]
  delete    --addr HOST:PORT --index NAME --ids N,N,…
  flush     --addr HOST:PORT --index NAME
  shutdown  --addr HOST:PORT";

/// Flat `--key value` flags after the subcommand.
fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--").unwrap_or_else(|| panic!("expected --flag, got {a:?}"));
        let val = it.next().unwrap_or_else(|| panic!("--{key} requires a value"));
        flags.insert(key.to_string(), val);
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    flags.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|e| panic!("--{key} {v:?}: {e:?}"))
    })
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).unwrap_or_else(|| panic!("--{key} is required\n{USAGE}"))
}

fn connect(flags: &HashMap<String, String>) -> Client {
    let addr = required(flags, "addr");
    Client::connect(addr).unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"))
}

/// Builds both LCCS schemes from spec strings through the registry —
/// exactly the path `annd` BUILD takes — and snapshots them with their
/// provenance meta.
fn cmd_demo(flags: &HashMap<String, String>) {
    let out = PathBuf::from(required(flags, "out"));
    let n: usize = flag(flags, "n", 2000);
    let dim: usize = flag(flags, "dim", 32);
    let m: usize = flag(flags, "m", 16);
    let seed: u64 = flag(flags, "seed", 42);
    let data = Arc::new(SynthSpec::new("demo", n, dim).with_clusters(16).generate(seed));
    for (name, spec_text) in [
        ("demo-lccs", format!("lccs:m={m},w=8,seed={seed}")),
        ("demo-mp-lccs", format!("mp-lccs:m={m},w=8,seed={seed}")),
    ] {
        let spec: ann::IndexSpec =
            spec_text.parse().unwrap_or_else(|e| panic!("spec {spec_text:?}: {e}"));
        let t0 = Instant::now();
        let (index, payload) =
            registry::build_index_persist(&spec, &BuildCtx { data: &data, metric: Metric::Euclidean })
                .unwrap_or_else(|e| panic!("building {spec_text}: {e}"));
        let build_secs = t0.elapsed().as_secs_f64();
        let meta = SnapMeta::of_build(&spec, build_secs, data.len() as u64);
        let payload = payload.expect("LCCS schemes persist");
        match write_built_snapshot(&out, name, index.name(), &data, &payload, &meta) {
            Ok(path) => println!("ann-cli: wrote {name} ({spec_text}) to {}", path.display()),
            Err(e) => panic!("writing {name}: {e}"),
        }
    }
}

/// Writes a clustered synthetic dataset as `.fvecs` — the input format
/// the BUILD command reads server-side.
fn cmd_gen(flags: &HashMap<String, String>) {
    let out = PathBuf::from(required(flags, "out"));
    let n: usize = flag(flags, "n", 2000);
    let dim: usize = flag(flags, "dim", 32);
    let seed: u64 = flag(flags, "seed", 42);
    let clusters: usize = flag(flags, "clusters", 16);
    let data = SynthSpec::new("gen", n, dim).with_clusters(clusters).generate(seed);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).unwrap_or_else(|e| panic!("creating {parent:?}: {e}"));
    }
    dataset::io::write_fvecs(&out, &data).unwrap_or_else(|e| panic!("writing {out:?}: {e}"));
    println!("ann-cli: wrote {n}x{dim} fvecs to {}", out.display());
}

fn cmd_describe(flags: &HashMap<String, String>) {
    let path = PathBuf::from(required(flags, "snap"));
    let snap = Snapshot::read_from(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"));
    println!("name:    {}", snap.name);
    println!("method:  {}", snap.method);
    println!("rows:    {}", snap.data.len());
    println!("dim:     {}", snap.data.dim());
    println!("payload: {} bytes", snap.payload.len());
    println!("sq8:     {}", if snap.data.sq8_if_built().is_some() { "persisted" } else { "absent" });
    match &snap.meta {
        Some(m) => {
            println!("spec:    {}", m.spec);
            println!("w:       {}", m.w);
            println!("seed:    {}", m.seed);
            println!("built:   {:.3} s over {} source rows", m.build_secs, m.source_rows);
        }
        None => println!("spec:    unknown (pre-v2)"),
    }
    match &snap.calibration {
        Some(t) => {
            println!(
                "calibration: {} points over {} sample queries at k={}{}",
                t.points.len(),
                t.sample_queries,
                t.k,
                if t.stale { " (STALE: index mutated after the sweep)" } else { "" }
            );
            println!(
                "             max measured recall {:.4}; built_unix={}",
                t.max_recall(),
                t.built_unix
            );
        }
        None => println!("calibration: none (run `ann-cli calibrate`)"),
    }
    if let Some(state) = &snap.live {
        println!("live:    {} live rows / {} physical", state.live_rows(), state.total_rows());
        println!(
            "policy:  seal at {} memtable rows, merge beyond {} segments",
            state.config.seal_threshold, state.config.max_segments
        );
        println!("next id: {}", state.next_id);
        for (i, seg) in state.segments.iter().enumerate() {
            println!(
                "seg {i:<3}  {} rows ({} live, {} tombstoned)",
                seg.ids.len(),
                seg.ids.len() - seg.dead.len(),
                seg.dead.len()
            );
        }
        println!(
            "memtbl   {} rows ({} live, {} tombstoned)",
            state.memtable.ids.len(),
            state.memtable.ids.len() - state.memtable.dead.len(),
            state.memtable.dead.len()
        );
    }
}

fn cmd_build(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let spec = required(flags, "spec");
    let data = required(flags, "data");
    let metric = flags.get("metric").map_or("euclidean", String::as_str);
    let limit: usize = flag(flags, "limit", 0);
    let live: bool = flag(flags, "live", false);
    let seal_threshold: usize = flag(flags, "seal-threshold", 0);
    let max_segments: usize = flag(flags, "max-segments", 0);
    let (info, build_micros, snapshot_path) = if live {
        client.build_live(index, spec, metric, data, limit, seal_threshold, max_segments)
    } else {
        client.build(index, spec, metric, data, limit)
    }
    .unwrap_or_else(|e| panic!("build failed: {e}"));
    println!(
        "built {}\tmethod={}\tspec={}\tn={}\tdim={}\tindex_bytes={}\tbuild_us={}",
        info.name, info.method, info.spec, info.len, info.dim, info.index_bytes, build_micros
    );
    if snapshot_path.is_empty() {
        println!("snapshot: (none written)");
    } else {
        println!("snapshot: {snapshot_path}");
    }
}

fn cmd_query(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let k: usize = flag(flags, "k", 10);
    let budget: usize = flag(flags, "budget", 128);
    let probes: usize = flag(flags, "probes", 0);
    let vector = parse_vec(required(flags, "vec"));
    let hits = client
        .query(index, k, budget, probes, &vector)
        .unwrap_or_else(|e| panic!("query failed: {e}"));
    for (rank, n) in hits.iter().enumerate() {
        println!("{rank}\tid={}\tdist={:.6}", n.id, n.dist);
    }
}

/// Reads an id list file for `--filter` / `--deny`: ids separated by
/// whitespace, newlines, or commas (`#`-prefixed lines are comments).
fn read_ids_file(path: &str) -> Vec<u32> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"));
    text.lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split([' ', '\t', ',']))
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap_or_else(|e| panic!("id {t:?} in {path:?}: {e}")))
        .collect()
}

/// The filtered/range search command: builds a full `SearchRequest` from
/// flags and answers either one `--vec` query or every row of a `--from`
/// fvecs file over one connection.
fn cmd_search(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let mut req = ann::SearchRequest::top_k(flag(flags, "k", 10));
    // `--target-recall` switches to planned mode, where the knob
    // defaults must stay unset (the two modes are mutually exclusive);
    // knobs the user *did* pass are transmitted so the server answers
    // with its typed rejection.
    if let Some(t) = flags.get("target-recall") {
        req = req.target_recall(
            t.parse().unwrap_or_else(|e| panic!("--target-recall {t:?}: {e:?}")),
        );
        if flags.contains_key("budget") {
            req = req.budget(flag(flags, "budget", 0));
        }
        if flags.contains_key("probes") {
            req = req.probes(flag(flags, "probes", 0));
        }
    } else {
        req = req.budget(flag(flags, "budget", 128)).probes(flag(flags, "probes", 0));
    }
    match (flags.get("filter"), flags.get("deny")) {
        (Some(path), None) => req = req.filter(ann::IdFilter::allow(read_ids_file(path))),
        (None, Some(path)) => req = req.filter(ann::IdFilter::deny(read_ids_file(path))),
        (Some(_), Some(_)) => panic!("pass at most one of --filter / --deny\n{USAGE}"),
        (None, None) => {}
    }
    if let Some(d) = flags.get("max-dist") {
        req = req.max_dist(d.parse().unwrap_or_else(|e| panic!("--max-dist {d:?}: {e:?}")));
    }
    if flag(flags, "stats", false) {
        req = req.with_stats();
    }
    let queries = match (flags.get("vec"), flags.get("from")) {
        (Some(raw), None) => dataset::Dataset::from_rows("search", &[parse_vec(raw)]),
        (None, Some(path)) => {
            let limit: usize = flag(flags, "limit", 0);
            let limit = if limit == 0 { None } else { Some(limit) };
            dataset::io::read_fvecs(path, limit)
                .unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
        }
        _ => panic!("search wants exactly one of --vec or --from\n{USAGE}"),
    };
    for (qi, q) in queries.iter().enumerate() {
        let out = client
            .search_outcome(index, q, &req)
            .unwrap_or_else(|e| panic!("search failed: {e}"));
        if queries.len() > 1 {
            println!("query {qi}\t({} hits)", out.hits.len());
        }
        if !out.missing_shards.is_empty() {
            println!("partial\tmissing={}", out.missing_shards.join(","));
        }
        for (rank, n) in out.hits.iter().enumerate() {
            println!("{rank}\tid={}\tdist={:.6}", n.id, n.dist);
        }
        if let Some(s) = out.stats {
            if let Some(p) = s.plan {
                println!(
                    "plan\tbudget={}\tprobes={}\tpredicted_recall={:.4}\teffective_target={:.4}",
                    p.budget, p.probes, p.predicted_recall, p.effective_target
                );
            }
            println!(
                "stats\tscanned={}\theap_pushes={}\twall_us={}",
                s.candidates_scanned, s.heap_pushes, s.wall_micros
            );
        }
    }
}

fn parse_vec(raw: &str) -> Vec<f32> {
    raw.split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--vec element {s:?}: {e}")))
        .collect()
}

fn parse_ids(raw: &str) -> Vec<u32> {
    raw.split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--ids element {s:?}: {e}")))
        .collect()
}

/// Inserts either one `--vec` row or a whole client-side `--data` fvecs
/// file into a live index, printing the assigned ids.
fn cmd_insert(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let rows = match (flags.get("vec"), flags.get("data")) {
        (Some(raw), None) => {
            let row = parse_vec(raw);
            dataset::Dataset::from_rows("insert", &[row])
        }
        (None, Some(path)) => {
            let limit: usize = flag(flags, "limit", 0);
            let limit = if limit == 0 { None } else { Some(limit) };
            dataset::io::read_fvecs(path, limit)
                .unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
        }
        _ => panic!("insert wants exactly one of --vec or --data\n{USAGE}"),
    };
    let ids = flags.get("ids").map(|raw| parse_ids(raw));
    let assigned = client
        .insert(index, &rows, ids.as_deref())
        .unwrap_or_else(|e| panic!("insert failed: {e}"));
    match assigned.as_slice() {
        [] => println!("inserted 0 rows"),
        [one] => println!("inserted 1 row\tid={one}"),
        many => println!(
            "inserted {} rows\tids={}..={}",
            many.len(),
            many.first().unwrap(),
            many.last().unwrap()
        ),
    }
}

/// Runs the server-side calibration sweep for recall-targeted search.
fn cmd_calibrate(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let sample: usize = flag(flags, "sample", 0);
    let k: usize = flag(flags, "k", 0);
    let (points, max_recall, sample_used) = client
        .calibrate(index, sample, k)
        .unwrap_or_else(|e| panic!("calibrate failed: {e}"));
    println!(
        "calibrated {index}\tpoints={points}\tsample={sample_used}\tmax_recall={max_recall:.4}"
    );
    println!("targets up to {max_recall:.4} are now plannable via `search --target-recall R`");
}

fn cmd_delete(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let ids = parse_ids(required(flags, "ids"));
    let removed =
        client.delete(index, &ids).unwrap_or_else(|e| panic!("delete failed: {e}"));
    println!("deleted {removed} of {} ids", ids.len());
}

fn cmd_flush(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let (path, segments, live_rows) =
        client.flush(index).unwrap_or_else(|e| panic!("flush failed: {e}"));
    println!("flushed {index}\tsegments={segments}\tlive_rows={live_rows}");
    println!("snapshot: {path}");
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(args);
    match cmd.as_str() {
        "demo" => cmd_demo(&flags),
        "gen" => cmd_gen(&flags),
        "spec-help" => print!("{}", ann::spec::help()),
        "describe" => cmd_describe(&flags),
        "ping" => {
            connect(&flags).ping().unwrap_or_else(|e| panic!("ping failed: {e}"));
            println!("pong");
        }
        "list" => {
            let infos = connect(&flags).list().unwrap_or_else(|e| panic!("list failed: {e}"));
            for i in infos {
                println!(
                    "{}\tmethod={}\tspec={}\tn={}\tdim={}\tindex_bytes={}\tload={}\tsq8={}\tcal={}",
                    i.name,
                    i.method,
                    if i.spec.is_empty() { "unknown" } else { &i.spec },
                    i.len,
                    i.dim,
                    i.index_bytes,
                    i.load_mode,
                    if i.sq8 { "on" } else { "off" },
                    if i.cal == "none" {
                        i.cal.clone()
                    } else {
                        format!("{} ({}s old)", i.cal, i.cal_age_secs)
                    }
                );
            }
        }
        "stats" => {
            let entries =
                connect(&flags).stats().unwrap_or_else(|e| panic!("stats failed: {e}"));
            for s in entries {
                println!("{}", serve::stats::render_entry(&s));
            }
        }
        "metrics" => {
            let text =
                connect(&flags).metrics().unwrap_or_else(|e| panic!("metrics failed: {e}"));
            print!("{text}");
        }
        "build" => cmd_build(&flags),
        "query" => cmd_query(&flags),
        "search" => cmd_search(&flags),
        "calibrate" => cmd_calibrate(&flags),
        "insert" => cmd_insert(&flags),
        "delete" => cmd_delete(&flags),
        "flush" => cmd_flush(&flags),
        "shutdown" => {
            connect(&flags).shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
            println!("server is shutting down");
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
