//! `ann-cli` — client and snapshot tooling for `annd`.
//!
//! ```text
//! ann-cli demo --out DIR [--n 2000] [--dim 32] [--m 16] [--seed 42]
//! ann-cli ping --addr ADDR
//! ann-cli list --addr ADDR
//! ann-cli stats --addr ADDR
//! ann-cli query --addr ADDR --index NAME --k K --budget B [--probes P] --vec 1.0,2.0,…
//! ann-cli shutdown --addr ADDR
//! ```
//!
//! `demo` is the build half of the build-once/serve-many split: it
//! generates a clustered synthetic dataset and snapshots both LCCS
//! schemes into `--out`, ready for `annd --snapshot-dir`.

use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};
use serve::client::Client;
use serve::snapshot::write_index_snapshot;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: ann-cli <demo|ping|list|stats|query|shutdown> [flags]
  demo      --out DIR [--n 2000] [--dim 32] [--m 16] [--seed 42]
  ping      --addr HOST:PORT
  list      --addr HOST:PORT
  stats     --addr HOST:PORT
  query     --addr HOST:PORT --index NAME [--k 10] [--budget 128] [--probes 0] --vec F,F,…
  shutdown  --addr HOST:PORT";

/// Flat `--key value` flags after the subcommand.
fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--").unwrap_or_else(|| panic!("expected --flag, got {a:?}"));
        let val = it.next().unwrap_or_else(|| panic!("--{key} requires a value"));
        flags.insert(key.to_string(), val);
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    flags.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|e| panic!("--{key} {v:?}: {e:?}"))
    })
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).unwrap_or_else(|| panic!("--{key} is required\n{USAGE}"))
}

fn connect(flags: &HashMap<String, String>) -> Client {
    let addr = required(flags, "addr");
    Client::connect(addr).unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"))
}

fn cmd_demo(flags: &HashMap<String, String>) {
    let out = PathBuf::from(required(flags, "out"));
    let n: usize = flag(flags, "n", 2000);
    let dim: usize = flag(flags, "dim", 32);
    let m: usize = flag(flags, "m", 16);
    let seed: u64 = flag(flags, "seed", 42);
    let data = Arc::new(SynthSpec::new("demo", n, dim).with_clusters(16).generate(seed));
    let params = LccsParams::euclidean(8.0).with_m(m).with_seed(seed);
    let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
    let mp = MpLccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &params,
        MpParams { probes: 2 * m + 1, max_alts: 8 },
    );
    for (name, path) in [
        ("demo-lccs", write_index_snapshot(&out, "demo-lccs", &single, &data)),
        ("demo-mp-lccs", write_index_snapshot(&out, "demo-mp-lccs", &mp, &data)),
    ] {
        match path {
            Ok(p) => println!("ann-cli: wrote {name} snapshot to {}", p.display()),
            Err(e) => panic!("writing {name}: {e}"),
        }
    }
}

fn cmd_query(flags: &HashMap<String, String>) {
    let mut client = connect(flags);
    let index = required(flags, "index");
    let k: usize = flag(flags, "k", 10);
    let budget: usize = flag(flags, "budget", 128);
    let probes: usize = flag(flags, "probes", 0);
    let vector: Vec<f32> = required(flags, "vec")
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--vec element {s:?}: {e}")))
        .collect();
    let hits = client
        .query(index, k, budget, probes, &vector)
        .unwrap_or_else(|e| panic!("query failed: {e}"));
    for (rank, n) in hits.iter().enumerate() {
        println!("{rank}\tid={}\tdist={:.6}", n.id, n.dist);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(args);
    match cmd.as_str() {
        "demo" => cmd_demo(&flags),
        "ping" => {
            connect(&flags).ping().unwrap_or_else(|e| panic!("ping failed: {e}"));
            println!("pong");
        }
        "list" => {
            let infos = connect(&flags).list().unwrap_or_else(|e| panic!("list failed: {e}"));
            for i in infos {
                println!(
                    "{}\tmethod={}\tn={}\tdim={}\tindex_bytes={}",
                    i.name, i.method, i.len, i.dim, i.index_bytes
                );
            }
        }
        "stats" => {
            let entries =
                connect(&flags).stats().unwrap_or_else(|e| panic!("stats failed: {e}"));
            for s in entries {
                println!(
                    "{}\tqueries={}\tbatches={}\tbatch_queries={}\ttotal_us={}\tmax_us={}",
                    s.name, s.queries, s.batch_requests, s.batch_queries, s.total_micros,
                    s.max_micros
                );
            }
        }
        "query" => cmd_query(&flags),
        "shutdown" => {
            connect(&flags).shutdown().unwrap_or_else(|e| panic!("shutdown failed: {e}"));
            println!("server is shutting down");
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
